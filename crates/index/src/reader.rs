//! [`CliqueIndex`] — the read-only query engine over a committed index.
//!
//! `open` loads the manifest and directory into memory (a few bytes per
//! size run, block, and vertex) and keeps the store and postings files
//! open; queries then touch only the frames they need. Decoded blocks
//! sit in a small LRU cache, so point lookups in a hot id range skip
//! both the read and the CRC pass. All shared state is behind mutexes,
//! making one `CliqueIndex` safely shareable across server threads via
//! `Arc`.
//!
//! Every decode path bound-checks against the directory and verifies
//! the frame CRC: a corrupted block surfaces as a typed
//! [`StoreError`], never a panic or a silently wrong answer.
//!
//! Corruption is additionally *quarantined*: a block that fails its
//! CRC/codec checks is remembered in an in-memory set, so later queries
//! fail fast without re-reading it, and the serving layer can answer
//! **degraded-exact** via [`CliqueIndex::materialize_degraded`] — every
//! clique returned is exact, quarantined ids are skipped and counted.
//! Transient I/O errors do *not* quarantine (a retry may succeed).

use crate::format::{
    check_header, decode_delta_postings, parse_frame, BlockEntry, DeltaGeneration, IndexDirectory,
    IndexMeta, SizeRun, CLIQUES_FILE, CLIQUES_MAGIC, DIRECTORY_FILE, DIRECTORY_MAGIC, HEADER_LEN,
    META_FILE, POSTINGS_FILE, POSTINGS_MAGIC,
};
use gsb_bitset::BitSet;
use gsb_core::store::StoreError;
use gsb_core::{Clique, Vertex};
use std::collections::{BTreeSet, HashMap};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default number of decoded blocks kept by the LRU cache.
pub const DEFAULT_CACHE_BLOCKS: usize = 32;

/// Index-level statistics for `gsb stats --index`.
#[derive(Clone, Debug, Default)]
pub struct IndexStats {
    /// Vertices of the indexed graph.
    pub n: usize,
    /// Total clique ids (live + tombstoned) across base and deltas.
    pub cliques: u64,
    /// Largest *live* clique size.
    pub max_clique: u32,
    /// Blocks in the store (base + delta).
    pub blocks: u64,
    /// Bytes of the clique store.
    pub store_bytes: u64,
    /// Bytes of the postings file.
    pub postings_bytes: u64,
    /// `(size, count)` pairs over *live* cliques, ascending in size.
    pub size_histogram: Vec<(u32, u64)>,
    /// Live (non-tombstoned) cliques.
    pub live: u64,
    /// Tombstoned clique ids across the chain.
    pub tombstones: u64,
    /// Delta generations appended after the base (0 = clean base).
    pub delta_generations: u64,
}

/// Tiny exact LRU over decoded blocks: a stamp per entry, evict the
/// oldest. Capacities are small (default 32), so the O(capacity)
/// eviction scan is noise next to the read it avoids.
struct BlockCache {
    capacity: usize,
    stamp: u64,
    entries: HashMap<usize, (u64, Arc<Vec<Clique>>)>,
}

impl BlockCache {
    fn new(capacity: usize) -> Self {
        BlockCache {
            capacity: capacity.max(1),
            stamp: 0,
            entries: HashMap::new(),
        }
    }

    fn get(&mut self, block: usize) -> Option<Arc<Vec<Clique>>> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(&block).map(|e| {
            e.0 = stamp;
            e.1.clone()
        })
    }

    /// Insert, returning whether an older entry was evicted.
    fn put(&mut self, block: usize, cliques: Arc<Vec<Clique>>) -> bool {
        self.stamp += 1;
        let mut evicted = false;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&block) {
            if let Some((&oldest, _)) = self.entries.iter().min_by_key(|(_, (s, _))| *s) {
                self.entries.remove(&oldest);
                evicted = true;
            }
        }
        self.entries.insert(block, (self.stamp, cliques));
        evicted
    }
}

/// A point-in-time snapshot of the reader's I/O counters — block-cache
/// effectiveness and decode cost — for the live `/metrics` exposition.
/// Counters are cumulative since [`CliqueIndex::open`] and reset on
/// hot-reload (a fresh reader), which the serving layer reports via the
/// index `generation`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Block lookups answered from the decoded-block cache.
    pub cache_hits: u64,
    /// Block lookups that had to read and decode from disk.
    pub cache_misses: u64,
    /// Cache insertions that displaced an older block.
    pub cache_evictions: u64,
    /// Blocks successfully read, CRC-verified, and decoded.
    pub blocks_decoded: u64,
    /// Total nanoseconds spent in block read+CRC+decode.
    pub decode_ns: u64,
    /// Postings-list reads served (one per `containing` lookup).
    pub postings_reads: u64,
}

/// The reader's live I/O counters (relaxed atomics — see [`IoStats`]).
#[derive(Debug, Default)]
struct IoCounters {
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    blocks_decoded: AtomicU64,
    decode_ns: AtomicU64,
    postings_reads: AtomicU64,
}

impl IoCounters {
    fn snapshot(&self) -> IoStats {
        IoStats {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            blocks_decoded: self.blocks_decoded.load(Ordering::Relaxed),
            decode_ns: self.decode_ns.load(Ordering::Relaxed),
            postings_reads: self.postings_reads.load(Ordering::Relaxed),
        }
    }
}

/// What [`CliqueIndex::materialize_degraded`] produced: every clique
/// that could be read exactly, plus how many ids were skipped because
/// their block is quarantined.
#[derive(Clone, Debug, Default)]
pub struct DegradedCliques {
    /// Exact cliques, in request order.
    pub cliques: Vec<Clique>,
    /// Ids skipped because their block is corrupt/quarantined.
    pub skipped: u64,
}

impl DegradedCliques {
    /// True when nothing was skipped — the answer is complete.
    pub fn is_complete(&self) -> bool {
        self.skipped == 0
    }
}

/// A committed on-disk index, opened read-only. See the module docs.
///
/// When the manifest records delta generations (`gsb update` ran since
/// the last base build / compaction), `open` merges the chain into a
/// unified view: one block table spanning base and delta blocks, a
/// tombstone set over the whole id space, and per-vertex postings
/// overlays. Every public query is then tombstone-aware — dead ids
/// never leak out of `containing`/`ids_of_size`/`overlap`/`max_clique`.
pub struct CliqueIndex {
    meta: IndexMeta,
    directory: IndexDirectory,
    chain: Vec<DeltaGeneration>,
    /// Unified block table: base blocks then each generation's delta
    /// blocks, ascending in `first_id`.
    blocks: Vec<BlockEntry>,
    /// Per-block vertex bound for decoding (the graph may grow across
    /// generations, so delta blocks can reference vertices ≥ base n).
    block_bound: Vec<u32>,
    /// Unified size-run table in id order (sizes ascend within the base
    /// and within each generation, not globally).
    runs: Vec<SizeRun>,
    /// Total clique ids (live + dead).
    total: u64,
    /// Live cliques.
    live: u64,
    /// Tombstoned ids over the whole id space.
    dead: BitSet,
    /// Per-vertex postings gained after the base, ascending ids.
    overlay: HashMap<Vertex, Vec<u64>>,
    /// `(size, live count)` ascending in size.
    live_hist: Vec<(u32, u64)>,
    store: Mutex<File>,
    postings: Mutex<File>,
    cache: Mutex<BlockCache>,
    /// Blocks that failed a CRC/codec check since open. Never unset at
    /// runtime — a corrupt block stays corrupt until the index is
    /// rebuilt (and hot-reloaded, which starts a fresh reader).
    quarantined: Mutex<BTreeSet<usize>>,
    io: IoCounters,
}

impl CliqueIndex {
    /// Open the index in `dir`. Refuses an uncommitted directory (no
    /// `index.meta`) and any header/CRC/consistency violation, all as
    /// typed errors.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let meta_path = dir.join(META_FILE);
        if !meta_path.exists() {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("{}: no index.meta — not a committed index", dir.display()),
            )));
        }
        let meta = IndexMeta::from_text(&std::fs::read_to_string(meta_path)?)?;

        let gsd = std::fs::read(dir.join(DIRECTORY_FILE))?;
        // The manifest pins the committed extent of the directory file;
        // bytes past it are a torn append from a crashed update and are
        // ignored (pre-chain manifests record 0 = "the whole file").
        let committed = if meta.dir_bytes == 0 {
            gsd.len()
        } else {
            meta.dir_bytes as usize
        };
        if gsd.len() < committed {
            return Err(StoreError::Torn {
                context: "index directory file",
                needed: committed,
                have: gsd.len(),
            });
        }
        let gsd = &gsd[..committed];
        let n = check_header(gsd, DIRECTORY_MAGIC, "index directory header")?;
        let (payload, mut pos) = parse_frame(gsd, HEADER_LEN, "index directory")?;
        let directory = IndexDirectory::decode(payload)?;
        if directory.n != n {
            return Err(StoreError::GraphMismatch {
                checkpoint_bits: directory.n as usize,
                graph_bits: n as usize,
            });
        }
        if directory.postings_offsets.len() != directory.n as usize + 1 {
            return Err(StoreError::CountMismatch {
                expected: directory.n as usize + 1,
                found: directory.postings_offsets.len(),
            });
        }
        let mut chain = Vec::new();
        while pos < gsd.len() {
            let (payload, next) = parse_frame(gsd, pos, "delta generation")?;
            chain.push(DeltaGeneration::decode(payload)?);
            pos = next;
        }
        if chain.len() as u64 != meta.delta_generations {
            return Err(StoreError::CountMismatch {
                expected: meta.delta_generations as usize,
                found: chain.len(),
            });
        }

        // Chain consistency against the manifest: contiguous id space,
        // monotone vertex growth, strictly increasing generations
        // ending at the manifest's, and contiguous postings extents.
        let mut total = directory.clique_count;
        let mut max_n = directory.n;
        let mut post_end = directory.postings_bytes;
        let mut tombstone_total = 0u64;
        let mut prev_generation = 0u64;
        for g in &chain {
            if g.first_id != total
                || g.n < max_n
                || g.postings_offset != post_end
                || g.generation <= prev_generation
            {
                return Err(StoreError::Codec {
                    context: "delta chain discontinuity",
                });
            }
            total += g.count;
            max_n = g.n;
            post_end += g.postings_len;
            tombstone_total += g.tombstones.len() as u64;
            prev_generation = g.generation;
        }
        if let Some(last) = chain.last() {
            if last.generation != meta.generation {
                return Err(StoreError::Codec {
                    context: "delta chain generation does not match manifest",
                });
            }
        }
        if total != meta.cliques || tombstone_total != meta.tombstones {
            return Err(StoreError::CountMismatch {
                expected: meta.cliques as usize,
                found: total as usize,
            });
        }
        if max_n as usize != meta.n {
            return Err(StoreError::GraphMismatch {
                checkpoint_bits: max_n as usize,
                graph_bits: meta.n,
            });
        }
        if post_end != meta.postings_bytes {
            return Err(StoreError::CountMismatch {
                expected: meta.postings_bytes as usize,
                found: post_end as usize,
            });
        }

        // Unified block / size-run tables.
        let mut blocks = directory.blocks.clone();
        let mut block_bound = vec![directory.n; blocks.len()];
        let mut runs = directory.size_runs.clone();
        for g in &chain {
            blocks.extend_from_slice(&g.blocks);
            block_bound.extend(std::iter::repeat(g.n).take(g.blocks.len()));
            runs.extend_from_slice(&g.size_runs);
        }
        if blocks.len() as u64 != meta.blocks {
            return Err(StoreError::CountMismatch {
                expected: meta.blocks as usize,
                found: blocks.len(),
            });
        }

        // Tombstones → dead set. Double kills are corruption: every id
        // dies at most once across the whole chain.
        let mut dead = BitSet::new(total as usize);
        for g in &chain {
            for &id in &g.tombstones {
                if !dead.insert(id as usize) {
                    return Err(StoreError::Codec {
                        context: "tombstone kills an already-dead clique",
                    });
                }
            }
        }
        let live = total - tombstone_total;

        // Live histogram: run totals minus each dead id's run.
        let mut hist: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for run in &runs {
            *hist.entry(run.size).or_insert(0) += run.count;
        }
        for id in dead.iter_ones() {
            let run_i = runs
                .partition_point(|r| r.first_id <= id as u64)
                .saturating_sub(1);
            let size = runs[run_i].size;
            match hist.get_mut(&size) {
                Some(c) if *c > 0 => *c -= 1,
                _ => {
                    return Err(StoreError::Codec {
                        context: "tombstone outside any size run",
                    })
                }
            }
        }
        let live_hist: Vec<(u32, u64)> = hist.into_iter().filter(|&(_, c)| c > 0).collect();

        let store = open_checked(&dir.join(CLIQUES_FILE), CLIQUES_MAGIC, directory.n)?;
        let mut postings = open_checked(&dir.join(POSTINGS_FILE), POSTINGS_MAGIC, directory.n)?;

        // Postings overlays: one eagerly-loaded frame per generation
        // (delta postings are small next to the base file).
        let mut overlay: HashMap<Vertex, Vec<u64>> = HashMap::new();
        for g in &chain {
            let mut bytes = vec![0u8; g.postings_len as usize];
            postings.seek(SeekFrom::Start(g.postings_offset))?;
            read_exact_typed(&mut postings, &mut bytes, "delta postings frame")?;
            let (payload, next) = parse_frame(&bytes, 0, "delta postings frame")?;
            if next != bytes.len() {
                return Err(StoreError::Codec {
                    context: "delta postings frame",
                });
            }
            for (v, ids) in
                decode_delta_postings(payload, g.n, g.id_range(), "delta postings frame")?
            {
                overlay.entry(v).or_default().extend(ids);
            }
        }

        Ok(CliqueIndex {
            meta,
            directory,
            chain,
            blocks,
            block_bound,
            runs,
            total,
            live,
            dead,
            overlay,
            live_hist,
            store: Mutex::new(store),
            postings: Mutex::new(postings),
            cache: Mutex::new(BlockCache::new(DEFAULT_CACHE_BLOCKS)),
            quarantined: Mutex::new(BTreeSet::new()),
            io: IoCounters::default(),
        })
    }

    /// Override the block cache capacity (decoded blocks retained).
    pub fn cache_blocks(self, capacity: usize) -> Self {
        *self.cache.lock().unwrap() = BlockCache::new(capacity);
        self
    }

    /// Vertices of the indexed graph.
    pub fn n(&self) -> usize {
        self.meta.n
    }

    /// Rebuild generation recorded in `index.meta` (0 for indexes
    /// written before generations existed).
    pub fn generation(&self) -> u64 {
        self.meta.generation
    }

    /// Block indexes quarantined since open (ascending). Empty on a
    /// healthy index.
    pub fn quarantined_blocks(&self) -> Vec<usize> {
        self.quarantined.lock().unwrap().iter().copied().collect()
    }

    /// Snapshot of the reader's cumulative I/O counters (cache
    /// hits/misses/evictions, decode count and nanoseconds, postings
    /// reads). Lock-free; safe to call from a metrics scrape.
    pub fn io_stats(&self) -> IoStats {
        self.io.snapshot()
    }

    /// Total clique *ids* in the index — live and tombstoned. Ids are
    /// stable across updates, so this only grows until a compaction.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Live (non-tombstoned) cliques.
    pub fn live_len(&self) -> u64 {
        self.live
    }

    /// True when the index holds no live cliques.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether `id` names a live clique (false for tombstoned ids and
    /// ids beyond the index).
    pub fn is_live(&self, id: u64) -> bool {
        id < self.total && !self.dead.contains(id as usize)
    }

    /// Largest live clique size present.
    pub fn max_size(&self) -> u32 {
        self.live_hist.last().map_or(0, |&(s, _)| s)
    }

    /// Delta generations appended after the base (0 = clean base).
    pub fn delta_generations(&self) -> u64 {
        self.chain.len() as u64
    }

    /// The committed delta chain, oldest first.
    pub fn chain(&self) -> &[DeltaGeneration] {
        &self.chain
    }

    /// The committed manifest this reader opened.
    pub fn meta(&self) -> &IndexMeta {
        &self.meta
    }

    /// Index-level statistics (all from the directory — no store scan).
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            n: self.meta.n,
            cliques: self.total,
            max_clique: self.max_size(),
            blocks: self.blocks.len() as u64,
            store_bytes: self.meta.store_bytes,
            postings_bytes: self.meta.postings_bytes,
            size_histogram: self.live_hist.clone(),
            live: self.live,
            tombstones: self.total - self.live,
            delta_generations: self.chain.len() as u64,
        }
    }

    /// Materialize the clique with id `id`. Works for tombstoned ids
    /// too (ids are never reused); callers that must not surface dead
    /// cliques filter with [`is_live`](Self::is_live) first.
    pub fn get(&self, id: u64) -> Result<Clique, StoreError> {
        if id >= self.total {
            return Err(StoreError::Codec {
                context: "clique id beyond the index",
            });
        }
        let block_i = self
            .blocks
            .partition_point(|b| b.first_id <= id)
            .saturating_sub(1);
        let block = self.load_block(block_i)?;
        let entry = &self.blocks[block_i];
        let within = (id - entry.first_id) as usize;
        block.get(within).cloned().ok_or(StoreError::CountMismatch {
            expected: entry.count as usize,
            found: block.len(),
        })
    }

    /// Size of the clique with id `id`, from the run table alone (no
    /// store read).
    pub fn size_of(&self, id: u64) -> Option<u32> {
        if id >= self.total {
            return None;
        }
        let run_i = self
            .runs
            .partition_point(|r| r.first_id <= id)
            .saturating_sub(1);
        Some(self.runs[run_i].size)
    }

    /// `cliques-containing(v)`: ids of every *live* clique containing
    /// vertex `v`, ascending. A vertex outside the graph contains
    /// nothing; vertices added by later generations answer from the
    /// postings overlays alone.
    pub fn containing(&self, v: Vertex) -> Result<Vec<u64>, StoreError> {
        let vu = v as usize;
        if vu >= self.meta.n {
            return Ok(Vec::new());
        }
        let mut ids = if vu < self.directory.n as usize {
            self.base_postings(vu)?
        } else {
            Vec::new()
        };
        if let Some(extra) = self.overlay.get(&v) {
            // Overlay ids all postdate the base id space, so the
            // concatenation stays ascending.
            ids.extend_from_slice(extra);
        }
        ids.retain(|&id| !self.dead.contains(id as usize));
        Ok(ids)
    }

    /// Base-file postings record for a vertex below the base n.
    fn base_postings(&self, v: usize) -> Result<Vec<u64>, StoreError> {
        let start = self.directory.postings_offsets[v];
        let end = self.directory.postings_offsets[v + 1];
        if end < start || end > self.directory.postings_bytes {
            return Err(StoreError::Codec {
                context: "postings offsets",
            });
        }
        let mut bytes = vec![0u8; (end - start) as usize];
        self.io.postings_reads.fetch_add(1, Ordering::Relaxed);
        {
            gsb_core::failpoint::inject("index.postings_read").map_err(StoreError::Io)?;
            let mut f = self.postings.lock().unwrap();
            f.seek(SeekFrom::Start(start))?;
            read_exact_typed(&mut f, &mut bytes, "postings record")?;
        }
        let (payload, _) = parse_frame(&bytes, 0, "postings record")?;
        let mut pos = 0usize;
        let ids = crate::format::decode_id_list(
            payload,
            &mut pos,
            self.directory.clique_count,
            "postings record",
        )?;
        if pos != payload.len() {
            return Err(StoreError::Codec {
                context: "postings record",
            });
        }
        Ok(ids)
    }

    /// `cliques-of-size(lo..=hi)` as a contiguous id range. Only valid
    /// on a chain-free index (base ids are sorted by size; delta ids
    /// are not globally, and tombstones punch holes) — chain-aware
    /// callers use [`ids_of_size`](Self::ids_of_size).
    pub fn of_size(&self, lo: u32, hi: u32) -> std::ops::Range<u64> {
        self.directory.size_range_ids(lo, hi)
    }

    /// Ids of every *live* clique with size in `lo..=hi`, ascending.
    pub fn ids_of_size(&self, lo: u32, hi: u32) -> Vec<u64> {
        let mut out = Vec::new();
        for run in &self.runs {
            if run.size < lo || run.size > hi {
                continue;
            }
            out.extend(
                (run.first_id..run.first_id + run.count)
                    .filter(|&id| !self.dead.contains(id as usize)),
            );
        }
        out
    }

    /// The lexicographically first maximum *live* clique (None when
    /// empty). Within any one run cliques ascend lexicographically, so
    /// only the first live id of each max-size run is materialized.
    pub fn max_clique(&self) -> Result<Option<Clique>, StoreError> {
        let Some(&(target, _)) = self.live_hist.last() else {
            return Ok(None);
        };
        let mut best: Option<Clique> = None;
        for run in &self.runs {
            if run.size != target {
                continue;
            }
            let first_live = (run.first_id..run.first_id + run.count)
                .find(|&id| !self.dead.contains(id as usize));
            if let Some(id) = first_live {
                let c = self.get(id)?;
                if best.as_ref().is_none_or(|b| c < *b) {
                    best = Some(c);
                }
            }
        }
        Ok(best)
    }

    /// `overlap(v, w)`: ids of *live* cliques containing both vertices,
    /// via postings intersection on the dense [`BitSet`].
    pub fn overlap(&self, v: Vertex, w: Vertex) -> Result<Vec<u64>, StoreError> {
        let a = self.containing(v)?;
        let b = self.containing(w)?;
        if a.is_empty() || b.is_empty() {
            return Ok(Vec::new());
        }
        let universe = self.total as usize;
        let mut set = BitSet::from_ones(universe, a.iter().map(|&id| id as usize));
        let other = BitSet::from_ones(universe, b.iter().map(|&id| id as usize));
        set.and_assign(&other);
        Ok(set.iter_ones().map(|id| id as u64).collect())
    }

    /// Materialize a batch of ids (helper for range and postings
    /// queries).
    pub fn materialize(
        &self,
        ids: impl IntoIterator<Item = u64>,
    ) -> Result<Vec<Clique>, StoreError> {
        let ids: Vec<u64> = ids.into_iter().collect();
        let mut out = Vec::with_capacity(ids.len());
        self.with_cliques(&ids, |_, c| out.push(c.clone()))?;
        Ok(out)
    }

    /// Visit a batch of ids, borrowing each decoded clique in place —
    /// one cache lookup per block *run* instead of per id, and no
    /// per-clique allocation. Ascending ids (what postings queries
    /// return) visit each block exactly once, so bulk scans over a
    /// postings list cost one decode per block instead of one per id.
    pub fn with_cliques(
        &self,
        ids: &[u64],
        mut f: impl FnMut(u64, &Clique),
    ) -> Result<(), StoreError> {
        let mut cached: Option<(usize, Arc<Vec<Clique>>)> = None;
        for &id in ids {
            if id >= self.total {
                return Err(StoreError::Codec {
                    context: "clique id beyond the index",
                });
            }
            let block_i = self
                .blocks
                .partition_point(|b| b.first_id <= id)
                .saturating_sub(1);
            if cached.as_ref().is_none_or(|(i, _)| *i != block_i) {
                cached = Some((block_i, self.load_block(block_i)?));
            }
            let (_, block) = cached.as_ref().expect("block just cached");
            let entry = &self.blocks[block_i];
            let within = (id - entry.first_id) as usize;
            let c = block.get(within).ok_or(StoreError::CountMismatch {
                expected: entry.count as usize,
                found: block.len(),
            })?;
            f(id, c);
        }
        Ok(())
    }

    /// Materialize a batch of ids, *skipping* (and counting) any id
    /// whose block is quarantined or fails its corruption checks right
    /// now. Transient I/O errors still propagate — only corruption is
    /// degradable, because every clique actually returned stays exact.
    pub fn materialize_degraded(
        &self,
        ids: impl IntoIterator<Item = u64>,
    ) -> Result<DegradedCliques, StoreError> {
        let mut out = DegradedCliques::default();
        for id in ids {
            match self.get(id) {
                Ok(c) => out.cliques.push(c),
                Err(e) if is_corruption(&e) => out.skipped += 1,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    fn load_block(&self, block_i: usize) -> Result<Arc<Vec<Clique>>, StoreError> {
        if let Some(hit) = self.cache.lock().unwrap().get(block_i) {
            self.io.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.io.cache_misses.fetch_add(1, Ordering::Relaxed);
        if self.quarantined.lock().unwrap().contains(&block_i) {
            return Err(StoreError::Codec {
                context: "clique block quarantined",
            });
        }
        let result = self.load_block_uncached(block_i);
        if let Err(e) = &result {
            // Corruption is permanent for this reader's lifetime; a
            // transient I/O failure (including injected faults) is not.
            if is_corruption(e) {
                self.quarantined.lock().unwrap().insert(block_i);
            }
        }
        result
    }

    fn load_block_uncached(&self, block_i: usize) -> Result<Arc<Vec<Clique>>, StoreError> {
        let decode_started = Instant::now();
        let entry = self.blocks.get(block_i).ok_or(StoreError::Codec {
            context: "block table",
        })?;
        let bound = self.block_bound[block_i];
        gsb_core::failpoint::inject("index.block_read").map_err(StoreError::Io)?;
        let mut head = [0u8; 8];
        let payload = {
            let mut f = self.store.lock().unwrap();
            f.seek(SeekFrom::Start(entry.offset))?;
            read_exact_typed(&mut f, &mut head, "clique block frame")?;
            let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
            if len > self.meta.store_bytes as usize {
                return Err(StoreError::Torn {
                    context: "clique block frame",
                    needed: len,
                    have: self.meta.store_bytes as usize,
                });
            }
            let mut payload = vec![0u8; len];
            read_exact_typed(&mut f, &mut payload, "clique block")?;
            payload
        };
        let stored = u32::from_le_bytes(head[4..8].try_into().unwrap());
        let computed = gsb_core::store::crc32(&payload);
        if stored != computed {
            return Err(StoreError::Checksum {
                context: "clique block",
                stored,
                computed,
            });
        }
        if payload.len() < 4 {
            return Err(StoreError::Torn {
                context: "clique block",
                needed: 4,
                have: payload.len(),
            });
        }
        let count = u32::from_le_bytes(payload[..4].try_into().unwrap());
        if count != entry.count {
            return Err(StoreError::CountMismatch {
                expected: entry.count as usize,
                found: count as usize,
            });
        }
        let mut pos = 4usize;
        let mut cliques = Vec::with_capacity(count as usize);
        for _ in 0..count {
            cliques.push(crate::format::decode_clique(
                &payload,
                &mut pos,
                bound,
                "clique record",
            )?);
        }
        if pos != payload.len() {
            return Err(StoreError::Codec {
                context: "clique block",
            });
        }
        let cliques = Arc::new(cliques);
        self.io.blocks_decoded.fetch_add(1, Ordering::Relaxed);
        self.io.decode_ns.fetch_add(
            decode_started.elapsed().as_nanos() as u64,
            Ordering::Relaxed,
        );
        if self.cache.lock().unwrap().put(block_i, cliques.clone()) {
            self.io.cache_evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(cliques)
    }
}

/// Errors that indicate corrupt bytes (permanent until a rebuild), as
/// opposed to transient I/O failures a retry could clear.
fn is_corruption(e: &StoreError) -> bool {
    !matches!(e, StoreError::Io(_))
}

/// Open a file and validate its 16-byte header against `magic` and the
/// directory's vertex count.
fn open_checked(path: &Path, magic: u64, n: u32) -> Result<File, StoreError> {
    let mut f = File::open(path)?;
    let mut header = [0u8; HEADER_LEN];
    read_exact_typed(&mut f, &mut header, "index file header")?;
    let file_n = check_header(&header, magic, "index file header")?;
    if file_n != n {
        return Err(StoreError::GraphMismatch {
            checkpoint_bits: file_n as usize,
            graph_bits: n as usize,
        });
    }
    Ok(f)
}

/// `read_exact` with short reads surfaced as typed truncation.
fn read_exact_typed(f: &mut File, buf: &mut [u8], context: &'static str) -> Result<(), StoreError> {
    f.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Torn {
                context,
                needed: buf.len(),
                have: 0,
            }
        } else {
            StoreError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::IndexWriter;
    use gsb_core::CliqueSink;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gsb-index-reader-{}-{name}", std::process::id()))
    }

    fn build(dir: &Path, n: usize, cliques: &[&[Vertex]]) {
        let _ = std::fs::remove_dir_all(dir);
        let mut w = IndexWriter::create(dir, n).unwrap().block_target(24);
        for c in cliques {
            w.maximal(c);
        }
        w.finish().unwrap();
    }

    #[test]
    fn queries_answer_from_disk() {
        let dir = tmp("basic");
        build(
            &dir,
            10,
            &[
                &[0, 1, 2],
                &[2, 3, 4],
                &[5, 6, 7],
                &[0, 1, 2, 3],
                &[4, 5, 6, 7],
            ],
        );
        let idx = CliqueIndex::open(&dir).unwrap();
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.n(), 10);
        assert_eq!(idx.max_size(), 4);
        assert_eq!(idx.get(1).unwrap(), vec![2, 3, 4]);
        assert_eq!(idx.containing(2).unwrap(), vec![0, 1, 3]);
        assert_eq!(idx.containing(9).unwrap(), Vec::<u64>::new());
        assert_eq!(idx.containing(99).unwrap(), Vec::<u64>::new());
        assert_eq!(idx.of_size(3, 3), 0..3);
        assert_eq!(idx.of_size(4, 10), 3..5);
        assert_eq!(idx.of_size(9, 10), 0..0);
        assert_eq!(idx.max_clique().unwrap().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(idx.overlap(0, 3).unwrap(), vec![3]);
        assert_eq!(idx.overlap(0, 9).unwrap(), Vec::<u64>::new());
        let stats = idx.stats();
        assert_eq!(stats.cliques, 5);
        assert_eq!(stats.size_histogram, vec![(3, 3), (4, 2)]);
        assert!(stats.postings_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_eviction_keeps_answers_identical() {
        let dir = tmp("cache");
        let cliques: Vec<Vec<Vertex>> = (0..40).map(|i| vec![i, i + 1, i + 2]).collect();
        let refs: Vec<&[Vertex]> = cliques.iter().map(Vec::as_slice).collect();
        build(&dir, 50, &refs);
        let idx = CliqueIndex::open(&dir).unwrap().cache_blocks(2);
        for round in 0..3 {
            for id in 0..40u64 {
                assert_eq!(idx.get(id).unwrap(), cliques[id as usize], "round {round}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_stats_track_cache_and_decode_activity() {
        let dir = tmp("iostats");
        let cliques: Vec<Vec<Vertex>> = (0..40).map(|i| vec![i, i + 1, i + 2]).collect();
        let refs: Vec<&[Vertex]> = cliques.iter().map(Vec::as_slice).collect();
        build(&dir, 50, &refs);
        let idx = CliqueIndex::open(&dir).unwrap().cache_blocks(2);
        assert_eq!(idx.io_stats(), IoStats::default());

        let blocks = idx.directory.blocks.len() as u64;
        assert!(blocks > 2, "need >2 blocks to exercise eviction");
        // A full scan decodes every block once; with capacity 2 the
        // later blocks evict the earlier ones.
        for id in 0..40u64 {
            idx.get(id).unwrap();
        }
        let s = idx.io_stats();
        assert_eq!(s.blocks_decoded, blocks);
        assert_eq!(s.cache_misses, blocks);
        assert_eq!(s.cache_evictions, blocks - 2);
        assert_eq!(s.cache_hits, 40 - blocks);
        assert!(s.decode_ns > 0);
        assert_eq!(s.postings_reads, 0);

        // A repeat of the last id is a pure cache hit.
        idx.get(39).unwrap();
        let s2 = idx.io_stats();
        assert_eq!(s2.cache_hits, s.cache_hits + 1);
        assert_eq!(s2.blocks_decoded, s.blocks_decoded);

        idx.containing(3).unwrap();
        assert_eq!(idx.io_stats().postings_reads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_block_is_quarantined_and_serving_degrades_exact() {
        let dir = tmp("quarantine");
        let cliques: Vec<Vec<Vertex>> = (0..40).map(|i| vec![i, i + 1, i + 2]).collect();
        let refs: Vec<&[Vertex]> = cliques.iter().map(Vec::as_slice).collect();
        build(&dir, 50, &refs);

        // Flip one byte inside the *last* block's payload so earlier
        // blocks stay healthy.
        let idx = CliqueIndex::open(&dir).unwrap();
        let last_block = idx.directory.blocks.len() - 1;
        assert!(last_block > 0, "need multiple blocks for this test");
        let offset = idx.directory.blocks[last_block].offset as usize;
        drop(idx);
        let path = dir.join(CLIQUES_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[offset + 10] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let idx = CliqueIndex::open(&dir).unwrap();
        let first_bad = idx.directory.blocks[last_block].first_id;
        // Healthy ids still answer exactly.
        assert_eq!(idx.get(0).unwrap(), cliques[0]);
        // The corrupt block fails typed and lands in quarantine.
        assert!(is_corruption(&idx.get(first_bad).unwrap_err()));
        assert_eq!(idx.quarantined_blocks(), vec![last_block]);
        // A second hit fails fast (still typed, still quarantined once).
        assert!(idx.get(first_bad).is_err());
        assert_eq!(idx.quarantined_blocks(), vec![last_block]);
        // Degraded materialization skips exactly the quarantined ids.
        let all: Vec<u64> = (0..40).collect();
        let degraded = idx.materialize_degraded(all).unwrap();
        assert_eq!(degraded.skipped, 40 - first_bad);
        assert!(!degraded.is_complete());
        assert_eq!(degraded.cliques.len() as u64, first_bad);
        for (i, c) in degraded.cliques.iter().enumerate() {
            assert_eq!(c, &cliques[i]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_or_missing_dir_is_typed() {
        let dir = tmp("missing");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(CliqueIndex::open(&dir), Err(StoreError::Io(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
