//! [`CliqueIndex`] — the read-only query engine over a committed index.
//!
//! `open` loads the manifest and directory into memory (a few bytes per
//! size run, block, and vertex) and keeps the store and postings files
//! open; queries then touch only the frames they need. Decoded blocks
//! sit in a small LRU cache, so point lookups in a hot id range skip
//! both the read and the CRC pass. All shared state is behind mutexes,
//! making one `CliqueIndex` safely shareable across server threads via
//! `Arc`.
//!
//! Every decode path bound-checks against the directory and verifies
//! the frame CRC: a corrupted block surfaces as a typed
//! [`StoreError`], never a panic or a silently wrong answer.
//!
//! Corruption is additionally *quarantined*: a block that fails its
//! CRC/codec checks is remembered in an in-memory set, so later queries
//! fail fast without re-reading it, and the serving layer can answer
//! **degraded-exact** via [`CliqueIndex::materialize_degraded`] — every
//! clique returned is exact, quarantined ids are skipped and counted.
//! Transient I/O errors do *not* quarantine (a retry may succeed).

use crate::format::{
    check_header, parse_frame, IndexDirectory, IndexMeta, CLIQUES_FILE, CLIQUES_MAGIC,
    DIRECTORY_FILE, DIRECTORY_MAGIC, HEADER_LEN, META_FILE, POSTINGS_FILE, POSTINGS_MAGIC,
};
use gsb_bitset::BitSet;
use gsb_core::store::StoreError;
use gsb_core::{Clique, Vertex};
use std::collections::{BTreeSet, HashMap};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default number of decoded blocks kept by the LRU cache.
pub const DEFAULT_CACHE_BLOCKS: usize = 32;

/// Index-level statistics for `gsb stats --index`.
#[derive(Clone, Debug, Default)]
pub struct IndexStats {
    /// Vertices of the indexed graph.
    pub n: usize,
    /// Total cliques.
    pub cliques: u64,
    /// Largest clique size.
    pub max_clique: u32,
    /// Blocks in the store.
    pub blocks: u64,
    /// Bytes of the clique store.
    pub store_bytes: u64,
    /// Bytes of the postings file.
    pub postings_bytes: u64,
    /// `(size, count)` pairs, ascending in size.
    pub size_histogram: Vec<(u32, u64)>,
}

/// Tiny exact LRU over decoded blocks: a stamp per entry, evict the
/// oldest. Capacities are small (default 32), so the O(capacity)
/// eviction scan is noise next to the read it avoids.
struct BlockCache {
    capacity: usize,
    stamp: u64,
    entries: HashMap<usize, (u64, Arc<Vec<Clique>>)>,
}

impl BlockCache {
    fn new(capacity: usize) -> Self {
        BlockCache {
            capacity: capacity.max(1),
            stamp: 0,
            entries: HashMap::new(),
        }
    }

    fn get(&mut self, block: usize) -> Option<Arc<Vec<Clique>>> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(&block).map(|e| {
            e.0 = stamp;
            e.1.clone()
        })
    }

    /// Insert, returning whether an older entry was evicted.
    fn put(&mut self, block: usize, cliques: Arc<Vec<Clique>>) -> bool {
        self.stamp += 1;
        let mut evicted = false;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&block) {
            if let Some((&oldest, _)) = self.entries.iter().min_by_key(|(_, (s, _))| *s) {
                self.entries.remove(&oldest);
                evicted = true;
            }
        }
        self.entries.insert(block, (self.stamp, cliques));
        evicted
    }
}

/// A point-in-time snapshot of the reader's I/O counters — block-cache
/// effectiveness and decode cost — for the live `/metrics` exposition.
/// Counters are cumulative since [`CliqueIndex::open`] and reset on
/// hot-reload (a fresh reader), which the serving layer reports via the
/// index `generation`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Block lookups answered from the decoded-block cache.
    pub cache_hits: u64,
    /// Block lookups that had to read and decode from disk.
    pub cache_misses: u64,
    /// Cache insertions that displaced an older block.
    pub cache_evictions: u64,
    /// Blocks successfully read, CRC-verified, and decoded.
    pub blocks_decoded: u64,
    /// Total nanoseconds spent in block read+CRC+decode.
    pub decode_ns: u64,
    /// Postings-list reads served (one per `containing` lookup).
    pub postings_reads: u64,
}

/// The reader's live I/O counters (relaxed atomics — see [`IoStats`]).
#[derive(Debug, Default)]
struct IoCounters {
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    blocks_decoded: AtomicU64,
    decode_ns: AtomicU64,
    postings_reads: AtomicU64,
}

impl IoCounters {
    fn snapshot(&self) -> IoStats {
        IoStats {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            blocks_decoded: self.blocks_decoded.load(Ordering::Relaxed),
            decode_ns: self.decode_ns.load(Ordering::Relaxed),
            postings_reads: self.postings_reads.load(Ordering::Relaxed),
        }
    }
}

/// What [`CliqueIndex::materialize_degraded`] produced: every clique
/// that could be read exactly, plus how many ids were skipped because
/// their block is quarantined.
#[derive(Clone, Debug, Default)]
pub struct DegradedCliques {
    /// Exact cliques, in request order.
    pub cliques: Vec<Clique>,
    /// Ids skipped because their block is corrupt/quarantined.
    pub skipped: u64,
}

impl DegradedCliques {
    /// True when nothing was skipped — the answer is complete.
    pub fn is_complete(&self) -> bool {
        self.skipped == 0
    }
}

/// A committed on-disk index, opened read-only. See the module docs.
pub struct CliqueIndex {
    meta: IndexMeta,
    directory: IndexDirectory,
    store: Mutex<File>,
    postings: Mutex<File>,
    cache: Mutex<BlockCache>,
    /// Blocks that failed a CRC/codec check since open. Never unset at
    /// runtime — a corrupt block stays corrupt until the index is
    /// rebuilt (and hot-reloaded, which starts a fresh reader).
    quarantined: Mutex<BTreeSet<usize>>,
    io: IoCounters,
}

impl CliqueIndex {
    /// Open the index in `dir`. Refuses an uncommitted directory (no
    /// `index.meta`) and any header/CRC/consistency violation, all as
    /// typed errors.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let meta_path = dir.join(META_FILE);
        if !meta_path.exists() {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("{}: no index.meta — not a committed index", dir.display()),
            )));
        }
        let meta = IndexMeta::from_text(&std::fs::read_to_string(meta_path)?)?;

        let dir_bytes = std::fs::read(dir.join(DIRECTORY_FILE))?;
        let n = check_header(&dir_bytes, DIRECTORY_MAGIC, "index directory header")?;
        let (payload, _) = parse_frame(&dir_bytes, HEADER_LEN, "index directory")?;
        let directory = IndexDirectory::decode(payload)?;
        if directory.n != n || directory.n as usize != meta.n {
            return Err(StoreError::GraphMismatch {
                checkpoint_bits: directory.n as usize,
                graph_bits: meta.n,
            });
        }
        if directory.clique_count != meta.cliques || directory.postings_offsets.len() != meta.n + 1
        {
            return Err(StoreError::CountMismatch {
                expected: meta.cliques as usize,
                found: directory.clique_count as usize,
            });
        }

        let store = open_checked(&dir.join(CLIQUES_FILE), CLIQUES_MAGIC, directory.n)?;
        let postings = open_checked(&dir.join(POSTINGS_FILE), POSTINGS_MAGIC, directory.n)?;
        Ok(CliqueIndex {
            meta,
            directory,
            store: Mutex::new(store),
            postings: Mutex::new(postings),
            cache: Mutex::new(BlockCache::new(DEFAULT_CACHE_BLOCKS)),
            quarantined: Mutex::new(BTreeSet::new()),
            io: IoCounters::default(),
        })
    }

    /// Override the block cache capacity (decoded blocks retained).
    pub fn cache_blocks(self, capacity: usize) -> Self {
        *self.cache.lock().unwrap() = BlockCache::new(capacity);
        self
    }

    /// Vertices of the indexed graph.
    pub fn n(&self) -> usize {
        self.meta.n
    }

    /// Rebuild generation recorded in `index.meta` (0 for indexes
    /// written before generations existed).
    pub fn generation(&self) -> u64 {
        self.meta.generation
    }

    /// Block indexes quarantined since open (ascending). Empty on a
    /// healthy index.
    pub fn quarantined_blocks(&self) -> Vec<usize> {
        self.quarantined.lock().unwrap().iter().copied().collect()
    }

    /// Snapshot of the reader's cumulative I/O counters (cache
    /// hits/misses/evictions, decode count and nanoseconds, postings
    /// reads). Lock-free; safe to call from a metrics scrape.
    pub fn io_stats(&self) -> IoStats {
        self.io.snapshot()
    }

    /// Total cliques in the index.
    pub fn len(&self) -> u64 {
        self.directory.clique_count
    }

    /// True when the index holds no cliques.
    pub fn is_empty(&self) -> bool {
        self.directory.clique_count == 0
    }

    /// Largest clique size present.
    pub fn max_size(&self) -> u32 {
        self.directory.max_size()
    }

    /// Index-level statistics (all from the directory — no store scan).
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            n: self.meta.n,
            cliques: self.directory.clique_count,
            max_clique: self.directory.max_size(),
            blocks: self.directory.blocks.len() as u64,
            store_bytes: self.meta.store_bytes,
            postings_bytes: self.directory.postings_bytes,
            size_histogram: self
                .directory
                .size_runs
                .iter()
                .map(|r| (r.size, r.count))
                .collect(),
        }
    }

    /// Materialize the clique with id `id`.
    pub fn get(&self, id: u64) -> Result<Clique, StoreError> {
        if id >= self.directory.clique_count {
            return Err(StoreError::Codec {
                context: "clique id beyond the index",
            });
        }
        let block_i = self
            .directory
            .blocks
            .partition_point(|b| b.first_id <= id)
            .saturating_sub(1);
        let block = self.load_block(block_i)?;
        let entry = &self.directory.blocks[block_i];
        let within = (id - entry.first_id) as usize;
        block.get(within).cloned().ok_or(StoreError::CountMismatch {
            expected: entry.count as usize,
            found: block.len(),
        })
    }

    /// `cliques-containing(v)`: ids of every clique containing vertex
    /// `v`, ascending. A vertex outside the graph contains nothing.
    pub fn containing(&self, v: Vertex) -> Result<Vec<u64>, StoreError> {
        let v = v as usize;
        if v >= self.meta.n {
            return Ok(Vec::new());
        }
        let start = self.directory.postings_offsets[v];
        let end = self.directory.postings_offsets[v + 1];
        if end < start || end > self.directory.postings_bytes {
            return Err(StoreError::Codec {
                context: "postings offsets",
            });
        }
        let mut bytes = vec![0u8; (end - start) as usize];
        self.io.postings_reads.fetch_add(1, Ordering::Relaxed);
        {
            gsb_core::failpoint::inject("index.postings_read").map_err(StoreError::Io)?;
            let mut f = self.postings.lock().unwrap();
            f.seek(SeekFrom::Start(start))?;
            read_exact_typed(&mut f, &mut bytes, "postings record")?;
        }
        let (payload, _) = parse_frame(&bytes, 0, "postings record")?;
        let mut pos = 0usize;
        let ids = crate::format::decode_id_list(
            payload,
            &mut pos,
            self.directory.clique_count,
            "postings record",
        )?;
        if pos != payload.len() {
            return Err(StoreError::Codec {
                context: "postings record",
            });
        }
        Ok(ids)
    }

    /// `cliques-of-size(lo..=hi)`: the contiguous id range of every
    /// clique with size in the range (ids are sorted by size).
    pub fn of_size(&self, lo: u32, hi: u32) -> std::ops::Range<u64> {
        self.directory.size_range_ids(lo, hi)
    }

    /// The lexicographically first maximum clique (None when empty).
    pub fn max_clique(&self) -> Result<Option<Clique>, StoreError> {
        match self.directory.size_runs.last() {
            None => Ok(None),
            Some(run) => self.get(run.first_id).map(Some),
        }
    }

    /// `overlap(v, w)`: ids of cliques containing *both* vertices, via
    /// postings intersection on the dense [`BitSet`].
    pub fn overlap(&self, v: Vertex, w: Vertex) -> Result<Vec<u64>, StoreError> {
        let a = self.containing(v)?;
        let b = self.containing(w)?;
        if a.is_empty() || b.is_empty() {
            return Ok(Vec::new());
        }
        let universe = self.directory.clique_count as usize;
        let mut set = BitSet::from_ones(universe, a.iter().map(|&id| id as usize));
        let other = BitSet::from_ones(universe, b.iter().map(|&id| id as usize));
        set.and_assign(&other);
        Ok(set.iter_ones().map(|id| id as u64).collect())
    }

    /// Materialize a batch of ids (helper for range and postings
    /// queries).
    pub fn materialize(
        &self,
        ids: impl IntoIterator<Item = u64>,
    ) -> Result<Vec<Clique>, StoreError> {
        ids.into_iter().map(|id| self.get(id)).collect()
    }

    /// Materialize a batch of ids, *skipping* (and counting) any id
    /// whose block is quarantined or fails its corruption checks right
    /// now. Transient I/O errors still propagate — only corruption is
    /// degradable, because every clique actually returned stays exact.
    pub fn materialize_degraded(
        &self,
        ids: impl IntoIterator<Item = u64>,
    ) -> Result<DegradedCliques, StoreError> {
        let mut out = DegradedCliques::default();
        for id in ids {
            match self.get(id) {
                Ok(c) => out.cliques.push(c),
                Err(e) if is_corruption(&e) => out.skipped += 1,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    fn load_block(&self, block_i: usize) -> Result<Arc<Vec<Clique>>, StoreError> {
        if let Some(hit) = self.cache.lock().unwrap().get(block_i) {
            self.io.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.io.cache_misses.fetch_add(1, Ordering::Relaxed);
        if self.quarantined.lock().unwrap().contains(&block_i) {
            return Err(StoreError::Codec {
                context: "clique block quarantined",
            });
        }
        let result = self.load_block_uncached(block_i);
        if let Err(e) = &result {
            // Corruption is permanent for this reader's lifetime; a
            // transient I/O failure (including injected faults) is not.
            if is_corruption(e) {
                self.quarantined.lock().unwrap().insert(block_i);
            }
        }
        result
    }

    fn load_block_uncached(&self, block_i: usize) -> Result<Arc<Vec<Clique>>, StoreError> {
        let decode_started = Instant::now();
        let entry = self
            .directory
            .blocks
            .get(block_i)
            .ok_or(StoreError::Codec {
                context: "block table",
            })?;
        gsb_core::failpoint::inject("index.block_read").map_err(StoreError::Io)?;
        let mut head = [0u8; 8];
        let payload = {
            let mut f = self.store.lock().unwrap();
            f.seek(SeekFrom::Start(entry.offset))?;
            read_exact_typed(&mut f, &mut head, "clique block frame")?;
            let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
            if len > self.meta.store_bytes as usize {
                return Err(StoreError::Torn {
                    context: "clique block frame",
                    needed: len,
                    have: self.meta.store_bytes as usize,
                });
            }
            let mut payload = vec![0u8; len];
            read_exact_typed(&mut f, &mut payload, "clique block")?;
            payload
        };
        let stored = u32::from_le_bytes(head[4..8].try_into().unwrap());
        let computed = gsb_core::store::crc32(&payload);
        if stored != computed {
            return Err(StoreError::Checksum {
                context: "clique block",
                stored,
                computed,
            });
        }
        if payload.len() < 4 {
            return Err(StoreError::Torn {
                context: "clique block",
                needed: 4,
                have: payload.len(),
            });
        }
        let count = u32::from_le_bytes(payload[..4].try_into().unwrap());
        if count != entry.count {
            return Err(StoreError::CountMismatch {
                expected: entry.count as usize,
                found: count as usize,
            });
        }
        let mut pos = 4usize;
        let mut cliques = Vec::with_capacity(count as usize);
        for _ in 0..count {
            cliques.push(crate::format::decode_clique(
                &payload,
                &mut pos,
                self.directory.n,
                "clique record",
            )?);
        }
        if pos != payload.len() {
            return Err(StoreError::Codec {
                context: "clique block",
            });
        }
        let cliques = Arc::new(cliques);
        self.io.blocks_decoded.fetch_add(1, Ordering::Relaxed);
        self.io.decode_ns.fetch_add(
            decode_started.elapsed().as_nanos() as u64,
            Ordering::Relaxed,
        );
        if self.cache.lock().unwrap().put(block_i, cliques.clone()) {
            self.io.cache_evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(cliques)
    }
}

/// Errors that indicate corrupt bytes (permanent until a rebuild), as
/// opposed to transient I/O failures a retry could clear.
fn is_corruption(e: &StoreError) -> bool {
    !matches!(e, StoreError::Io(_))
}

/// Open a file and validate its 16-byte header against `magic` and the
/// directory's vertex count.
fn open_checked(path: &Path, magic: u64, n: u32) -> Result<File, StoreError> {
    let mut f = File::open(path)?;
    let mut header = [0u8; HEADER_LEN];
    read_exact_typed(&mut f, &mut header, "index file header")?;
    let file_n = check_header(&header, magic, "index file header")?;
    if file_n != n {
        return Err(StoreError::GraphMismatch {
            checkpoint_bits: file_n as usize,
            graph_bits: n as usize,
        });
    }
    Ok(f)
}

/// `read_exact` with short reads surfaced as typed truncation.
fn read_exact_typed(f: &mut File, buf: &mut [u8], context: &'static str) -> Result<(), StoreError> {
    f.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Torn {
                context,
                needed: buf.len(),
                have: 0,
            }
        } else {
            StoreError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::IndexWriter;
    use gsb_core::CliqueSink;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gsb-index-reader-{}-{name}", std::process::id()))
    }

    fn build(dir: &Path, n: usize, cliques: &[&[Vertex]]) {
        let _ = std::fs::remove_dir_all(dir);
        let mut w = IndexWriter::create(dir, n).unwrap().block_target(24);
        for c in cliques {
            w.maximal(c);
        }
        w.finish().unwrap();
    }

    #[test]
    fn queries_answer_from_disk() {
        let dir = tmp("basic");
        build(
            &dir,
            10,
            &[
                &[0, 1, 2],
                &[2, 3, 4],
                &[5, 6, 7],
                &[0, 1, 2, 3],
                &[4, 5, 6, 7],
            ],
        );
        let idx = CliqueIndex::open(&dir).unwrap();
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.n(), 10);
        assert_eq!(idx.max_size(), 4);
        assert_eq!(idx.get(1).unwrap(), vec![2, 3, 4]);
        assert_eq!(idx.containing(2).unwrap(), vec![0, 1, 3]);
        assert_eq!(idx.containing(9).unwrap(), Vec::<u64>::new());
        assert_eq!(idx.containing(99).unwrap(), Vec::<u64>::new());
        assert_eq!(idx.of_size(3, 3), 0..3);
        assert_eq!(idx.of_size(4, 10), 3..5);
        assert_eq!(idx.of_size(9, 10), 0..0);
        assert_eq!(idx.max_clique().unwrap().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(idx.overlap(0, 3).unwrap(), vec![3]);
        assert_eq!(idx.overlap(0, 9).unwrap(), Vec::<u64>::new());
        let stats = idx.stats();
        assert_eq!(stats.cliques, 5);
        assert_eq!(stats.size_histogram, vec![(3, 3), (4, 2)]);
        assert!(stats.postings_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_eviction_keeps_answers_identical() {
        let dir = tmp("cache");
        let cliques: Vec<Vec<Vertex>> = (0..40).map(|i| vec![i, i + 1, i + 2]).collect();
        let refs: Vec<&[Vertex]> = cliques.iter().map(Vec::as_slice).collect();
        build(&dir, 50, &refs);
        let idx = CliqueIndex::open(&dir).unwrap().cache_blocks(2);
        for round in 0..3 {
            for id in 0..40u64 {
                assert_eq!(idx.get(id).unwrap(), cliques[id as usize], "round {round}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_stats_track_cache_and_decode_activity() {
        let dir = tmp("iostats");
        let cliques: Vec<Vec<Vertex>> = (0..40).map(|i| vec![i, i + 1, i + 2]).collect();
        let refs: Vec<&[Vertex]> = cliques.iter().map(Vec::as_slice).collect();
        build(&dir, 50, &refs);
        let idx = CliqueIndex::open(&dir).unwrap().cache_blocks(2);
        assert_eq!(idx.io_stats(), IoStats::default());

        let blocks = idx.directory.blocks.len() as u64;
        assert!(blocks > 2, "need >2 blocks to exercise eviction");
        // A full scan decodes every block once; with capacity 2 the
        // later blocks evict the earlier ones.
        for id in 0..40u64 {
            idx.get(id).unwrap();
        }
        let s = idx.io_stats();
        assert_eq!(s.blocks_decoded, blocks);
        assert_eq!(s.cache_misses, blocks);
        assert_eq!(s.cache_evictions, blocks - 2);
        assert_eq!(s.cache_hits, 40 - blocks);
        assert!(s.decode_ns > 0);
        assert_eq!(s.postings_reads, 0);

        // A repeat of the last id is a pure cache hit.
        idx.get(39).unwrap();
        let s2 = idx.io_stats();
        assert_eq!(s2.cache_hits, s.cache_hits + 1);
        assert_eq!(s2.blocks_decoded, s.blocks_decoded);

        idx.containing(3).unwrap();
        assert_eq!(idx.io_stats().postings_reads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_block_is_quarantined_and_serving_degrades_exact() {
        let dir = tmp("quarantine");
        let cliques: Vec<Vec<Vertex>> = (0..40).map(|i| vec![i, i + 1, i + 2]).collect();
        let refs: Vec<&[Vertex]> = cliques.iter().map(Vec::as_slice).collect();
        build(&dir, 50, &refs);

        // Flip one byte inside the *last* block's payload so earlier
        // blocks stay healthy.
        let idx = CliqueIndex::open(&dir).unwrap();
        let last_block = idx.directory.blocks.len() - 1;
        assert!(last_block > 0, "need multiple blocks for this test");
        let offset = idx.directory.blocks[last_block].offset as usize;
        drop(idx);
        let path = dir.join(CLIQUES_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[offset + 10] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let idx = CliqueIndex::open(&dir).unwrap();
        let first_bad = idx.directory.blocks[last_block].first_id;
        // Healthy ids still answer exactly.
        assert_eq!(idx.get(0).unwrap(), cliques[0]);
        // The corrupt block fails typed and lands in quarantine.
        assert!(is_corruption(&idx.get(first_bad).unwrap_err()));
        assert_eq!(idx.quarantined_blocks(), vec![last_block]);
        // A second hit fails fast (still typed, still quarantined once).
        assert!(idx.get(first_bad).is_err());
        assert_eq!(idx.quarantined_blocks(), vec![last_block]);
        // Degraded materialization skips exactly the quarantined ids.
        let all: Vec<u64> = (0..40).collect();
        let degraded = idx.materialize_degraded(all).unwrap();
        assert_eq!(degraded.skipped, 40 - first_bad);
        assert!(!degraded.is_complete());
        assert_eq!(degraded.cliques.len() as u64, first_bad);
        for (i, c) in degraded.cliques.iter().enumerate() {
            assert_eq!(c, &cliques[i]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_or_missing_dir_is_typed() {
        let dir = tmp("missing");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(CliqueIndex::open(&dir), Err(StoreError::Io(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
