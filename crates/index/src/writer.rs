//! [`IndexWriter`] — a [`CliqueSink`] that builds the on-disk index
//! *during* enumeration.
//!
//! Cliques stream into CRC-framed blocks appended to `cliques.gsi.tmp`;
//! postings and the size directory accumulate in memory (both are tiny
//! next to the store: one id per clique membership). [`finish`]
//! completes the index with the atomic tmp-then-rename convention of
//! `gsb_core::checkpoint` — the `index.meta` manifest is renamed into
//! place last, so a crash at any earlier point leaves only `*.tmp`
//! files, which the next writer sweeps. Durable-sink contract:
//! [`flush_barrier`] seals the open block and fsyncs, so everything
//! received before a checkpoint survives a crash after it.
//!
//! [`CliqueSink`]: gsb_core::CliqueSink
//! [`finish`]: IndexWriter::finish
//! [`flush_barrier`]: gsb_core::CliqueSink::flush_barrier

use crate::format::{
    encode_clique, encode_id_list, frame, header_bytes, BlockEntry, IndexDirectory, IndexMeta,
    SizeRun, CLIQUES_FILE, CLIQUES_MAGIC, DIRECTORY_FILE, DIRECTORY_MAGIC, GRAPH_FILE, META_FILE,
    POSTINGS_FILE, POSTINGS_MAGIC,
};
use gsb_core::store::{crc32, StoreError};
use gsb_core::{CliqueSink, RetryPolicy, Vertex};
use gsb_graph::BitGraph;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Default block target: seal a block once its encoded records reach
/// this size. Small enough that a point query decodes little, large
/// enough that frame overhead (8 bytes) disappears.
pub const DEFAULT_BLOCK_TARGET: usize = 64 * 1024;

/// What [`IndexWriter::finish`] built.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WriteSummary {
    /// Cliques indexed.
    pub cliques: u64,
    /// Blocks in the store.
    pub blocks: u64,
    /// Largest clique size.
    pub max_clique: u32,
    /// Bytes of `cliques.gsi`.
    pub store_bytes: u64,
    /// Bytes of `postings.gsp`.
    pub postings_bytes: u64,
}

/// Streaming index builder; see the module docs for the protocol.
pub struct IndexWriter {
    dir: PathBuf,
    n: usize,
    generation: u64,
    store: BufWriter<File>,
    store_offset: u64,
    block_target: usize,
    block_buf: Vec<u8>,
    block_count: u32,
    block_first_id: u64,
    block_min: u32,
    block_max: u32,
    next_id: u64,
    postings: Vec<Vec<u64>>,
    size_runs: Vec<SizeRun>,
    blocks: Vec<BlockEntry>,
    min_size_meta: u32,
    snapshot: Option<(u64, u32)>,
    retry: RetryPolicy,
    /// First error encountered while streaming (subsequent cliques are
    /// dropped; surfaced by [`finish`](Self::finish), mirroring
    /// [`gsb_core::WriterSink`]'s deferred-error protocol).
    error: Option<StoreError>,
}

impl IndexWriter {
    /// Start a new index for an `n`-vertex graph in `dir` (created if
    /// missing; orphaned `*.tmp` files from a crashed writer are swept).
    pub fn create(dir: &Path, n: usize) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        sweep_tmp_files(dir);
        // Replacing a committed index bumps its generation so pollers
        // (the serving layer's hot-reload watcher) see the change even
        // when the rebuilt index is byte-identical otherwise.
        let generation = match std::fs::read_to_string(dir.join(META_FILE)) {
            Ok(text) => IndexMeta::from_text(&text)
                .map(|m| m.generation + 1)
                .unwrap_or(1),
            Err(_) => 0,
        };
        let tmp = dir.join(format!("{CLIQUES_FILE}.tmp"));
        let mut store = BufWriter::new(File::create(&tmp)?);
        store.write_all(&header_bytes(CLIQUES_MAGIC, n as u32))?;
        Ok(IndexWriter {
            dir: dir.to_path_buf(),
            n,
            generation,
            store,
            store_offset: crate::format::HEADER_LEN as u64,
            block_target: DEFAULT_BLOCK_TARGET,
            block_buf: Vec::new(),
            block_count: 0,
            block_first_id: 0,
            block_min: u32::MAX,
            block_max: 0,
            next_id: 0,
            postings: vec![Vec::new(); n],
            size_runs: Vec::new(),
            blocks: Vec::new(),
            min_size_meta: 0,
            snapshot: None,
            retry: RetryPolicy::default(),
            error: None,
        })
    }

    /// Override the block-sealing threshold (bytes of encoded records).
    pub fn block_target(mut self, bytes: usize) -> Self {
        self.block_target = bytes.max(1);
        self
    }

    /// Record the minimum clique size the index maintains (the `--min`
    /// this build ran with). Required for `gsb update`: without it the
    /// maintained set is unknown and updates are refused.
    pub fn min_size(mut self, k: u32) -> Self {
        self.min_size_meta = k;
        self
    }

    /// Force the committed manifest's generation instead of deriving it
    /// from any previous manifest in the directory. Used by compaction,
    /// which builds in a scratch directory but must outrank the live
    /// manifest it replaces.
    pub fn generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// Attach a snapshot of the indexed graph, written as `graph.gsg`
    /// alongside the index and pinned to the manifest by a whole-file
    /// CRC. `gsb update` requires one; without it the index is
    /// queryable but frozen. The graph must have the vertex count this
    /// writer was created with.
    pub fn snapshot(mut self, g: &BitGraph) -> Result<Self, StoreError> {
        if g.n() != self.n {
            return Err(StoreError::Codec {
                context: "index writer: snapshot vertex count differs from index",
            });
        }
        let bytes = crate::snapshot::encode_graph(g);
        let tmp = self.dir.join(format!("{GRAPH_FILE}.tmp"));
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        self.snapshot = Some((bytes.len() as u64, crc32(&bytes)));
        Ok(self)
    }

    /// Cliques accepted so far.
    pub fn indexed(&self) -> u64 {
        self.next_id
    }

    fn defer(&mut self, e: StoreError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn seal_block(&mut self) -> std::io::Result<()> {
        if self.block_count == 0 {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(4 + self.block_buf.len());
        payload.extend_from_slice(&self.block_count.to_le_bytes());
        payload.extend_from_slice(&self.block_buf);
        let framed = frame(&payload);
        self.store.write_all(&framed)?;
        self.blocks.push(BlockEntry {
            offset: self.store_offset,
            first_id: self.block_first_id,
            count: self.block_count,
            min_size: self.block_min,
            max_size: self.block_max,
        });
        self.store_offset += framed.len() as u64;
        self.block_buf.clear();
        self.block_count = 0;
        self.block_first_id = self.next_id;
        self.block_min = u32::MAX;
        self.block_max = 0;
        Ok(())
    }

    /// Complete the index: seal and persist the store, write postings
    /// and the directory, and rename the `index.meta` manifest into
    /// place as the commit point. Atomic writes are retried under the
    /// crate-standard [`RetryPolicy`].
    pub fn finish(mut self) -> Result<WriteSummary, StoreError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.seal_block()?;
        self.store.flush()?;
        let file = self
            .store
            .into_inner()
            .map_err(|e| StoreError::Io(std::io::Error::other(e.to_string())))?;
        file.sync_all()?;
        drop(file);
        let retry = self.retry;
        retry.run_io(|| {
            std::fs::rename(
                self.dir.join(format!("{CLIQUES_FILE}.tmp")),
                self.dir.join(CLIQUES_FILE),
            )
        })?;

        // Postings: header, then one CRC-framed record per vertex, with
        // the byte offset of every record captured for the directory.
        let postings_tmp = self.dir.join(format!("{POSTINGS_FILE}.tmp"));
        let mut offsets = Vec::with_capacity(self.n + 1);
        {
            let mut w = BufWriter::new(File::create(&postings_tmp)?);
            w.write_all(&header_bytes(POSTINGS_MAGIC, self.n as u32))?;
            let mut offset = crate::format::HEADER_LEN as u64;
            for ids in &self.postings {
                offsets.push(offset);
                let mut payload = Vec::new();
                encode_id_list(&mut payload, ids);
                let framed = frame(&payload);
                w.write_all(&framed)?;
                offset += framed.len() as u64;
            }
            offsets.push(offset);
            w.flush()?;
            let file = w
                .into_inner()
                .map_err(|e| StoreError::Io(std::io::Error::other(e.to_string())))?;
            file.sync_all()?;
        }
        retry.run_io(|| std::fs::rename(&postings_tmp, self.dir.join(POSTINGS_FILE)))?;
        let postings_bytes = *offsets.last().unwrap_or(&0);

        let directory = IndexDirectory {
            n: self.n as u32,
            clique_count: self.next_id,
            size_runs: self.size_runs.clone(),
            blocks: self.blocks.clone(),
            postings_offsets: offsets,
            postings_bytes,
        };
        let mut dir_bytes = header_bytes(DIRECTORY_MAGIC, self.n as u32).to_vec();
        dir_bytes.extend_from_slice(&frame(&directory.encode()));
        retry.run_store(|| {
            write_atomic(&self.dir, DIRECTORY_FILE, &dir_bytes)?;
            Ok(())
        })?;

        // Graph snapshot (when attached): renamed into place before the
        // manifest so `graph_bytes`/`graph_crc` never describe a file
        // that is not there. Without one, drop any stale snapshot a
        // previous build left so it cannot be mistaken for this index's.
        if self.snapshot.is_some() {
            retry.run_io(|| {
                std::fs::rename(
                    self.dir.join(format!("{GRAPH_FILE}.tmp")),
                    self.dir.join(GRAPH_FILE),
                )
            })?;
        } else {
            let _ = std::fs::remove_file(self.dir.join(GRAPH_FILE));
        }

        let summary = WriteSummary {
            cliques: self.next_id,
            blocks: self.blocks.len() as u64,
            max_clique: directory.max_size(),
            store_bytes: self.store_offset,
            postings_bytes,
        };
        let (graph_bytes, graph_crc) = self.snapshot.unwrap_or((0, 0));
        let meta = IndexMeta {
            version: 1,
            n: self.n,
            cliques: summary.cliques,
            max_clique: summary.max_clique,
            blocks: summary.blocks,
            store_bytes: summary.store_bytes,
            postings_bytes: summary.postings_bytes,
            generation: self.generation,
            min_size: self.min_size_meta,
            delta_generations: 0,
            tombstones: 0,
            dir_bytes: dir_bytes.len() as u64,
            graph_bytes,
            graph_crc,
        };
        // The commit point: readers refuse a directory without this file.
        retry.run_store(|| {
            write_atomic(&self.dir, META_FILE, meta.to_text().as_bytes())?;
            Ok(())
        })?;
        sync_dir(&self.dir);
        Ok(summary)
    }
}

impl CliqueSink for IndexWriter {
    fn maximal(&mut self, clique: &[Vertex]) {
        if self.error.is_some() {
            return;
        }
        let size = clique.len() as u32;
        // The enumerators' ordering contract is what makes sequential
        // ids sorted by size; a violation would corrupt every
        // size-range answer, so it is a deferred typed error.
        if let Some(last) = self.size_runs.last() {
            if size < last.size {
                return self.defer(StoreError::Codec {
                    context: "index writer: cliques arrived out of size order",
                });
            }
        }
        if clique.is_empty()
            || clique.iter().any(|&v| v as usize >= self.n)
            || clique.windows(2).any(|w| w[0] >= w[1])
        {
            return self.defer(StoreError::Codec {
                context: "index writer: clique not strictly ascending within the graph",
            });
        }
        let id = self.next_id;
        encode_clique(&mut self.block_buf, clique);
        self.block_count += 1;
        self.block_min = self.block_min.min(size);
        self.block_max = self.block_max.max(size);
        for &v in clique {
            self.postings[v as usize].push(id);
        }
        match self.size_runs.last_mut() {
            Some(run) if run.size == size => run.count += 1,
            _ => self.size_runs.push(SizeRun {
                size,
                first_id: id,
                count: 1,
            }),
        }
        self.next_id += 1;
        if self.block_buf.len() >= self.block_target {
            if let Err(e) = self.seal_block() {
                self.defer(StoreError::Io(e));
            }
        }
    }

    fn flush_barrier(&mut self) -> std::io::Result<()> {
        if let Some(e) = &self.error {
            return Err(std::io::Error::other(e.to_string()));
        }
        self.seal_block()?;
        self.store.flush()?;
        self.store.get_ref().sync_data()
    }
}

/// Write `bytes` to `dir/name` atomically: sibling tmp, fsync, rename.
/// Safe to retry wholesale — the rename either happened or it did not.
pub(crate) fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(name))
}

/// Remove orphaned `*.tmp` files (crash mid-write: every durable file
/// here is written tmp-then-rename, so a leftover tmp is never valid).
pub(crate) fn sweep_tmp_files(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if entry.file_name().to_string_lossy().ends_with(".tmp") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Best-effort directory fsync so the renames themselves are durable.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gsb-index-writer-{}-{name}", std::process::id()))
    }

    #[test]
    fn crashed_writer_leaves_only_tmps_and_next_create_sweeps() {
        let dir = tmp("sweep");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut w = IndexWriter::create(&dir, 10).unwrap();
            w.maximal(&[1, 2, 3]);
            w.flush_barrier().unwrap();
            // dropped without finish(): the crash
        }
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.iter().all(|n| n.ends_with(".tmp")), "{names:?}");
        let w = IndexWriter::create(&dir, 10).unwrap();
        drop(w);
        // meta never appeared, so the directory holds no committed index
        assert!(!dir.join(META_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_order_and_out_of_range_cliques_are_deferred_typed_errors() {
        let dir = tmp("order");
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = IndexWriter::create(&dir, 10).unwrap();
        w.maximal(&[1, 2, 3]);
        w.maximal(&[4, 5]); // size shrank: ordering contract broken
        assert!(w.finish().is_err());

        let mut w = IndexWriter::create(&dir, 4).unwrap();
        w.maximal(&[2, 9]); // vertex 9 outside a 4-vertex graph
        assert!(w.finish().is_err());

        let mut w = IndexWriter::create(&dir, 4).unwrap();
        w.maximal(&[2, 2]); // not strictly ascending
        assert!(w.flush_barrier().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuilding_over_a_committed_index_bumps_generation() {
        let dir = tmp("generation");
        let _ = std::fs::remove_dir_all(&dir);
        let read_gen = |dir: &Path| {
            IndexMeta::from_text(&std::fs::read_to_string(dir.join(META_FILE)).unwrap())
                .unwrap()
                .generation
        };
        for expect in 0..3u64 {
            let mut w = IndexWriter::create(&dir, 10).unwrap();
            w.maximal(&[1, 2, 3]);
            w.finish().unwrap();
            assert_eq!(read_gen(&dir), expect);
        }
        // a crashed (unfinished) writer must not consume a generation
        drop(IndexWriter::create(&dir, 10).unwrap());
        let mut w = IndexWriter::create(&dir, 10).unwrap();
        w.maximal(&[1, 2, 3]);
        w.finish().unwrap();
        assert_eq!(read_gen(&dir), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_counts_blocks_and_sizes() {
        let dir = tmp("summary");
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = IndexWriter::create(&dir, 100).unwrap().block_target(16);
        for i in 0..20u32 {
            w.maximal(&[i, i + 1, i + 2]);
        }
        w.maximal(&[0, 2, 4, 6]);
        let summary = w.finish().unwrap();
        assert_eq!(summary.cliques, 21);
        assert_eq!(summary.max_clique, 4);
        assert!(summary.blocks > 1, "tiny target must split blocks");
        assert!(dir.join(META_FILE).exists());
        assert!(dir.join(CLIQUES_FILE).exists());
        assert!(dir.join(POSTINGS_FILE).exists());
        assert!(dir.join(DIRECTORY_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
