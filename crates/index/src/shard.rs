//! Splitting one committed clique index into contiguous-id shards.
//!
//! The enumerators emit cliques in non-decreasing size order, so
//! sequential clique ids are already sorted by size (DESIGN.md §11).
//! That makes clique-id-range sharding trivial *and* query-preserving:
//!
//! * each shard is an ordinary index directory an unmodified
//!   `gsb serve` can serve — cliques keep their relative order, so the
//!   sub-index satisfies the writer's size-order contract;
//! * a global clique id maps to `(shard, local id = global - id_lo)`;
//! * `of_size` stays a contiguous range per shard, and each shard's
//!   covered size interval `[size_lo, size_hi]` lets a router forward
//!   a size query only to the shards that intersect it;
//! * the global maximum clique lives in the *last* shard (largest
//!   sizes sort last).
//!
//! [`split_index`] streams the source index shard by shard through
//! [`IndexWriter`], so every shard inherits the full on-disk hygiene
//! (CRC-framed blocks, atomic `index.meta` commit point).

use crate::reader::CliqueIndex;
use crate::writer::IndexWriter;
use gsb_core::{CliqueSink, StoreError};
use std::path::{Path, PathBuf};

/// One shard produced by [`split_index`]: where it lives and which
/// slice of the global id/size space it owns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSummary {
    /// Shard ordinal (0-based; id ranges ascend with it).
    pub shard: usize,
    /// The shard's index directory (`<out>/shard<k>`).
    pub dir: PathBuf,
    /// First global clique id owned by this shard (inclusive).
    pub id_lo: u64,
    /// One past the last global clique id owned (exclusive).
    pub id_hi: u64,
    /// Smallest clique size stored in this shard (0 when empty).
    pub size_lo: u32,
    /// Largest clique size stored in this shard (0 when empty).
    pub size_hi: u32,
}

/// Split the committed index at `src` into `shards` contiguous-id
/// sub-indexes under `out/shard<k>`, returning each shard's id and
/// size coverage. Ids are divided as evenly as possible; the relative
/// order of cliques is preserved, so every shard is a valid standalone
/// index. `shards` must be at least 1 and no larger than the clique
/// count (an empty shard could never answer for its id range).
pub fn split_index(src: &Path, out: &Path, shards: usize) -> Result<Vec<ShardSummary>, StoreError> {
    if shards == 0 {
        return Err(StoreError::Codec {
            context: "shard split: shard count must be at least 1",
        });
    }
    let index = CliqueIndex::open(src)?;
    if index.delta_generations() > 0 {
        // Shards assume a dense tombstone-free id space (contiguous
        // per-shard id ranges); folding the chain first restores it.
        return Err(StoreError::Codec {
            context: "shard split: index has a delta chain — run `gsb compact` first",
        });
    }
    let total = index.len();
    if total < shards as u64 {
        return Err(StoreError::Codec {
            context: "shard split: more shards than cliques",
        });
    }
    let n = index.n();
    let mut out_shards = Vec::with_capacity(shards);
    for k in 0..shards {
        let id_lo = (k as u64) * total / shards as u64;
        let id_hi = (k as u64 + 1) * total / shards as u64;
        let dir = out.join(format!("shard{k}"));
        let mut writer = IndexWriter::create(&dir, n)?;
        let mut size_lo = 0u32;
        let mut size_hi = 0u32;
        for id in id_lo..id_hi {
            let clique = index.get(id)?;
            let size = clique.len() as u32;
            if id == id_lo {
                size_lo = size;
            }
            size_hi = size_hi.max(size);
            writer.maximal(&clique);
        }
        writer.finish()?;
        out_shards.push(ShardSummary {
            shard: k,
            dir,
            id_lo,
            id_hi,
            size_lo,
            size_hi,
        });
    }
    Ok(out_shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_core::{CliqueEnumerator, CollectSink, EnumConfig};
    use gsb_graph::generators::{planted, Module};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gsb_index_shard_{}_{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn split_preserves_every_clique_and_covers_the_id_space() {
        let g = planted(50, 0.08, &[Module::clique(7), Module::clique(5)], 11);
        let dir = tmp("split_src");
        let enumerator = CliqueEnumerator::new(EnumConfig::default());
        let mut truth = CollectSink::default();
        enumerator.enumerate(&g, &mut truth);
        let mut writer = IndexWriter::create(&dir, g.n()).expect("create");
        enumerator.enumerate(&g, &mut writer);
        writer.finish().expect("finish");

        let out = tmp("split_out");
        let shards = split_index(&dir, &out, 3).expect("split");
        assert_eq!(shards.len(), 3);
        // Contiguous, gap-free id coverage starting at 0.
        assert_eq!(shards[0].id_lo, 0);
        for w in shards.windows(2) {
            assert_eq!(w[0].id_hi, w[1].id_lo, "id gap between shards");
            // size order is global, so coverage intervals ascend too
            assert!(w[0].size_hi <= w[1].size_lo, "size coverage overlaps");
        }
        assert_eq!(
            shards.last().unwrap().id_hi,
            truth.cliques.len() as u64,
            "last shard must end at the clique count"
        );

        // Every global id resolves to the same clique through its shard.
        let source = CliqueIndex::open(&dir).expect("open source");
        for s in &shards {
            let sub = CliqueIndex::open(&s.dir).expect("open shard");
            assert_eq!(sub.len(), s.id_hi - s.id_lo);
            for id in s.id_lo..s.id_hi {
                assert_eq!(
                    sub.get(id - s.id_lo).expect("shard get"),
                    source.get(id).expect("source get"),
                    "clique {id} differs through shard {}",
                    s.shard
                );
            }
            // The summary's size coverage matches the shard contents.
            assert_eq!(sub.stats().max_clique, s.size_hi);
        }
        // The global maximum clique is reachable through the last shard.
        let last = CliqueIndex::open(&shards.last().unwrap().dir).expect("open last");
        assert_eq!(
            last.max_clique().expect("max").expect("nonempty"),
            source.max_clique().expect("max").expect("nonempty")
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn split_rejects_zero_and_oversubscribed_shard_counts() {
        let g = planted(20, 0.1, &[Module::clique(4)], 5);
        let dir = tmp("split_reject");
        let enumerator = CliqueEnumerator::new(EnumConfig::default());
        let mut writer = IndexWriter::create(&dir, g.n()).expect("create");
        enumerator.enumerate(&g, &mut writer);
        let summary = writer.finish().expect("finish");
        let out = tmp("split_reject_out");
        assert!(split_index(&dir, &out, 0).is_err());
        assert!(split_index(&dir, &out, summary.cliques as usize + 1).is_err());
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&out).ok();
    }
}
