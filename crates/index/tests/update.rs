//! Dynamic-maintenance equivalence: `gsb update` against the oracle.
//!
//! The contract (DESIGN.md §16): after any sequence of edit batches,
//! the live clique set of the chained index is **exactly** the set a
//! full re-enumeration of the patched graph produces at the same
//! `--min` — and `gsb compact` folds the chain into a base whose four
//! binary files are **byte-identical** to a fresh `gsb index` rebuild
//! of that graph. 100 seeded edit scripts drive both properties, plus
//! crash-model tests for torn appends and interrupted compactions.

use gsb_core::{Clique, CliqueEnumerator, CollectSink, EnumConfig, ShutdownToken};
use gsb_graph::generators::gnp;
use gsb_graph::BitGraph;
use gsb_index::{compact, update, CliqueIndex, EditScript, IndexWriter, ServeConfig, Server};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsb_update_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic xorshift64* — the tests own their randomness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Oracle: every maximal clique of `g` with size ≥ `min_k`, in the
/// canonical (size, lex) order.
fn enumerate(g: &BitGraph, min_k: usize) -> Vec<Clique> {
    let mut sink = CollectSink::default();
    CliqueEnumerator::new(EnumConfig {
        min_k,
        max_k: None,
        record_costs: false,
    })
    .enumerate(g, &mut sink);
    sink.cliques
}

/// Build an updatable index of `g` in `dir`.
fn build(dir: &Path, g: &BitGraph, min_k: usize) {
    let mut w = IndexWriter::create(dir, g.n())
        .expect("create")
        .min_size(min_k as u32)
        .snapshot(g)
        .expect("snapshot");
    for c in enumerate(g, min_k) {
        gsb_core::CliqueSink::maximal(&mut w, &c);
    }
    w.finish().expect("finish");
}

/// The live clique set of an index, re-sorted into (size, lex) order.
fn live_set(idx: &CliqueIndex) -> Vec<Clique> {
    let mut out = Vec::new();
    for id in 0..idx.len() {
        if idx.is_live(id) {
            out.push(idx.get(id).expect("get live"));
        }
    }
    out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    out
}

/// Assert the chained index answers every query family exactly like
/// the oracle set.
fn assert_matches_oracle(idx: &CliqueIndex, oracle: &[Clique], rng: &mut Rng, n: usize) {
    assert_eq!(live_set(idx), oracle, "live set diverged from oracle");
    assert_eq!(idx.live_len(), oracle.len() as u64);
    // max_clique: lexicographically least among the largest
    let want_max = oracle
        .iter()
        .filter(|c| c.len() == oracle.last().map_or(0, Vec::len))
        .min()
        .cloned();
    assert_eq!(idx.max_clique().expect("max_clique"), want_max);
    // containing(v) for sampled vertices, tombstone- and overlay-aware
    for _ in 0..4 {
        let v = rng.below(n) as u32;
        let mut got: Vec<Clique> = idx
            .containing(v)
            .expect("containing")
            .into_iter()
            .map(|id| idx.get(id).expect("get"))
            .collect();
        got.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        let want: Vec<Clique> = oracle
            .iter()
            .filter(|c| c.binary_search(&v).is_ok())
            .cloned()
            .collect();
        assert_eq!(got, want, "containing({v}) diverged");
    }
    // ids_of_size for every populated size
    for size in oracle
        .iter()
        .map(Vec::len)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let want = oracle.iter().filter(|c| c.len() == size).count();
        assert_eq!(
            idx.ids_of_size(size as u32, size as u32).len(),
            want,
            "ids_of_size({size}) diverged"
        );
    }
}

/// Generate one edit batch against the current graph: removals of
/// existing edges, additions of absent pairs, occasionally a brand-new
/// vertex (index growth).
fn random_script(g: &BitGraph, rng: &mut Rng, grow: bool) -> EditScript {
    let n = g.n();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if g.has_edge(u, v) {
                edges.push((u, v));
            }
        }
    }
    let mut script = EditScript::default();
    for _ in 0..rng.below(5) + 1 {
        if !edges.is_empty() {
            script.remove.push(edges[rng.below(edges.len())]);
        }
    }
    for _ in 0..rng.below(5) + 1 {
        let (u, v) = (rng.below(n), rng.below(n));
        if u != v {
            script.add.push((u.min(v), u.max(v)));
        }
    }
    if grow {
        // attach a fresh vertex to a random old one
        script.add.push((rng.below(n), n + rng.below(2)));
    }
    script
}

/// Apply the script to the model graph exactly as the engine defines
/// it: grow to cover every scripted endpoint, removals first, then
/// additions.
fn apply_model(g: &BitGraph, script: &EditScript) -> BitGraph {
    let n = script
        .add
        .iter()
        .map(|&(_, v)| v + 1)
        .chain([g.n()])
        .max()
        .unwrap();
    let mut out = g.grown(n);
    for &(u, v) in &script.remove {
        if u < out.n() && v < out.n() {
            out.remove_edge(u, v);
        }
    }
    for &(u, v) in &script.add {
        out.add_edge(u, v);
    }
    out
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

/// Manifest text minus the lines that legitimately differ between a
/// compacted index and a fresh rebuild (generation, and the crc that
/// covers it).
fn meta_modulo_generation(dir: &Path) -> String {
    String::from_utf8(read(dir, "index.meta"))
        .expect("utf8 meta")
        .lines()
        .filter(|l| !l.starts_with("generation=") && !l.starts_with("crc="))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn hundred_seeded_edit_scripts_match_full_reenumeration() {
    let dir = tmp("prop");
    let fresh = tmp("prop_fresh");
    for seed in 0..100u64 {
        let mut rng = Rng::new(seed + 1);
        let n = 30 + rng.below(30);
        let p = 0.10 + (rng.below(10) as f64) / 100.0;
        // mostly the paper's --min 3, sometimes the harder small mins
        let min_k = match seed % 5 {
            0 => 1,
            1 => 2,
            _ => 3,
        };
        let mut g = gnp(n, p, seed ^ 0xC11);
        let _ = std::fs::remove_dir_all(&dir);
        build(&dir, &g, min_k);

        // two update batches, checking exact equivalence after each
        for batch in 0..2 {
            let script = random_script(&g, &mut rng, batch == 1 && seed % 4 == 0);
            let out = update(&dir, &script, None).expect("update");
            g = apply_model(&g, &script);
            assert_eq!(out.n, g.n(), "seed {seed}: vertex growth diverged");
            let oracle = enumerate(&g, min_k);
            let idx = CliqueIndex::open(&dir).expect("open chained");
            if out.committed {
                assert_eq!(idx.delta_generations(), batch as u64 + 1);
            }
            assert_matches_oracle(&idx, &oracle, &mut rng, g.n());
        }

        // compact: same answers, and byte-identical to a fresh rebuild
        let out = compact(&dir, None).expect("compact");
        assert!(!out.resumed);
        let oracle = enumerate(&g, min_k);
        let idx = CliqueIndex::open(&dir).expect("open compacted");
        assert_eq!(idx.delta_generations(), 0);
        assert_eq!(idx.len(), idx.live_len(), "tombstones survived compaction");
        assert_matches_oracle(&idx, &oracle, &mut rng, g.n());

        let _ = std::fs::remove_dir_all(&fresh);
        build(&fresh, &g, min_k);
        for name in ["cliques.gsi", "postings.gsp", "index.gsd", "graph.gsg"] {
            assert_eq!(
                read(&dir, name),
                read(&fresh, name),
                "seed {seed}: {name} not byte-identical to a fresh rebuild"
            );
        }
        assert_eq!(
            meta_modulo_generation(&dir),
            meta_modulo_generation(&fresh),
            "seed {seed}: manifests diverged beyond generation"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh);
}

#[test]
fn torn_appends_are_repaired_on_the_next_update() {
    let dir = tmp("torn");
    let mut g = gnp(40, 0.15, 7);
    build(&dir, &g, 3);
    let s1 = EditScript {
        remove: vec![],
        add: vec![(0, 1), (1, 2), (0, 2), (2, 3)],
    };
    update(&dir, &s1, None).expect("first update");
    g = apply_model(&g, &s1);

    // Crash model: a later update died mid-append, leaving torn tails
    // past the committed extents of all three chain files.
    for name in ["cliques.gsi", "postings.gsp", "index.gsd"] {
        let mut bytes = read(&dir, name);
        bytes.extend_from_slice(b"\xde\xad\xbe\xef torn tail");
        std::fs::write(dir.join(name), bytes).expect("tear");
    }
    // The committed view still opens and answers exactly.
    let idx = CliqueIndex::open(&dir).expect("open with torn tails");
    assert_eq!(live_set(&idx), enumerate(&g, 3));
    drop(idx);

    // The next update truncates the tails and commits on top.
    let s2 = EditScript {
        remove: vec![(0, 1)],
        add: vec![(3, 5)],
    };
    update(&dir, &s2, None).expect("update over torn tails");
    g = apply_model(&g, &s2);
    let idx = CliqueIndex::open(&dir).expect("open repaired");
    assert_eq!(live_set(&idx), enumerate(&g, 3));
    assert_eq!(idx.delta_generations(), 2);

    // ... and compaction of the repaired chain is byte-clean
    compact(&dir, None).expect("compact");
    let fresh = tmp("torn_fresh");
    build(&fresh, &g, 3);
    for name in ["cliques.gsi", "postings.gsp", "index.gsd", "graph.gsg"] {
        assert_eq!(read(&dir, name), read(&fresh, name), "{name} diverged");
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh);
}

#[test]
fn interrupted_compaction_swap_is_resumed_not_rebuilt() {
    let dir = tmp("resume");
    let mut g = gnp(36, 0.18, 11);
    build(&dir, &g, 3);
    let s = EditScript {
        remove: vec![(0, 1)],
        add: vec![(4, 5), (5, 6), (4, 6)],
    };
    update(&dir, &s, None).expect("update");
    g = apply_model(&g, &s);

    // Stage the crash: run a full compaction in a scratch copy to get
    // the finished compact.tmp, then transplant it and move ONE data
    // file into place — exactly the state a crash mid-swap leaves.
    let copy = tmp("resume_copy");
    copy_dir(&dir, &copy);
    let staged = copy.join("compact.tmp");
    build_staged_compaction(&copy, &staged);
    std::fs::rename(&staged, dir.join("compact.tmp")).expect("transplant");
    std::fs::rename(
        dir.join("compact.tmp").join("cliques.gsi"),
        dir.join("cliques.gsi"),
    )
    .expect("partial swap");

    // Updates must refuse while the swap is pending.
    let refused = update(&dir, &s, None);
    assert!(refused.is_err(), "update ran over a pending compaction");

    // Re-running compact finishes the swap instead of rebuilding.
    let out = compact(&dir, None).expect("resume");
    assert!(out.resumed, "pending swap was not resumed");
    let idx = CliqueIndex::open(&dir).expect("open resumed");
    assert_eq!(idx.delta_generations(), 0);
    assert_eq!(live_set(&idx), enumerate(&g, 3));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&copy);
}

/// Build the finished-but-unswapped compaction state for `src` into
/// `staged` by letting the real code path run, then intercepting just
/// before the swap via a directory rename race — simplest reliable
/// stand-in: rebuild the tmp contents with the writer directly.
fn build_staged_compaction(src: &Path, staged: &Path) {
    let idx = CliqueIndex::open(src).expect("open src");
    let meta = idx.meta().clone();
    let mut live = Vec::new();
    for id in 0..idx.len() {
        if idx.is_live(id) {
            live.push(idx.get(id).expect("get"));
        }
    }
    live.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    // reconstruct the patched graph the same way the engine does
    let snap = gsb_index::read_graph_checked(src, meta.graph_bytes, meta.graph_crc).expect("snap");
    let mut g = snap.grown(meta.n);
    for gen in idx.chain() {
        for &(u, v) in &gen.removed_edges {
            g.remove_edge(u as usize, v as usize);
        }
        for &(u, v) in &gen.added_edges {
            g.add_edge(u as usize, v as usize);
        }
    }
    let mut w = IndexWriter::create(staged, g.n())
        .expect("create staged")
        .min_size(meta.min_size)
        .generation(meta.generation + 1)
        .snapshot(&g)
        .expect("snapshot");
    for c in &live {
        gsb_core::CliqueSink::maximal(&mut w, c);
    }
    w.finish().expect("finish staged");
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("read_dir") {
        let entry = entry.expect("entry");
        if entry.file_type().expect("type").is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy");
        }
    }
}

#[test]
fn frozen_or_legacy_indexes_refuse_updates() {
    let dir = tmp("frozen");
    let g = gnp(20, 0.2, 3);
    // built without min_size/snapshot → queryable but frozen
    let mut w = IndexWriter::create(&dir, g.n()).expect("create");
    for c in enumerate(&g, 3) {
        gsb_core::CliqueSink::maximal(&mut w, &c);
    }
    w.finish().expect("finish");
    let err = update(
        &dir,
        &EditScript {
            remove: vec![],
            add: vec![(0, 1)],
        },
        None,
    );
    assert!(err.is_err(), "frozen index accepted an update");
    // and compacting a chain-free index is a clean no-op
    let out = compact(&dir, None).expect("noop compact");
    assert!(!out.compacted);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn noop_batches_commit_nothing() {
    let dir = tmp("noop");
    let g = gnp(25, 0.15, 5);
    build(&dir, &g, 3);
    let before = read(&dir, "index.meta");
    // every edit is a skip: removing absent edges, adding present ones
    let mut script = EditScript::default();
    'outer: for u in 0..g.n() {
        for v in (u + 1)..g.n() {
            if g.has_edge(u, v) {
                script.add.push((u, v));
            } else {
                script.remove.push((u, v));
            }
            if script.add.len() > 2 && script.remove.len() > 2 {
                break 'outer;
            }
        }
    }
    let out = update(&dir, &script, None).expect("noop update");
    assert!(!out.committed);
    assert_eq!(out.new_cliques, 0);
    assert_eq!(
        read(&dir, "index.meta"),
        before,
        "manifest changed on a no-op"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Raw GET against the test server; `None` once the listener is gone.
fn get(addr: std::net::SocketAddr, path: &str) -> Option<(u16, String)> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: update\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status: u16 = response.split_whitespace().nth(1)?.parse().ok()?;
    let (_, body) = response.split_once("\r\n\r\n")?;
    Some((status, body.to_string()))
}

/// The tentpole's serving half: `gsb update` and `gsb compact` bump
/// the manifest generation under a serving `--reload-poll` process,
/// and every answer the hammering clients ever see is internally
/// consistent — the live-clique count inside each /stats body matches
/// what that answer's generation actually committed, queries never
/// 500, and nothing is dropped across the swaps.
#[test]
fn live_serve_stays_consistent_across_update_and_compact() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let dir = tmp("serve");
    let mut g = gnp(30, 0.15, 77);
    build(&dir, &g, 2);
    let mut expected = std::collections::HashMap::new();
    expected.insert(0u64, enumerate(&g, 2).len() as u64);

    let index = Arc::new(CliqueIndex::open(&dir).expect("open"));
    let shutdown = ShutdownToken::new();
    let server = Server::bind(
        Arc::clone(&index),
        "127.0.0.1:0",
        ServeConfig {
            threads: 2,
            reload_poll: Some(Duration::from_millis(20)),
            index_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&shutdown).expect("run"))
    };

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    // /stats carries (generation, live); the query
                    // endpoints exercise the chain-merged read path.
                    let path = match c % 3 {
                        0 => "/stats",
                        1 => "/containing/0",
                        _ => "/size/2/64",
                    };
                    let Some((status, body)) = get(addr, path) else {
                        assert!(
                            stop.load(Ordering::Acquire),
                            "client {c}: connection died before shutdown"
                        );
                        break;
                    };
                    if status != 200 {
                        // The only non-200 ever allowed is the drain
                        // shed for requests racing the shutdown flag.
                        assert!(
                            status == 503 && stop.load(Ordering::Acquire),
                            "client {c}: {path} -> {status}: {body}"
                        );
                        break;
                    }
                    if c % 3 == 0 {
                        let parsed = gsb_telemetry::json::parse(&body).expect("stats json");
                        seen.push((
                            parsed.u64_or_zero("generation"),
                            parsed.u64_or_zero("live"),
                            body.clone(),
                        ));
                    }
                }
                seen
            })
        })
        .collect();

    // Two edit batches and a compaction under the hammer, each
    // committing a new generation for the poller to swap in.
    let mut rng = Rng::new(0xF00D);
    for _batch in 0..2 {
        std::thread::sleep(Duration::from_millis(80));
        let script = random_script(&g, &mut rng, false);
        g = apply_model(&g, &script);
        let out = update(&dir, &script, None).expect("live update");
        if out.committed {
            expected.insert(out.generation, out.live);
            assert_eq!(
                out.live,
                enumerate(&g, 2).len() as u64,
                "live count diverged from the oracle"
            );
        }
    }
    std::thread::sleep(Duration::from_millis(80));
    let folded = compact(&dir, None).expect("live compact");
    if folded.compacted {
        expected.insert(folded.generation, folded.cliques);
    }
    std::thread::sleep(Duration::from_millis(120));
    stop.store(true, Ordering::Release);
    shutdown.request(15);
    let report = server_thread.join().expect("join server");

    let mut answers = 0usize;
    let mut gens_seen = std::collections::BTreeSet::new();
    for client in clients {
        for (generation, live, body) in client.join().expect("join client") {
            answers += 1;
            gens_seen.insert(generation);
            let want = expected
                .get(&generation)
                .unwrap_or_else(|| panic!("uncommitted generation {generation}: {body}"));
            assert_eq!(
                live, *want,
                "torn answer: generation {generation} with foreign live count: {body}"
            );
        }
    }
    assert!(answers > 0, "clients never got a /stats answer");
    assert!(
        gens_seen.len() >= 2,
        "only generations {gens_seen:?} observed — the hammer never saw a swap"
    );
    assert!(report.reloads >= 1, "reloads never counted");
    std::fs::remove_dir_all(&dir).ok();
}
