//! Hot-reload racing graceful drain: rebuild `index.meta` generations
//! in place while clients hammer the server, then SIGTERM mid-swap.
//!
//! The contract under test (DESIGN.md §13): every answer the server
//! ever gives is computed against ONE `Arc<CliqueIndex>` snapshot.
//! A hot-reload swaps the served index atomically between requests,
//! and a drain answers everything it accepted on whatever snapshot
//! that request started with — so the `(generation, cliques,
//! max_clique)` triple inside any single answer must always be
//! internally consistent, even for answers racing the swap or the
//! shutdown. A torn read (generation from one index, counts from
//! another) is the bug this test exists to catch.

use gsb_core::{CliqueEnumerator, CollectSink, EnumConfig, ShutdownToken};
use gsb_graph::generators::{planted, Module};
use gsb_index::{CliqueIndex, IndexWriter, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gsb_reload_drain_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Raw GET; `None` once the listener is gone (expected after drain).
fn get(addr: SocketAddr, path: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: drain\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status: u16 = response.split_whitespace().nth(1)?.parse().ok()?;
    let (_, body) = response.split_once("\r\n\r\n")?;
    Some((status, body.to_string()))
}

/// Index one graph into `dir` (in place: bumps the committed
/// generation) and return its clique count and max clique size.
fn rebuild(dir: &std::path::Path, big: usize, seed: u64) -> (u64, u64) {
    let g = planted(40, 0.08, &[Module::clique(big), Module::clique(4)], seed);
    let enumerator = CliqueEnumerator::new(EnumConfig::default());
    let mut collect = CollectSink::default();
    enumerator.enumerate(&g, &mut collect);
    let mut writer = IndexWriter::create(dir, g.n()).expect("create writer");
    enumerator.enumerate(&g, &mut writer);
    writer.finish().expect("finish index");
    let max = collect.cliques.iter().map(Vec::len).max().unwrap_or(0) as u64;
    (collect.cliques.len() as u64, max)
}

#[test]
fn sigterm_mid_swap_keeps_every_answer_on_one_generation() {
    let dir = tmp("gens");
    // Even generations serve the 6-clique graph, odd ones the
    // 7-clique graph — distinguishable on every axis, so a torn
    // answer cannot masquerade as a valid one.
    let (even_cliques, even_max) = rebuild(&dir, 6, 31);
    let g2_probe = tmp("probe");
    let (odd_cliques, odd_max) = rebuild(&g2_probe, 7, 32);
    std::fs::remove_dir_all(&g2_probe).ok();
    assert_ne!(even_cliques, odd_cliques, "fixture graphs must differ");
    assert_ne!(even_max, odd_max, "fixture graphs must differ");

    let index = Arc::new(CliqueIndex::open(&dir).expect("open"));
    let shutdown = ShutdownToken::new();
    let server = Server::bind(
        Arc::clone(&index),
        "127.0.0.1:0",
        ServeConfig {
            threads: 2,
            reload_poll: Some(Duration::from_millis(25)),
            index_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&shutdown).expect("run"))
    };

    // Client hammer: collect every (generation, cliques, max_clique)
    // triple the server ever hands out, until the listener goes away.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                let parse = |key: &str, body: &str| -> Option<u64> {
                    gsb_telemetry::json::parse(body)
                        .ok()
                        .map(|p| p.u64_or_zero(key))
                };
                loop {
                    // /stats and /ready both carry generation-tagged
                    // counts; alternate so the drain races both paths.
                    let path = if c % 2 == 0 { "/stats" } else { "/ready" };
                    let Some((status, body)) = get(addr, path) else {
                        // Listener gone: the drain finished. Only then
                        // may requests stop being answered.
                        assert!(
                            stop.load(Ordering::Acquire),
                            "client {c}: connection died before shutdown was requested"
                        );
                        break;
                    };
                    assert_ne!(status, 500, "client {c}: internal error: {body}");
                    if body.contains("\"generation\"") {
                        seen.push((
                            parse("generation", &body).unwrap(),
                            parse("cliques", &body).unwrap(),
                            parse("max_clique", &body),
                            body.clone(),
                        ));
                    }
                }
                seen
            })
        })
        .collect();

    // Rebuild generations under the hammer, then SIGTERM immediately
    // after committing a fresh manifest — the drain races the watcher
    // mid-swap.
    let mut swaps = 0u64;
    for gen in 1..=4u64 {
        std::thread::sleep(Duration::from_millis(120));
        let (big, seed) = if gen % 2 == 1 { (7, 32) } else { (6, 31) };
        rebuild(&dir, big, seed);
        swaps += 1;
    }
    std::thread::sleep(Duration::from_millis(15)); // land inside a poll window
    stop.store(true, Ordering::Release);
    shutdown.request(15);
    let report = server_thread.join().expect("join server");

    let mut answers = 0usize;
    let mut gens_seen = std::collections::BTreeSet::new();
    for client in clients {
        for (generation, cliques, max_clique, body) in client.join().expect("join client") {
            answers += 1;
            gens_seen.insert(generation);
            let (want_cliques, want_max) = if generation % 2 == 0 {
                (even_cliques, even_max)
            } else {
                (odd_cliques, odd_max)
            };
            assert!(
                generation <= swaps,
                "generation {generation} never committed: {body}"
            );
            assert_eq!(
                cliques, want_cliques,
                "torn answer: generation {generation} with foreign clique count: {body}"
            );
            // /ready has no max_clique field; /stats must match.
            if let Some(max) = max_clique.filter(|_| body.contains("max_clique")) {
                assert_eq!(
                    max, want_max,
                    "torn answer: generation {generation} with foreign max clique: {body}"
                );
            }
        }
    }
    assert!(answers > 0, "clients never got an answer");
    assert!(
        gens_seen.len() >= 2,
        "only generations {gens_seen:?} observed — the hammer never saw a swap"
    );
    assert!(report.reloads >= 1, "reloads never counted");
    assert!(report.requests >= answers as u64, "requests lost");
    std::fs::remove_dir_all(&dir).ok();
}
