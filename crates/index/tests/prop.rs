//! Property tests for the on-disk clique index.
//!
//! The contract under test: for any graph, every query answered from
//! disk is identical to recomputing the answer from an in-memory
//! enumeration of the same graph; building the same index twice yields
//! byte-identical files; and corrupting any single byte of any index
//! file yields a typed [`StoreError`], never a panic or a wrong answer.

use gsb_core::{CliqueEnumerator, CollectSink, EnumConfig, StoreError};
use gsb_graph::generators::{gnp, planted, Module};
use gsb_graph::BitGraph;
use gsb_index::format::{CLIQUES_FILE, DIRECTORY_FILE, META_FILE, POSTINGS_FILE};
use gsb_index::{CliqueIndex, IndexWriter};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsb_index_prop_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Enumerate `g` twice: once into memory, once into an index at `dir`.
fn build(g: &BitGraph, dir: &Path, block_target: usize) -> Vec<Vec<u32>> {
    let enumerator = CliqueEnumerator::new(EnumConfig::default());
    let mut collect = CollectSink::default();
    enumerator.enumerate(g, &mut collect);
    let mut writer = IndexWriter::create(dir, g.n())
        .expect("create index writer")
        .block_target(block_target);
    enumerator.enumerate(g, &mut writer);
    writer.finish().expect("finish index");
    collect.cliques
}

/// Check every supported query against the in-memory truth.
fn check_queries(index: &CliqueIndex, g: &BitGraph, truth: &[Vec<u32>]) {
    let n = g.n() as u32;
    assert_eq!(index.len(), truth.len() as u64);
    assert_eq!(index.n(), g.n());

    // get(id): exact clique recall in emission order.
    for (id, expected) in truth.iter().enumerate() {
        assert_eq!(&index.get(id as u64).expect("get"), expected);
    }

    // containing(v) for every vertex, including one past the end.
    for v in 0..=n {
        let expected: Vec<u64> = truth
            .iter()
            .enumerate()
            .filter(|(_, c)| c.contains(&v))
            .map(|(id, _)| id as u64)
            .collect();
        assert_eq!(index.containing(v).expect("containing"), expected, "v={v}");
    }

    // of_size over every (lo, hi) pair up to max size + 1.
    let max = truth.iter().map(Vec::len).max().unwrap_or(0) as u32;
    for lo in 0..=max + 1 {
        for hi in lo..=max + 1 {
            let ids = index.of_size(lo, hi);
            let expected: Vec<u64> = truth
                .iter()
                .enumerate()
                .filter(|(_, c)| (lo..=hi).contains(&(c.len() as u32)))
                .map(|(id, _)| id as u64)
                .collect();
            // Sorted-by-size emission makes the answer one contiguous
            // run; the expected ids must be exactly that range.
            assert_eq!(
                ids.collect::<Vec<u64>>(),
                expected,
                "size range {lo}..={hi}"
            );
        }
    }

    // max_clique: same size as the truth's largest, and present in it.
    let got = index.max_clique().expect("max_clique");
    match truth.iter().map(Vec::len).max() {
        None => assert!(got.is_none()),
        Some(best) => {
            let got = got.expect("non-empty index has a max clique");
            assert_eq!(got.len(), best);
            assert!(truth.contains(&got));
        }
    }

    // overlap(v, w) over a deterministic sample of pairs.
    for v in 0..n.min(12) {
        for w in 0..n.min(12) {
            let expected: Vec<u64> = truth
                .iter()
                .enumerate()
                .filter(|(_, c)| c.contains(&v) && c.contains(&w))
                .map(|(id, _)| id as u64)
                .collect();
            assert_eq!(
                index.overlap(v, w).expect("overlap"),
                expected,
                "overlap({v},{w})"
            );
        }
    }
}

#[test]
fn disk_queries_match_recompute_on_100_random_graphs() {
    for seed in 0..100u64 {
        // Vary order, density, and block size so indexes cross block
        // boundaries in different places; every 10th graph gets a
        // planted module so large cliques appear too.
        let n = 12 + (seed as usize % 7) * 4;
        let p = 0.15 + (seed % 5) as f64 * 0.12;
        let g = if seed % 10 == 9 {
            planted(n, 0.1, &[Module::clique(6)], seed)
        } else {
            gnp(n, p, seed)
        };
        let dir = tmp(&format!("match_{seed}"));
        let truth = build(&g, &dir, if seed % 3 == 0 { 64 } else { 4096 });
        let index = CliqueIndex::open(&dir).expect("open index");
        check_queries(&index, &g, &truth);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn rebuild_is_byte_identical() {
    let g = planted(60, 0.12, &[Module::clique(8), Module::clique(5)], 7);
    let (a, b) = (tmp("bytes_a"), tmp("bytes_b"));
    build(&g, &a, 256);
    build(&g, &b, 256);
    for file in [CLIQUES_FILE, POSTINGS_FILE, DIRECTORY_FILE, META_FILE] {
        let left = std::fs::read(a.join(file)).expect("read a");
        let right = std::fs::read(b.join(file)).expect("read b");
        assert_eq!(left, right, "{file} differs between identical builds");
    }
    std::fs::remove_dir_all(&a).ok();
    std::fs::remove_dir_all(&b).ok();
}

/// Run every query; collect the first typed error, panic on none.
fn sweep_queries(index: &CliqueIndex) -> Result<(), StoreError> {
    for id in 0..index.len() {
        index.get(id)?;
    }
    for v in 0..index.n() as u32 {
        let ids = index.containing(v)?;
        index.materialize(ids.into_iter())?;
    }
    index.max_clique()?;
    index.overlap(0, 1)?;
    Ok(())
}

#[test]
fn every_single_byte_corruption_is_a_typed_error() {
    let g = gnp(24, 0.35, 11);
    let dir = tmp("corrupt");
    // Tiny blocks so the store has several frames to corrupt.
    let truth = build(&g, &dir, 96);
    assert!(!truth.is_empty(), "graph must have cliques to index");

    for file in [CLIQUES_FILE, POSTINGS_FILE, DIRECTORY_FILE] {
        let path = dir.join(file);
        let pristine = std::fs::read(&path).expect("read index file");
        let mut detected = 0usize;
        for pos in 0..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[pos] ^= 0x41;
            std::fs::write(&path, &bytes).expect("write corrupted file");
            // Either open() rejects the file, or some query does; a
            // flipped byte must never pass unnoticed or panic.
            let outcome = CliqueIndex::open(&dir).and_then(|index| sweep_queries(&index));
            if outcome.is_err() {
                detected += 1;
            }
            let err = outcome.expect_err(&format!("flip at {file}:{pos} went undetected"));
            // StoreError is the typed surface; formatting it must work.
            let _ = err.to_string();
        }
        assert_eq!(detected, pristine.len(), "{file}: all flips detected");
        std::fs::write(&path, &pristine).expect("restore file");
        // After restoring, the index is whole again.
        let index = CliqueIndex::open(&dir).expect("restored index opens");
        sweep_queries(&index).expect("restored index answers");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncations_are_typed_errors() {
    let g = gnp(20, 0.3, 5);
    let dir = tmp("truncate");
    build(&g, &dir, 128);
    for file in [CLIQUES_FILE, POSTINGS_FILE, DIRECTORY_FILE] {
        let path = dir.join(file);
        let pristine = std::fs::read(&path).expect("read");
        for keep in 0..pristine.len() {
            std::fs::write(&path, &pristine[..keep]).expect("truncate");
            let outcome = CliqueIndex::open(&dir).and_then(|index| sweep_queries(&index));
            assert!(
                outcome.is_err(),
                "{file} truncated to {keep} bytes accepted"
            );
        }
        std::fs::write(&path, &pristine).expect("restore");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn postings_agree_with_store_under_dedup() {
    // Cross-check: the union of containing(v) over all v enumerates
    // every clique id exactly len(clique) times.
    let g = planted(40, 0.15, &[Module::clique(7)], 3);
    let dir = tmp("xcheck");
    let truth = build(&g, &dir, 512);
    let index = CliqueIndex::open(&dir).expect("open");
    let mut seen = vec![0usize; truth.len()];
    let mut vertices_with_postings = HashSet::new();
    for v in 0..g.n() as u32 {
        for id in index.containing(v).expect("containing") {
            seen[id as usize] += 1;
            vertices_with_postings.insert(v);
        }
    }
    for (id, clique) in truth.iter().enumerate() {
        assert_eq!(seen[id], clique.len(), "clique {id} posting multiplicity");
    }
    assert_eq!(
        vertices_with_postings.len(),
        truth.iter().flatten().collect::<HashSet<_>>().len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
