//! Router chaos harness: seeded backend-fault schedules against a live
//! replicated tier, over real sockets.
//!
//! Each seed derives a deterministic per-replica fault assignment from
//! `SplitMix64` — every replica of a 2-shard × 2-replica tier is one
//! of:
//!
//! * **Live** — an ordinary in-process backend server on its shard;
//! * **LiveCorrupt** (every 4th seed, one replica) — live, but serving
//!   a byte-flipped copy of its shard: block quarantine degrades its
//!   answers exactly and the router must either pass the degradation
//!   through (counts) or fail over to the healthy twin (block reads);
//! * **Killed** — the port refuses connections;
//! * **Stalled** — accepts connections and never responds (the
//!   accept-then-hang pathology that eats naive clients);
//! * **Reset** — accepts and immediately closes (connection reset).
//!
//! Invariants held across all seeds:
//!
//! * the router never panics (`worker_panics == 0`, clean join) and
//!   *always* answers — a typed status for every request, never a
//!   silent drop;
//! * every answer is bounded by the request deadline plus scheduling
//!   slack, stalled backends notwithstanding;
//! * answers are **count-exact over the answered shards**: whenever a
//!   shard has a live replica it is answered exactly, and
//!   `missing_shards` only ever names shards with *no* live replica —
//!   degraded-exact, never silent truncation, never a degraded answer
//!   while every shard was servable;
//! * a whole tier down yields a typed 503 naming the missing shards,
//!   not a blind 500;
//! * faulty replicas end up ejected: their breaker gauge leaves
//!   CLOSED (active probes detect them even with no traffic).
//!
//! Two focused tests ride along: whole-shard-down degradation
//! semantics, and circuit-breaker recovery after a killed replica
//! restarts on the same port.

use gsb_core::supervise::SplitMix64;
use gsb_core::{CliqueEnumerator, CollectSink, EnumConfig, ShutdownToken, Vertex};
use gsb_graph::generators::{planted, Module};
use gsb_index::{split_index, CliqueIndex, IndexWriter, ServeConfig, ServeReport, Server};
use gsb_index::{Router, RouterConfig, RouterReport, ShardSpec, Topology};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const SEEDS: u64 = 48;
const REQUEST_DEADLINE: Duration = Duration::from_secs(2);
/// Client-observed latency bound: the budget plus generous scheduling
/// slack (loaded CI machines); the point is "bounded", not "fast".
const LATENCY_SLACK: Duration = Duration::from_secs(4);

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsb_rt_chaos_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Raw GET against the router. The router itself must never drop a
/// connection wordlessly, so a parse failure here is a test failure.
fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to router");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: chaos\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("no status line for {path}: {response:?}"))
        .parse()
        .expect("numeric status");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator for {path}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap_or_else(|| panic!("no Content-Length in {response:?}"))
        .parse()
        .expect("numeric Content-Length");
    assert_eq!(body.len(), content_length, "truncated response for {path}");
    (status, head.to_string(), body.to_string())
}

fn copy_index(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create dir");
    for entry in std::fs::read_dir(src).expect("read index dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy index file");
    }
}

/// Flip a byte near the tail of the clique store: the last block
/// quarantines on first read, counts stay exact (postings intact).
fn corrupt_tail(dir: &Path) {
    let store = dir.join("cliques.gsi");
    let mut bytes = std::fs::read(&store).expect("read store");
    let at = bytes.len() - 6;
    bytes[at] ^= 0x20;
    std::fs::write(&store, &bytes).expect("write corrupt store");
}

/// What one replica of the tier does this seed.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Kind {
    Live,
    LiveCorrupt,
    Killed,
    Stalled,
    Reset,
}

impl Kind {
    fn is_live(self) -> bool {
        matches!(self, Kind::Live | Kind::LiveCorrupt)
    }
}

/// Accept and hold (stall=true) or accept and drop (stall=false).
fn fault_listener(stall: bool) -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fault listener");
    let addr = listener.local_addr().expect("addr");
    listener.set_nonblocking(true).expect("nonblocking");
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut held = Vec::new();
            while !stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stall {
                            held.push(stream); // hold open, never answer
                        } // else: drop immediately — reset/EOF
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
        })
    };
    (addr, stop, handle)
}

/// A port that refuses connections: bind to learn a free port, then
/// close the listener before the router ever dials it.
fn dead_port() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.local_addr().expect("addr")
}

type BackendHandle = (ShutdownToken, JoinHandle<std::io::Result<ServeReport>>);

fn start_backend(dir: &Path, addr: &str) -> (SocketAddr, BackendHandle) {
    let index = Arc::new(CliqueIndex::open(dir).expect("open shard index"));
    let server = Server::bind(
        index,
        addr,
        ServeConfig {
            threads: 2,
            deadline: Duration::from_secs(2),
            request_deadline: Duration::from_millis(1500),
            queue_limit: 64,
            ..ServeConfig::default()
        },
    )
    .expect("bind backend");
    let bound = server.local_addr().expect("addr");
    let shutdown = ShutdownToken::new();
    let handle = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&shutdown))
    };
    (bound, (shutdown, handle))
}

fn router_config() -> RouterConfig {
    RouterConfig {
        threads: 2,
        deadline: Duration::from_secs(2),
        request_deadline: REQUEST_DEADLINE,
        queue_limit: 64,
        probe_interval: Duration::from_millis(50),
        breaker_failures: 3,
        breaker_cooldown: Duration::from_millis(100),
        try_timeout: Duration::from_millis(250),
        ..RouterConfig::default()
    }
}

type RouterHandle = (
    SocketAddr,
    ShutdownToken,
    JoinHandle<std::io::Result<RouterReport>>,
);

fn start_router(topology: Topology) -> RouterHandle {
    let router = Router::bind(topology, "127.0.0.1:0", router_config()).expect("bind router");
    let addr = router.local_addr().expect("router addr");
    let shutdown = ShutdownToken::new();
    let handle = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || router.run(&shutdown))
    };
    (addr, shutdown, handle)
}

fn join_router(
    shutdown: &ShutdownToken,
    handle: JoinHandle<std::io::Result<RouterReport>>,
) -> RouterReport {
    shutdown.request(15);
    let report = handle
        .join()
        .expect("router thread must not panic")
        .expect("router run must not error");
    let parsed = gsb_telemetry::json::parse(&report.metrics_json).expect("metrics parse");
    assert_eq!(
        parsed.u64_or_zero("worker_panics"),
        0,
        "a router worker panicked under chaos"
    );
    report
}

/// The `gsb_router_backend_state` gauge for one backend address, read
/// off a `/metrics` Prometheus scrape. CLOSED=0, HALF_OPEN=1, OPEN=2.
fn breaker_gauge(promtext: &str, backend: &str) -> Option<u64> {
    let needle = format!("backend=\"{backend}\"");
    promtext
        .lines()
        .find(|l| l.starts_with("gsb_router_backend_state{") && l.contains(&needle))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Poll `/metrics` until the backend's breaker gauge satisfies `ok`.
fn wait_for_breaker(
    router: SocketAddr,
    backend: &str,
    ok: impl Fn(u64) -> bool,
    timeout: Duration,
) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, _, body) = get(router, "/metrics");
        assert_eq!(status, 200, "metrics scrape failed");
        if breaker_gauge(&body, backend).is_some_and(&ok) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Ground truth + golden shard directories shared by every seed.
struct Fixture {
    truth: Vec<Vec<Vertex>>,
    shard_dirs: Vec<PathBuf>,
    /// `(id_lo, id_hi, size_lo, size_hi)` per shard.
    shards: Vec<(u64, u64, u32, u32)>,
}

fn build_fixture(tag: &str) -> Fixture {
    let g = planted(60, 0.07, &[Module::clique(8), Module::clique(5)], 23);
    let golden = tmp(&format!("{tag}_golden"));
    let enumerator = CliqueEnumerator::new(EnumConfig::default());
    let mut collect = CollectSink::default();
    enumerator.enumerate(&g, &mut collect);
    let mut writer = IndexWriter::create(&golden, g.n()).expect("create writer");
    enumerator.enumerate(&g, &mut writer);
    writer.finish().expect("finish index");
    let shards_dir = tmp(&format!("{tag}_shards"));
    let summaries = split_index(&golden, &shards_dir, 2).expect("split");
    Fixture {
        truth: collect.cliques,
        shard_dirs: summaries.iter().map(|s| s.dir.clone()).collect(),
        shards: summaries
            .iter()
            .map(|s| (s.id_lo, s.id_hi, s.size_lo, s.size_hi))
            .collect(),
    }
}

impl Fixture {
    fn topology(&self, replicas: &[Vec<String>]) -> Topology {
        Topology {
            shards: self
                .shards
                .iter()
                .zip(replicas)
                .map(|(&(id_lo, id_hi, size_lo, size_hi), r)| ShardSpec {
                    id_lo,
                    id_hi,
                    size_lo,
                    size_hi,
                    replicas: r.clone(),
                })
                .collect(),
        }
    }

    fn shard_of(&self, id: u64) -> usize {
        self.shards
            .iter()
            .position(|&(lo, hi, ..)| id >= lo && id < hi)
            .expect("id owned by some shard")
    }

    /// Count cliques matching `pred` whose global id falls in an
    /// answered shard.
    fn count_over(&self, answered: &[bool], pred: impl Fn(&[Vertex]) -> bool) -> u64 {
        self.truth
            .iter()
            .enumerate()
            .filter(|(id, c)| answered[self.shard_of(*id as u64)] && pred(c))
            .count() as u64
    }
}

/// Which shards the router reports missing, from a 200 body; asserts
/// every named shard is truly dead and returns the answered mask.
fn answered_mask(body: &str, live: &[bool; 2], context: &str) -> [bool; 2] {
    let parsed = gsb_telemetry::json::parse(body).expect("parse router body");
    let mut answered = [true, true];
    for m in parsed.u64_array("missing_shards") {
        let m = m as usize;
        assert!(
            !live[m],
            "{context}: shard {m} reported missing but it has a live replica: {body}"
        );
        answered[m] = false;
    }
    for (s, alive) in live.iter().enumerate() {
        assert!(
            *alive || !answered[s],
            "{context}: dead shard {s} not reported missing: {body}"
        );
    }
    answered
}

#[test]
fn seeded_backend_faults_never_panic_and_answers_stay_exact() {
    let fx = build_fixture("seeds");
    let max_size = fx.truth.iter().map(Vec::len).max().unwrap();
    let gid0 = fx.shards[0].0; // first clique of shard 0
    let gid1 = fx.shards[1].0; // first clique of shard 1
    let (mut total_retries, mut total_hedges, mut total_degraded) = (0u64, 0u64, 0u64);

    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(seed ^ 0xC4A0_5C4A_05C4_A05C);
        // Live-biased draw so most shards keep a live replica (the
        // exact-under-failover path); the rest exercise degradation.
        let mut kinds = [[Kind::Live; 2]; 2];
        for shard in kinds.iter_mut() {
            for kind in shard.iter_mut() {
                *kind = match rng.below(8) {
                    0..=4 => Kind::Live,
                    5 => Kind::Killed,
                    6 => Kind::Stalled,
                    _ => Kind::Reset,
                };
            }
        }
        // Every 4th seed one replica serves corrupted bytes while the
        // tier also has whatever faults the draw above dealt.
        let corrupt_replica = (seed % 4 == 0).then(|| {
            let pick = rng.below(4) as usize;
            kinds[pick / 2][pick % 2] = Kind::LiveCorrupt;
            (pick / 2, pick % 2)
        });
        let live = [
            kinds[0].iter().any(|k| k.is_live()),
            kinds[1].iter().any(|k| k.is_live()),
        ];
        let corrupt_on = |shard: usize| corrupt_replica.is_some_and(|(s, _)| s == shard);

        // Assemble the tier.
        let mut servers: Vec<BackendHandle> = Vec::new();
        let mut faults: Vec<(Arc<AtomicBool>, JoinHandle<()>)> = Vec::new();
        let mut corrupt_dirs: Vec<PathBuf> = Vec::new();
        let mut replicas: Vec<Vec<String>> = vec![Vec::new(), Vec::new()];
        for (shard, shard_kinds) in kinds.iter().enumerate() {
            for (r, kind) in shard_kinds.iter().enumerate() {
                let addr = match kind {
                    Kind::Live => {
                        let (addr, handle) = start_backend(&fx.shard_dirs[shard], "127.0.0.1:0");
                        servers.push(handle);
                        addr
                    }
                    Kind::LiveCorrupt => {
                        let dir = tmp(&format!("seed{seed}_corrupt{shard}_{r}"));
                        copy_index(&fx.shard_dirs[shard], &dir);
                        corrupt_tail(&dir);
                        let (addr, handle) = start_backend(&dir, "127.0.0.1:0");
                        servers.push(handle);
                        corrupt_dirs.push(dir);
                        addr
                    }
                    Kind::Killed => dead_port(),
                    Kind::Stalled | Kind::Reset => {
                        let (addr, stop, handle) = fault_listener(*kind == Kind::Stalled);
                        faults.push((stop, handle));
                        addr
                    }
                };
                replicas[shard].push(addr.to_string());
            }
        }
        let (router, shutdown, handle) = start_router(fx.topology(&replicas));

        // A couple of probe laps: breakers for dead replicas open
        // before the workload, so most requests fail over instantly.
        std::thread::sleep(Duration::from_millis(300));

        // Mixed workload; every answer typed, bounded, and exact over
        // the shards it claims to have answered.
        for round in 0..14u32 {
            let v = (seed as u32 * 7 + round * 3) % 60;
            let w = (seed as u32 * 11 + round * 5) % 60;
            let path = match round % 7 {
                0 => "/health".to_string(),
                1 => format!("/containing/{v}"),
                2 => "/max".to_string(),
                3 => format!("/overlap/{v}/{w}"),
                4 => "/stats".to_string(),
                5 => format!("/get/{}", if round % 2 == 1 { gid1 } else { gid0 }),
                _ => "/size/1/64".to_string(),
            };
            let started = Instant::now();
            let (status, head, body) = get(router, &path);
            assert!(
                started.elapsed() < REQUEST_DEADLINE + LATENCY_SLACK,
                "seed {seed} round {round} ({path}): {:?} exceeds deadline budget",
                started.elapsed()
            );
            let ctx = format!("seed {seed} round {round} ({path})");
            match round % 7 {
                0 => assert_eq!(status, 200, "{ctx}: health must always answer ok"),
                1 | 3 => {
                    // Scatter queries: 503 only with the whole tier
                    // down; 200 answers are count-exact over the
                    // answered shards and degradation is explicit.
                    if status == 503 {
                        assert!(
                            !live[0] && !live[1],
                            "{ctx}: 503 while a shard had a live replica: {body}"
                        );
                        assert!(
                            body.contains("missing_shards"),
                            "{ctx}: untyped 503: {body}"
                        );
                        continue;
                    }
                    assert_eq!(status, 200, "{ctx}: {body}");
                    let answered = answered_mask(&body, &live, &ctx);
                    let expected = if round % 7 == 1 {
                        fx.count_over(&answered, |c| c.contains(&v))
                    } else {
                        fx.count_over(&answered, |c| c.contains(&v) && c.contains(&w))
                    };
                    assert!(
                        body.contains(&format!("\"count\":{expected}")),
                        "{ctx}: count drifted (want {expected}): {body}"
                    );
                    if body.contains("missing_shards") || body.contains("\"degraded\":") {
                        assert!(
                            head.contains("X-Gsb-Degraded:"),
                            "{ctx}: degraded body without header marker: {head}"
                        );
                    } else {
                        assert!(
                            !head.contains("X-Gsb-Degraded:"),
                            "{ctx}: degraded header on a clean answer"
                        );
                    }
                }
                2 => {
                    // /max routes to the last shard. A corrupt replica
                    // 500s on the quarantined tail block; with a
                    // healthy twin the router fails over, without one
                    // the shard is unanswerable (typed 503).
                    if live[1] && !corrupt_on(1) {
                        assert_eq!(status, 200, "{ctx}: {body}");
                        assert!(
                            body.contains(&format!("\"size\":{max_size}")),
                            "{ctx}: {body}"
                        );
                    } else if !live[1] {
                        assert_eq!(status, 503, "{ctx}: {body}");
                        assert!(
                            body.contains("missing_shards"),
                            "{ctx}: untyped 503: {body}"
                        );
                    } else {
                        assert!(
                            status == 503
                                || (status == 200
                                    && body.contains(&format!("\"size\":{max_size}"))),
                            "{ctx}: {status} {body}"
                        );
                    }
                }
                4 => {
                    if status == 503 {
                        assert!(!live[0] && !live[1], "{ctx}: {body}");
                        continue;
                    }
                    assert_eq!(status, 200, "{ctx}: {body}");
                    let answered = answered_mask(&body, &live, &ctx);
                    let expected: u64 = fx
                        .shards
                        .iter()
                        .enumerate()
                        .filter(|(s, _)| answered[*s])
                        .map(|(_, &(lo, hi, ..))| hi - lo)
                        .sum();
                    assert!(
                        body.contains(&format!("\"cliques\":{expected}")),
                        "{ctx}: clique total drifted (want {expected}): {body}"
                    );
                }
                5 => {
                    let gid = if round % 2 == 1 { gid1 } else { gid0 };
                    let owner = fx.shard_of(gid);
                    let exact = format!("\"id\":{gid},\"size\":{}", fx.truth[gid as usize].len());
                    if live[owner] && !corrupt_on(owner) {
                        assert_eq!(status, 200, "{ctx}: {body}");
                        assert!(body.contains(&exact), "{ctx}: wrong clique: {body}");
                    } else if !live[owner] {
                        assert_eq!(status, 503, "{ctx}: {body}");
                        assert!(
                            body.contains("missing_shards"),
                            "{ctx}: untyped 503: {body}"
                        );
                    } else {
                        // Corrupt replica on the owner shard: exact via
                        // the healthy twin, or typed 503 if the twin is
                        // dead and only corrupted bytes remain.
                        assert!(
                            status == 503 || (status == 200 && body.contains(&exact)),
                            "{ctx}: {status} {body}"
                        );
                    }
                }
                _ => {
                    if live[0] && live[1] {
                        assert_eq!(status, 200, "{ctx}: {body}");
                        assert!(
                            !body.contains("missing_shards"),
                            "{ctx}: degraded while fully live: {body}"
                        );
                        assert!(
                            body.contains(&format!("\"count\":{}", fx.truth.len())),
                            "{ctx}: size sweep count drifted: {body}"
                        );
                    } else {
                        assert!(matches!(status, 200 | 503), "{ctx}: {status} {body}");
                    }
                }
            }
        }

        // Ejection: every dead replica's breaker must leave CLOSED —
        // active probes find them even if the workload never did.
        for (shard, shard_kinds) in kinds.iter().enumerate() {
            for (r, kind) in shard_kinds.iter().enumerate() {
                if !kind.is_live() {
                    assert!(
                        wait_for_breaker(
                            router,
                            &replicas[shard][r],
                            |g| g != 0,
                            Duration::from_secs(5)
                        ),
                        "seed {seed}: breaker for dead {kind:?} replica {shard}/{r} stayed closed"
                    );
                }
            }
        }

        let report = join_router(&shutdown, handle);
        assert!(report.requests >= 14, "seed {seed}: requests went missing");
        total_retries += report.retries;
        total_hedges += report.hedges;
        total_degraded += report.degraded_answers;

        for (stop, handle) in faults {
            stop.store(true, Ordering::Release);
            handle.join().expect("fault listener join");
        }
        for (token, handle) in servers {
            token.request(15);
            handle.join().expect("backend join").expect("backend run");
        }
        for dir in corrupt_dirs {
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    // Across 48 seeds the fault mix must have exercised the recovery
    // machinery itself, not just the happy path.
    assert!(
        total_retries + total_hedges > 0,
        "no retry or hedge fired across any seed"
    );
    assert!(total_degraded > 0, "no degraded answer across any seed");
}

#[test]
fn whole_shard_down_degrades_exactly_with_typed_answers() {
    let fx = build_fixture("sharddown");
    let (addr0a, h0a) = start_backend(&fx.shard_dirs[0], "127.0.0.1:0");
    let (addr0b, h0b) = start_backend(&fx.shard_dirs[0], "127.0.0.1:0");
    let replicas = vec![
        vec![addr0a.to_string(), addr0b.to_string()],
        vec![dead_port().to_string(), dead_port().to_string()],
    ];
    let (router, shutdown, handle) = start_router(fx.topology(&replicas));
    std::thread::sleep(Duration::from_millis(300));

    // Scatter: 200, explicitly degraded, exact over shard 0.
    let v = fx.truth[0][0];
    let (status, head, body) = get(router, &format!("/containing/{v}"));
    assert_eq!(status, 200, "{body}");
    assert!(
        head.contains("X-Gsb-Degraded:"),
        "no degraded marker: {head}"
    );
    assert!(body.contains("\"missing_shards\":[1]"), "{body}");
    let expected = fx.count_over(&[true, false], |c| c.contains(&v));
    assert!(body.contains(&format!("\"count\":{expected}")), "{body}");

    // Point reads on the dead shard: typed 503 naming it; the live
    // shard keeps answering exactly.
    let gid1 = fx.shards[1].0;
    let (status, _, body) = get(router, &format!("/get/{gid1}"));
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"missing_shards\":[1]"), "{body}");
    let (status, _, body) = get(router, "/max");
    assert_eq!(status, 503, "max lives on the dead shard: {body}");
    let (status, _, body) = get(router, "/get/0");
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains(&format!("\"id\":0,\"size\":{}", fx.truth[0].len())),
        "{body}"
    );

    // /health stays green (the router is fine), /ready goes red (the
    // tier is not fully servable) — the load-balancer-facing split.
    let (status, _, _) = get(router, "/health");
    assert_eq!(status, 200);
    let (status, _, body) = get(router, "/ready");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"live_shards\":1"), "{body}");

    let report = join_router(&shutdown, handle);
    assert!(report.degraded_answers > 0, "degradation not counted");
    for (token, handle) in [h0a, h0b] {
        token.request(15);
        handle.join().expect("backend join").expect("backend run");
    }
}

#[test]
fn breaker_reopens_then_recloses_after_replica_restart() {
    let fx = build_fixture("recovery");
    let (addr_a, (token_a, join_a)) = start_backend(&fx.shard_dirs[0], "127.0.0.1:0");
    let (addr_b, h_b) = start_backend(&fx.shard_dirs[0], "127.0.0.1:0");
    let (addr_1, h_1) = start_backend(&fx.shard_dirs[1], "127.0.0.1:0");
    let replicas = vec![
        vec![addr_a.to_string(), addr_b.to_string()],
        vec![addr_1.to_string()],
    ];
    let (router, shutdown, handle) = start_router(fx.topology(&replicas));

    let v = fx.truth[fx.truth.len() - 1][0]; // vertex of the max clique
    let expected = fx.count_over(&[true, true], |c| c.contains(&v));
    let exact = |label: &str| {
        let (status, head, body) = get(router, &format!("/containing/{v}"));
        assert_eq!(status, 200, "{label}: {body}");
        assert!(
            body.contains(&format!("\"count\":{expected}")),
            "{label}: count drifted: {body}"
        );
        assert!(
            !head.contains("X-Gsb-Degraded:"),
            "{label}: degraded while shard 0 had a live replica"
        );
    };
    assert!(
        wait_for_breaker(
            router,
            &addr_a.to_string(),
            |g| g == 0,
            Duration::from_secs(5)
        ),
        "replica A never reported healthy"
    );
    exact("before kill");

    // Kill replica A: probes must open its breaker, answers must stay
    // exact and non-degraded through replica B.
    token_a.request(15);
    join_a.join().expect("join A").expect("run A");
    assert!(
        wait_for_breaker(
            router,
            &addr_a.to_string(),
            |g| g == 2,
            Duration::from_secs(5)
        ),
        "breaker never opened for the killed replica"
    );
    for _ in 0..5 {
        exact("after kill");
    }

    // Restart on the same port (std listeners set SO_REUSEADDR): the
    // next successful probe must re-close the breaker.
    let (readdr, h_a2) = start_backend(&fx.shard_dirs[0], &addr_a.to_string());
    assert_eq!(readdr, addr_a, "restart must reuse the original address");
    assert!(
        wait_for_breaker(
            router,
            &addr_a.to_string(),
            |g| g == 0,
            Duration::from_secs(5)
        ),
        "breaker never re-closed after the replica restarted"
    );
    exact("after restart");

    let report = join_router(&shutdown, handle);
    assert_eq!(report.degraded_answers, 0, "failover leaked degradation");
    for (token, handle) in [h_a2, h_b, h_1] {
        token.request(15);
        handle.join().expect("backend join").expect("backend run");
    }
}
