//! HTTP parser hardening: deterministic fuzz of the request surface.
//!
//! A public query server meets clients that are broken, hostile, or
//! both. These tests drive seeded-random malformed traffic — binary
//! garbage, truncated request lines, oversized targets, wrong methods,
//! header floods, slow-loris dribbles — through a real socket and hold
//! the server to its contract: every answered request gets a *typed*
//! status with an exact `Content-Length`, `Connection: close`, and
//! `Retry-After` on every error; the server never panics and never
//! hangs; and after the storm it still answers `/health` with 200.
//!
//! The corpus is derived from `SplitMix64` seeds, so a failure
//! reproduces from its seed alone.

use gsb_core::supervise::SplitMix64;
use gsb_core::{CliqueEnumerator, EnumConfig, ShutdownToken};
use gsb_graph::generators::{planted, Module};
use gsb_index::{CliqueIndex, IndexWriter, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsb_http_fuzz_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Build a small index and start a server with a tight header cap and
/// request budget, so the defensive paths are reachable in test time.
fn start_server(
    dir: &PathBuf,
) -> (
    SocketAddr,
    ShutdownToken,
    std::thread::JoinHandle<gsb_index::ServeReport>,
) {
    let g = planted(40, 0.08, &[Module::clique(7), Module::clique(5)], 17);
    let enumerator = CliqueEnumerator::new(EnumConfig::default());
    let mut writer = IndexWriter::create(dir, g.n()).expect("create writer");
    enumerator.enumerate(&g, &mut writer);
    writer.finish().expect("finish index");

    let index = Arc::new(CliqueIndex::open(dir).expect("open index"));
    let shutdown = ShutdownToken::new();
    let server = Server::bind(
        index,
        "127.0.0.1:0",
        ServeConfig {
            threads: 4,
            deadline: Duration::from_secs(2),
            request_deadline: Duration::from_millis(700),
            // Big enough that the oversized-target corpus (~2.4 KiB)
            // reaches the parser's own 2048 cap; small enough that the
            // flood test finishes instantly.
            max_header_bytes: 4096,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&shutdown).expect("server run"))
    };
    (addr, shutdown, handle)
}

/// Send raw bytes, read the raw response to EOF (bounded by the socket
/// timeout, so a hang fails the test instead of wedging it).
fn raw_request(addr: SocketAddr, payload: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(payload).expect("send payload");
    let mut response = Vec::new();
    // Reset instead of a response is a protocol violation here: the
    // server answers everything it parses.
    stream.read_to_end(&mut response).expect("read response");
    response
}

/// The response contract every answered request must meet.
fn check_response(raw: &[u8], context: &str) -> u16 {
    let text = String::from_utf8_lossy(raw);
    assert!(
        text.starts_with("HTTP/1.1 "),
        "{context}: bad status line in {text:?}"
    );
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("{context}: no status in {text:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("{context}: non-numeric status in {text:?}"));
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("{context}: no header terminator in {text:?}"));
    assert!(
        head.contains("Connection: close"),
        "{context}: missing Connection: close in {head:?}"
    );
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap_or_else(|| panic!("{context}: missing Content-Length in {head:?}"))
        .parse()
        .expect("numeric Content-Length");
    assert_eq!(
        body.len(),
        content_length,
        "{context}: Content-Length mismatch in {text:?}"
    );
    if status >= 400 {
        // Shed 503s scale Retry-After with queue depth (1..=8); plain
        // errors keep 1. Either way the header must be present.
        assert!(
            head.contains("Retry-After: "),
            "{context}: error status {status} without Retry-After in {head:?}"
        );
    }
    status
}

/// One seeded malformed request. Every branch ends its payload with the
/// header terminator, so the server parses rather than waits.
fn fuzz_payload(seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed ^ 0xF022_F022_F022_F022);
    let mut payload = Vec::new();
    match rng.below(8) {
        0 => {
            // Binary garbage of seeded length.
            let len = 1 + rng.below(200) as usize;
            for _ in 0..len {
                payload.push((rng.next_u64() & 0xFF) as u8);
            }
        }
        1 => {
            // Wrong method on a real path.
            let method = ["POST", "PUT", "DELETE", "PATCH", "get", "G E T"][rng.below(6) as usize];
            payload.extend_from_slice(format!("{method} /health HTTP/1.1\r\nHost: f").as_bytes());
        }
        2 => {
            // Oversized request target (parser cap is 2048).
            let target = "a".repeat(2049 + rng.below(300) as usize);
            payload.extend_from_slice(format!("GET /{target} HTTP/1.1").as_bytes());
        }
        3 => {
            // Garbage parameters on real endpoints.
            let line = [
                "GET /containing/notanumber HTTP/1.1",
                "GET /containing/-1 HTTP/1.1",
                "GET /size/9/3 HTTP/1.1",
                "GET /size/x/y HTTP/1.1",
                "GET /overlap/1 HTTP/1.1",
                "GET /overlap/a/b HTTP/1.1",
            ][rng.below(6) as usize];
            payload.extend_from_slice(line.as_bytes());
        }
        4 => {
            // Truncated or mangled request line.
            let line = [
                "GET",
                "GET ",
                "/health HTTP/1.1",
                "HTTP/1.1 GET /health",
                "\t",
            ][rng.below(5) as usize];
            payload.extend_from_slice(line.as_bytes());
        }
        5 => {
            // Unknown path with seeded junk segments.
            payload.extend_from_slice(
                format!("GET /no/such/{}/endpoint HTTP/1.1", rng.next_u64()).as_bytes(),
            );
        }
        6 => {
            // NUL and control bytes inside the request line.
            payload.extend_from_slice(b"GET /hea\x00\x01\x02lth HTTP/1.1");
        }
        _ => {
            // A well-formed request mixed into the corpus: the server
            // must keep answering these correctly mid-storm.
            payload.extend_from_slice(b"GET /health HTTP/1.1\r\nHost: fuzz");
        }
    }
    payload.extend_from_slice(b"\r\n\r\n");
    payload
}

#[test]
fn seeded_malformed_requests_get_typed_responses() {
    let dir = tmp("corpus");
    let (addr, shutdown, handle) = start_server(&dir);

    for seed in 0..96u64 {
        let payload = fuzz_payload(seed);
        let raw = raw_request(addr, &payload);
        if raw.is_empty() {
            // The only wordless outcome allowed is a peer-closed socket
            // with nothing parseable; our corpus always sends a
            // terminator, so silence is a contract violation.
            panic!("seed {seed}: server closed without a response");
        }
        let status = check_response(&raw, &format!("seed {seed}"));
        assert!(
            matches!(status, 200 | 400 | 404 | 405),
            "seed {seed}: unexpected status {status}"
        );
        // A healthy response to garbage must never claim degradation.
        assert!(
            !String::from_utf8_lossy(&raw).contains("X-Gsb-Degraded"),
            "seed {seed}: degraded marker on a fuzz response"
        );
    }

    // The server survived the whole corpus.
    let raw = raw_request(addr, b"GET /health HTTP/1.1\r\n\r\n");
    assert_eq!(check_response(&raw, "post-fuzz health"), 200);

    shutdown.request(15);
    let report = handle.join().expect("server thread");
    let parsed = gsb_telemetry::json::parse(&report.metrics_json).expect("metrics parse");
    assert_eq!(
        parsed.u64_or_zero("worker_panics"),
        0,
        "fuzz corpus panicked a worker"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn header_flood_is_cut_off_with_431() {
    let dir = tmp("flood");
    let (addr, shutdown, handle) = start_server(&dir);

    // Exactly the configured cap, no terminator: the server must stop
    // reading at the cap and answer 431 (a clean close — no unread
    // bytes that could turn the response into a reset).
    let flood = vec![b'a'; 4096];
    let raw = raw_request(addr, &flood);
    assert_eq!(check_response(&raw, "header flood"), 431);

    let raw = raw_request(addr, b"GET /health HTTP/1.1\r\n\r\n");
    assert_eq!(check_response(&raw, "post-flood health"), 200);

    shutdown.request(15);
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slow_loris_is_cut_off_with_408() {
    let dir = tmp("loris");
    let (addr, shutdown, handle) = start_server(&dir);

    // Dribble a header forever: each byte is "progress", but the
    // request budget (700ms here) bounds the total. The server must
    // answer 408 rather than wait for a terminator that never comes.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = std::time::Instant::now();
    let mut response = Vec::new();
    for chunk in ["GET /he", "alth HT", "TP/1.1\r", "\nHost"].iter().cycle() {
        if stream.write_all(chunk.as_bytes()).is_err() {
            break; // server already gave up on us
        }
        std::thread::sleep(Duration::from_millis(100));
        if started.elapsed() > Duration::from_secs(5) {
            panic!("slow-loris was never cut off");
        }
        // Peek for the verdict without blocking the dribble.
        stream
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let mut buf = [0u8; 4096];
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(k) => {
                response.extend_from_slice(&buf[..k]);
                if response.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => continue,
        }
    }
    // Drain whatever is left of the response.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    response.extend_from_slice(&rest);
    assert_eq!(check_response(&response, "slow loris"), 408);
    // The cutoff happened near the budget, not at the 2s socket
    // deadline or later.
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "cutoff took {:?}",
        started.elapsed()
    );

    let raw = raw_request(addr, b"GET /health HTTP/1.1\r\n\r\n");
    assert_eq!(check_response(&raw, "post-loris health"), 200);

    shutdown.request(15);
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();
}
