//! Server chaos harness: seeded fault schedules against a live server.
//!
//! Each seed derives a deterministic schedule from
//! [`gsb_core::failpoint::server_chaos_schedule`] — injected I/O
//! errors and stalls at the serving-path failpoints (`index.block_read`,
//! `index.postings_read`, `serve.accept`, `serve.respond`) — and every
//! third seed additionally corrupts a byte of the on-disk clique store,
//! so block quarantine and degraded-exact serving run *under* injected
//! faults, not only in isolation. A misbehaving client (binary garbage)
//! rides along in every run.
//!
//! Invariants held across all seeds:
//!
//! * the server never panics (`worker_panics == 0`, clean join);
//! * every parsed request gets a typed status with exact
//!   `Content-Length`; a connection killed by an injected accept or
//!   respond fault dies silently but never hangs;
//! * accepted `200` answers are exact: the `count` field always equals
//!   the ground truth, and degradation is explicit (`X-Gsb-Degraded`)
//!   — never silent truncation;
//! * no request outlives its deadline budget by more than scheduling
//!   slack;
//! * after the schedule exhausts, the server converges back to
//!   answering `/health` with 200.
//!
//! Requires `--features failpoints`; without it this file is empty.

#![cfg(feature = "failpoints")]

use gsb_core::failpoint;
use gsb_core::{CliqueEnumerator, CollectSink, EnumConfig, ShutdownToken};
use gsb_graph::generators::{planted, Module};
use gsb_index::{CliqueIndex, IndexWriter, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEEDS: u64 = 72;
const REQUEST_DEADLINE: Duration = Duration::from_secs(2);
/// Client-observed latency bound: the budget plus generous scheduling
/// slack (loaded CI machines); the point is "bounded", not "fast".
const LATENCY_SLACK: Duration = Duration::from_secs(4);

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsb_srv_chaos_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Raw GET; `None` when the connection died without a parseable
/// response (allowed under injected accept/respond faults — the
/// invariant is it dies fast and silent, never half-answered).
fn get(addr: SocketAddr, path: &str) -> Option<(u16, String, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: chaos\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    if response.is_empty() {
        return None;
    }
    let status: u16 = response.split_whitespace().nth(1)?.parse().ok()?;
    let (head, body) = response.split_once("\r\n\r\n")?;
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap_or_else(|| panic!("no Content-Length in {response:?}"))
        .parse()
        .expect("numeric Content-Length");
    assert_eq!(
        body.len(),
        content_length,
        "truncated response for {path}: {response:?}"
    );
    Some((status, head.to_string(), body.to_string()))
}

/// Copy the four index files into a per-seed directory so corruption
/// never leaks across seeds.
fn copy_index(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create seed dir");
    for entry in std::fs::read_dir(src).expect("read index dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy index file");
    }
}

#[test]
fn chaos_schedules_never_panic_and_answers_stay_exact() {
    // One ground-truth index, rebuilt per seed by file copy.
    let g = planted(60, 0.07, &[Module::clique(8), Module::clique(5)], 23);
    let golden = tmp("golden");
    let enumerator = CliqueEnumerator::new(EnumConfig::default());
    let mut collect = CollectSink::default();
    enumerator.enumerate(&g, &mut collect);
    let truth = collect.cliques;
    let mut writer = IndexWriter::create(&golden, g.n()).expect("create writer");
    enumerator.enumerate(&g, &mut writer);
    writer.finish().expect("finish index");

    for seed in 0..SEEDS {
        let schedule = failpoint::server_chaos_schedule(seed);
        let dir = tmp(&format!("seed{seed}"));
        copy_index(&golden, &dir);

        // Every third seed also corrupts the tail of the clique store:
        // the last block must quarantine and serving must degrade
        // exactly, even while I/O faults fire around it.
        let corrupted = seed % 3 == 0;
        if corrupted {
            let store = dir.join("cliques.gsi");
            let mut bytes = std::fs::read(&store).expect("read store");
            let at = bytes.len() - 6;
            bytes[at] ^= 0x20;
            std::fs::write(&store, &bytes).expect("write corrupt store");
        }

        let index = Arc::new(CliqueIndex::open(&dir).expect("open index"));
        let shutdown = ShutdownToken::new();
        let server = Server::bind(
            Arc::clone(&index),
            "127.0.0.1:0",
            ServeConfig {
                threads: 2,
                deadline: Duration::from_secs(2),
                request_deadline: REQUEST_DEADLINE,
                queue_limit: 16,
                ..ServeConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr().expect("addr");

        failpoint::reset_all();
        for (site, action) in &schedule {
            failpoint::configure(site, *action);
        }
        let handle = {
            let shutdown = shutdown.clone();
            std::thread::spawn(move || server.run(&shutdown))
        };

        // A misbehaving client rides along in every schedule.
        {
            let started = Instant::now();
            let _ = get(addr, "/\x01garbage\x02path");
            assert!(
                started.elapsed() < REQUEST_DEADLINE + LATENCY_SLACK,
                "seed {seed}: garbage client not bounded"
            );
        }

        // Mixed query workload: enough requests that bounded schedules
        // (skip < 8, times <= 3) exhaust before the final health check.
        let mut answered = 0u32;
        for round in 0..14u32 {
            let v = (seed as u32 * 7 + round * 3) % 60;
            let w = (seed as u32 * 11 + round * 5) % 60;
            let path = match round % 5 {
                0 => "/health".to_string(),
                1 => format!("/containing/{v}"),
                2 => "/max".to_string(),
                3 => format!("/overlap/{v}/{w}"),
                _ => "/stats".to_string(),
            };
            let started = Instant::now();
            let outcome = get(addr, &path);
            assert!(
                started.elapsed() < REQUEST_DEADLINE + LATENCY_SLACK,
                "seed {seed} round {round} ({path}): {:?} exceeds deadline budget",
                started.elapsed()
            );
            let Some((status, head, body)) = outcome else {
                continue; // killed by an injected accept/respond fault
            };
            answered += 1;
            assert!(
                matches!(status, 200 | 500 | 503),
                "seed {seed} round {round} ({path}): unexpected status {status}: {body}"
            );
            if status != 200 {
                continue;
            }
            // Exactness of accepted answers: counts always match the
            // ground truth (counts come from postings and the
            // directory, which this harness never corrupts), and any
            // skipped cliques are explicitly marked.
            if let Some(v_str) = path.strip_prefix("/containing/") {
                let v: u32 = v_str.parse().unwrap();
                let expected = truth.iter().filter(|c| c.contains(&v)).count();
                assert!(
                    body.contains(&format!("\"count\":{expected}")),
                    "seed {seed}: containing({v}) count drifted: {body}"
                );
                if body.contains("\"degraded\":") {
                    assert!(
                        head.contains("X-Gsb-Degraded:"),
                        "seed {seed}: degraded body without header marker"
                    );
                    assert!(corrupted, "seed {seed}: degraded answer on a clean index");
                }
            } else if path == "/max" && !corrupted {
                assert!(body.contains("\"size\":8"), "seed {seed}: max: {body}");
            }
        }
        assert!(
            answered > 0,
            "seed {seed}: every request died — schedules are bounded, some must land"
        );

        // Faults over (schedules are bounded anyway; disarming makes
        // the convergence check deterministic): the server must be back
        // to healthy answering — injected errors never wedge it.
        failpoint::reset_all();
        let (status, _, _) = get(addr, "/health").expect("post-chaos health answer");
        assert_eq!(status, 200, "seed {seed}: server did not converge");

        if corrupted {
            // Probe a vertex of the largest clique: that clique lives in
            // the corrupted (now quarantined) tail block, so the answer
            // must be 200, count-exact, and explicitly degraded.
            let probe = truth.iter().max_by_key(|c| c.len()).unwrap()[0];
            let (status, head, body) =
                get(addr, &format!("/containing/{probe}")).expect("degraded probe answer");
            assert_eq!(status, 200, "seed {seed}: degraded probe: {body}");
            let expected = truth.iter().filter(|c| c.contains(&probe)).count();
            assert!(
                body.contains(&format!("\"count\":{expected}")),
                "seed {seed}: degraded probe count drifted: {body}"
            );
            assert!(
                head.contains("X-Gsb-Degraded:") && body.contains("\"degraded\":"),
                "seed {seed}: corruption served silently: {head} {body}"
            );
        }

        shutdown.request(15);
        let report = handle
            .join()
            .expect("server thread must not panic")
            .expect("server run must not error");
        let parsed = gsb_telemetry::json::parse(&report.metrics_json).expect("metrics parse");
        assert_eq!(
            parsed.u64_or_zero("worker_panics"),
            0,
            "seed {seed}: a worker panicked under chaos"
        );
        if corrupted {
            assert!(
                report.degraded > 0,
                "seed {seed}: degraded probe not counted in the report"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&golden).ok();
}
