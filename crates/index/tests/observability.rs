//! Integration tests for the serving observability stack: the
//! admission-exempt `/metrics` + `/metrics-json` endpoints, trace-id
//! round-trips, and the structured access + slow-query logs.

use gsb_core::{CliqueEnumerator, EnumConfig, ShutdownToken};
use gsb_graph::generators::{planted, Module};
use gsb_index::{CliqueIndex, IndexWriter, ServeConfig, Server};
use gsb_telemetry::access::AccessRecord;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsb_index_obs_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_index(dir: &PathBuf) -> Arc<CliqueIndex> {
    let g = planted(60, 0.08, &[Module::clique(8), Module::clique(5)], 21);
    let enumerator = CliqueEnumerator::new(EnumConfig::default());
    let mut writer = IndexWriter::create(dir, g.n()).expect("create writer");
    enumerator.enumerate(&g, &mut writer);
    writer.finish().expect("finish index");
    Arc::new(CliqueIndex::open(dir).expect("open index"))
}

/// One blocking GET with optional extra headers; returns
/// (status, head, body) with the body length checked.
fn get(addr: SocketAddr, path: &str, extra: &[(&str, &str)]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut req = format!("GET {path} HTTP/1.1\r\nHost: test\r\n");
    for (name, value) in extra {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str("\r\n");
    stream.write_all(req.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .expect("numeric length");
    assert_eq!(body.len(), content_length, "truncated response for {path}");
    (status, head.to_string(), body.to_string())
}

fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines()
        .find_map(|l| l.strip_prefix(&format!("{name}: ")))
        .map(str::trim)
}

fn is_hex16(s: &str) -> bool {
    s.len() == 16 && s.chars().all(|c| c.is_ascii_hexdigit())
}

/// The value of the first sample line starting with `prefix`.
fn sample_value(text: &str, prefix: &str) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn metrics_and_health_stay_answerable_with_a_zero_queue() {
    // queue_limit 0: the admission queue is *always* full, so every
    // connection takes the inline overload path. Probes and scrapes
    // must still be answered in full; queries shed typed 503s. This is
    // the strongest form of the exemption contract — an operator can
    // watch a completely saturated server.
    let dir = tmp("zeroq");
    let index = build_index(&dir);
    let shutdown = ShutdownToken::new();
    let server = Server::bind(
        index,
        "127.0.0.1:0",
        ServeConfig {
            threads: 1,
            queue_limit: 0,
            rate_limit: Some(0.001), // near-zero budget: exemption must also skip the bucket
            rate_burst: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&shutdown).expect("run"))
    };

    // Queries cannot get in at all...
    for path in ["/stats", "/max", "/containing/3"] {
        let (status, head, body) = get(addr, path, &[]);
        assert_eq!(status, 503, "{path}: {body}");
        assert!(header(&head, "Retry-After").is_some(), "{path}: {head}");
    }
    // ...but probes and scrapes answer 200 every time, with trace ids.
    for round in 0..3 {
        let (status, head, _) = get(addr, "/health", &[]);
        assert_eq!(status, 200, "health round {round}");
        let trace = header(&head, "X-Gsb-Trace").expect("traced inline");
        assert!(is_hex16(trace), "generated trace id: {trace:?}");

        let (status, _, body) = get(addr, "/metrics", &[]);
        assert_eq!(status, 200, "metrics round {round}");
        assert!(body.starts_with("# HELP"), "not an exposition: {body:?}");

        let (status, _, body) = get(addr, "/metrics-json", &[]);
        assert_eq!(status, 200, "metrics-json round {round}");
        assert!(
            gsb_telemetry::json::parse(&body).is_ok(),
            "metrics-json must parse: {body:?}"
        );
    }
    // The scrape sees its own shed counters: the three 503s above.
    let (_, _, body) = get(addr, "/metrics", &[]);
    let shed = sample_value(&body, "gsb_http_shed_total{cause=\"queue_full\"}")
        .expect("queue_full shed counter exported");
    assert!(shed >= 3.0, "shed counter: {shed}");

    shutdown.request(15);
    let report = server_thread.join().expect("join");
    assert!(report.shed >= 3, "sheds counted: {}", report.shed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_exposition_is_well_formed_and_counters_advance() {
    let dir = tmp("promtext");
    let index = build_index(&dir);
    let shutdown = ShutdownToken::new();
    let server = Server::bind(index, "127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&shutdown).expect("run"))
    };

    // Drive every endpoint so each family has samples.
    for path in [
        "/health",
        "/stats",
        "/max",
        "/containing/2",
        "/size/3/5",
        "/overlap/1/2",
    ] {
        let (status, _, _) = get(addr, path, &[]);
        assert_eq!(status, 200, "{path}");
    }
    let (status, head, first) = get(addr, "/metrics", &[]);
    assert_eq!(status, 200);
    assert!(
        header(&head, "Content-Type").is_some_and(|ct| ct.starts_with("text/plain; version=0.0.4")),
        "{head}"
    );

    // Every family is declared (HELP then TYPE) before its samples,
    // and sample names extend a declared family name.
    let mut declared: Vec<String> = Vec::new();
    for line in first.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap().to_string();
            assert!(!declared.contains(&name), "family {name} declared twice");
            declared.push(name);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split(' ').next().unwrap();
            assert_eq!(
                declared.last().map(String::as_str),
                Some(name),
                "TYPE right after HELP"
            );
        } else if !line.is_empty() {
            let name: String = line
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == ':')
                .collect();
            assert!(
                declared.iter().any(|d| {
                    name == *d
                        || name == format!("{d}_bucket")
                        || name == format!("{d}_sum")
                        || name == format!("{d}_count")
                }),
                "sample {name} has no declared family"
            );
        }
    }

    // Histogram invariants for one endpoint: cumulative buckets are
    // non-decreasing and the +Inf bucket equals _count.
    let buckets: Vec<f64> = first
        .lines()
        .filter(|l| l.starts_with("gsb_http_request_duration_ns_bucket{endpoint=\"health\""))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(!buckets.is_empty(), "no health histogram buckets");
    for pair in buckets.windows(2) {
        assert!(pair[1] >= pair[0], "buckets not cumulative: {buckets:?}");
    }
    let inf = first
        .lines()
        .find(|l| {
            l.starts_with("gsb_http_request_duration_ns_bucket{endpoint=\"health\"")
                && l.contains("le=\"+Inf\"")
        })
        .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
        .expect("+Inf bucket");
    let count = sample_value(
        &first,
        "gsb_http_request_duration_ns_count{endpoint=\"health\"}",
    )
    .expect("_count sample");
    assert_eq!(inf, count, "+Inf bucket must close the histogram");

    // A second scrape after more traffic: counters only go up, and the
    // scrape endpoint counts itself.
    let (_, _, _) = get(addr, "/stats", &[]);
    let (_, _, second) = get(addr, "/metrics", &[]);
    for (metric, min_delta) in [
        ("gsb_http_requests_total{endpoint=\"stats\"}", 1.0),
        ("gsb_http_requests_total{endpoint=\"metrics\"}", 1.0),
        ("gsb_http_connections_total", 2.0),
    ] {
        let a = sample_value(&first, metric).unwrap_or_else(|| panic!("{metric} in first"));
        let b = sample_value(&second, metric).unwrap_or_else(|| panic!("{metric} in second"));
        assert!(b >= a + min_delta, "{metric} did not advance: {a} -> {b}");
    }
    // Index IO counters made it into the exposition.
    assert!(
        sample_value(&second, "gsb_index_postings_reads_total").is_some_and(|v| v > 0.0),
        "postings reads exported"
    );
    assert!(second.contains("gsb_uptime_seconds"), "uptime gauge");
    assert!(
        second.contains("gsb_index_generation 0"),
        "generation gauge"
    );

    shutdown.request(15);
    server_thread.join().expect("join");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_ids_round_trip_and_land_in_the_access_log() {
    let dir = tmp("tracing");
    let index = build_index(&dir);
    let access_path = dir.join("access.jsonl");
    let slow_path = dir.join("access.jsonl.slow");
    let shutdown = ShutdownToken::new();
    let server = Server::bind(
        index,
        "127.0.0.1:0",
        ServeConfig {
            threads: 2,
            access_log: Some(access_path.clone()),
            // Threshold 0ms: every request is "slow", so the tee is
            // deterministic.
            slow_query_ms: Some(0),
            slow_query_log: Some(slow_path.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&shutdown).expect("run"))
    };

    // Client-supplied ids are honored verbatim...
    let (status, head, _) = get(addr, "/stats", &[("X-Gsb-Trace", "req-42.a_b")]);
    assert_eq!(status, 200);
    assert_eq!(header(&head, "X-Gsb-Trace"), Some("req-42.a_b"));
    let ns: u64 = header(&head, "X-Gsb-Trace-Ns")
        .expect("total ns header")
        .parse()
        .expect("numeric ns");
    assert!(ns > 0);
    // ...absent ones are generated (distinct 16-hex values)...
    let (_, head_a, _) = get(addr, "/max", &[]);
    let (_, head_b, _) = get(addr, "/max", &[]);
    let a = header(&head_a, "X-Gsb-Trace").unwrap();
    let b = header(&head_b, "X-Gsb-Trace").unwrap();
    assert!(is_hex16(a) && is_hex16(b), "{a:?} {b:?}");
    assert_ne!(a, b, "trace ids must be distinct");
    // ...and ids that could smuggle header bytes are replaced.
    let (_, head_bad, _) = get(addr, "/health", &[("X-Gsb-Trace", "bad id !!")]);
    let replaced = header(&head_bad, "X-Gsb-Trace").unwrap();
    assert!(is_hex16(replaced), "invalid id not replaced: {replaced:?}");

    shutdown.request(15);
    server_thread.join().expect("join");

    // Every line parses; the client id round-tripped to disk with the
    // span stages attached.
    let text = std::fs::read_to_string(&access_path).expect("access log written");
    let records: Vec<AccessRecord> = text
        .lines()
        .map(|l| AccessRecord::parse(l).unwrap_or_else(|| panic!("unparseable line: {l:?}")))
        .collect();
    assert!(
        records.len() >= 4,
        "one line per request: {}",
        records.len()
    );
    let stats_rec = records
        .iter()
        .find(|r| r.trace == "req-42.a_b")
        .expect("client trace id logged");
    assert_eq!(stats_rec.endpoint, "stats");
    assert_eq!(stats_rec.status, 200);
    assert!(stats_rec.total_ns > 0);
    assert!(stats_rec.bytes > 0);
    for stage in ["queue", "parse", "admission", "respond"] {
        assert!(
            stats_rec.stages.iter().any(|(name, _)| name == stage),
            "stage {stage} missing: {:?}",
            stats_rec.stages
        );
    }
    // The generated ids from the wire match the logged ones.
    for id in [a, b, replaced] {
        assert!(
            records.iter().any(|r| r.trace == id),
            "trace {id} not in the log"
        );
    }

    // The 0ms threshold put every request in the slow log too, and
    // those lines are ordinary access records.
    let slow_text = std::fs::read_to_string(&slow_path).expect("slow log written");
    assert_eq!(slow_text.lines().count(), records.len());
    for line in slow_text.lines() {
        assert!(AccessRecord::parse(line).is_some(), "slow line: {line:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
