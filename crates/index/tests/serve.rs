//! Concurrent storm test for the query server: 16 client threads
//! hammer an in-process `Server`, every response must be complete and
//! correct, and a shutdown request must drain gracefully — all
//! accepted connections answered, per-endpoint histograms exported.

use gsb_core::{CliqueEnumerator, CollectSink, EnumConfig, ShutdownToken};
use gsb_graph::generators::{planted, Module};
use gsb_index::{CliqueIndex, IndexWriter, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsb_index_serve_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One blocking HTTP GET; returns (status, body).
fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    // Connection: close + Content-Length: the body must be complete.
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .expect("numeric length");
    assert_eq!(body.len(), content_length, "truncated response for {path}");
    (status, body.to_string())
}

#[test]
fn storm_then_graceful_drain() {
    // A graph with known structure: planted cliques guarantee both a
    // deep size histogram and hot postings lists.
    let g = planted(80, 0.08, &[Module::clique(9), Module::clique(6)], 13);
    let dir = tmp("storm");
    let enumerator = CliqueEnumerator::new(EnumConfig::default());
    let mut collect = CollectSink::default();
    enumerator.enumerate(&g, &mut collect);
    let truth = collect.cliques;
    let mut writer = IndexWriter::create(&dir, g.n()).expect("create writer");
    enumerator.enumerate(&g, &mut writer);
    writer.finish().expect("finish index");

    let metrics_path = dir.join("serve_metrics.json");
    let index = Arc::new(CliqueIndex::open(&dir).expect("open index"));
    let shutdown = ShutdownToken::new();
    let server = Server::bind(
        Arc::clone(&index),
        "127.0.0.1:0",
        ServeConfig {
            threads: 8,
            deadline: Duration::from_secs(5),
            metrics_out: Some(metrics_path.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server_thread = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&shutdown).expect("server run"))
    };

    // 16 concurrent clients, each issuing a mixed query workload and
    // verifying every answer against the in-memory truth.
    let truth = Arc::new(truth);
    let clients: Vec<_> = (0..16)
        .map(|c| {
            let truth = Arc::clone(&truth);
            std::thread::spawn(move || {
                for round in 0..20 {
                    let v = ((c * 7 + round * 3) % 80) as u32;
                    let w = ((c * 11 + round * 5) % 80) as u32;

                    let (status, body) = get(addr, &format!("/containing/{v}"));
                    assert_eq!(status, 200);
                    let expected = truth.iter().filter(|cl| cl.contains(&v)).count();
                    assert!(
                        body.contains(&format!("\"count\":{expected}")),
                        "containing({v}): {body}"
                    );

                    let (status, body) = get(addr, &format!("/overlap/{v}/{w}"));
                    assert_eq!(status, 200);
                    let expected = truth
                        .iter()
                        .filter(|cl| cl.contains(&v) && cl.contains(&w))
                        .count();
                    assert!(
                        body.contains(&format!("\"count\":{expected}")),
                        "overlap({v},{w}): {body}"
                    );

                    let (status, body) = get(addr, "/max?limit=1");
                    assert_eq!(status, 200);
                    assert!(body.contains("\"size\":9"), "max: {body}");

                    let (status, body) = get(addr, "/size/3/4?limit=2");
                    assert_eq!(status, 200);
                    let expected = truth
                        .iter()
                        .filter(|cl| (3..=4).contains(&cl.len()))
                        .count();
                    assert!(
                        body.contains(&format!("\"count\":{expected}")),
                        "size: {body}"
                    );

                    let (status, _) = get(addr, "/health");
                    assert_eq!(status, 200);
                }
                // Error paths must answer, not hang or kill a worker.
                let (status, _) = get(addr, "/no/such/endpoint");
                assert_eq!(status, 404);
                let (status, _) = get(addr, "/containing/notanumber");
                assert_eq!(status, 400);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // SIGINT-style drain: request shutdown, the run() call must return
    // with every connection answered and the metrics file in place.
    shutdown.request(2);
    let report = server_thread.join().expect("server thread");
    assert!(
        report.requests >= 16 * 20 * 5,
        "requests: {}",
        report.requests
    );
    assert!(report.connections >= report.requests);

    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    assert_eq!(metrics, report.metrics_json);
    let parsed = gsb_telemetry::json::parse(&metrics).expect("metrics JSON parses");
    assert_eq!(parsed.u64_or_zero("requests"), report.requests);
    let endpoints = parsed.get("endpoints").expect("endpoints object");
    for ep in [
        "containing",
        "overlap",
        "max",
        "size",
        "health",
        "not_found",
    ] {
        let entry = endpoints.get(ep).unwrap_or_else(|| panic!("endpoint {ep}"));
        assert!(entry.u64_or_zero("requests") > 0, "{ep} count");
        assert!(
            entry.u64_or_zero("p99_ns") >= entry.u64_or_zero("p50_ns"),
            "{ep} quantiles ordered"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_waits_for_queued_connections() {
    // Open connections, delay sending the request until after shutdown
    // is requested: the server must still answer them (drain), because
    // they were accepted before the token fired.
    let g = planted(30, 0.1, &[Module::clique(5)], 99);
    let dir = tmp("drain");
    let enumerator = CliqueEnumerator::new(EnumConfig::default());
    let mut writer = IndexWriter::create(&dir, g.n()).expect("create writer");
    enumerator.enumerate(&g, &mut writer);
    writer.finish().expect("finish");

    let index = Arc::new(CliqueIndex::open(&dir).expect("open"));
    let shutdown = ShutdownToken::new();
    let server = Server::bind(
        Arc::clone(&index),
        "127.0.0.1:0",
        ServeConfig {
            threads: 2,
            deadline: Duration::from_secs(5),
            metrics_out: None,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&shutdown).expect("run"))
    };

    // Pre-open sockets; the accept loop will hand them to workers.
    let mut pending: Vec<TcpStream> = (0..4)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    // Give the accept loop time to accept them all.
    std::thread::sleep(Duration::from_millis(100));
    shutdown.request(15);

    // Requests sent *after* the shutdown request still get answers.
    for s in &mut pending {
        write!(s, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read");
        assert!(
            response.contains("200 OK") && response.ends_with("{\"status\":\"ok\"}"),
            "drained connection got: {response:?}"
        );
    }
    let report = server_thread.join().expect("join");
    assert!(report.connections >= 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_reload_swaps_generations_and_survives_a_bad_rebuild() {
    // Serve generation 0, rebuild the index in place (generation 1),
    // and watch the server swap atomically: answers flip to the new
    // clique set without the listener ever going away. Then corrupt
    // the manifest and verify a failed reload keeps the old index.
    let g = planted(40, 0.08, &[Module::clique(6)], 31);
    let dir = tmp("reload");
    let enumerator = CliqueEnumerator::new(EnumConfig::default());
    let mut writer = IndexWriter::create(&dir, g.n()).expect("create writer");
    enumerator.enumerate(&g, &mut writer);
    writer.finish().expect("finish");

    let index = Arc::new(CliqueIndex::open(&dir).expect("open"));
    let shutdown = ShutdownToken::new();
    let server = Server::bind(
        Arc::clone(&index),
        "127.0.0.1:0",
        ServeConfig {
            threads: 2,
            reload_poll: Some(Duration::from_millis(50)),
            index_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&shutdown).expect("run"))
    };

    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"generation\":0"), "{body}");

    // In-place rebuild from a different graph: bigger max clique, and
    // the writer bumps the committed generation to 1.
    let g2 = planted(40, 0.08, &[Module::clique(7), Module::clique(5)], 32);
    let mut writer = IndexWriter::create(&dir, g2.n()).expect("recreate writer");
    enumerator.enumerate(&g2, &mut writer);
    writer.finish().expect("finish rebuild");

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = get(addr, "/stats");
        assert_eq!(status, 200, "server must keep answering during reload");
        if body.contains("\"generation\":1") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "hot reload never happened: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let (status, body) = get(addr, "/max");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"size\":7"),
        "answers not from the new index: {body}"
    );

    // A broken rebuild must not take the server down: corrupt the
    // manifest, give the watcher time to trip over it, and verify the
    // generation-1 index is still the one answering.
    std::fs::write(dir.join("index.meta"), "garbage, not a manifest\n").expect("clobber meta");
    std::thread::sleep(Duration::from_millis(300));
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"generation\":1"),
        "failed reload must keep the old index: {body}"
    );

    shutdown.request(15);
    let report = server_thread.join().expect("join");
    assert!(report.reloads >= 1, "reload not counted");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_under_load_answers_accepted_and_sheds_overflow() {
    // The drain contract under overload: with the admission queue full,
    // a SIGTERM-style shutdown must still answer everything that was
    // accepted, while over-queue connections get a typed 503 +
    // Retry-After rather than a reset — and the whole thing maps to
    // exit 143 at the CLI layer (CliError::Drained, signal 15).
    let g = planted(30, 0.1, &[Module::clique(5)], 7);
    let dir = tmp("overload_drain");
    let enumerator = CliqueEnumerator::new(EnumConfig::default());
    let mut writer = IndexWriter::create(&dir, g.n()).expect("create writer");
    enumerator.enumerate(&g, &mut writer);
    writer.finish().expect("finish");

    let index = Arc::new(CliqueIndex::open(&dir).expect("open"));
    let shutdown = ShutdownToken::new();
    let server = Server::bind(
        Arc::clone(&index),
        "127.0.0.1:0",
        ServeConfig {
            threads: 1,
            queue_limit: 1,
            deadline: Duration::from_secs(5),
            request_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&shutdown).expect("run"))
    };

    let connect = || {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s
    };
    // First connection occupies the single worker (we send nothing yet,
    // the worker blocks reading its header on the request budget).
    let mut held = connect();
    std::thread::sleep(Duration::from_millis(100));
    // Second fills the queue (limit 1).
    let mut queued = connect();
    std::thread::sleep(Duration::from_millis(100));
    // Third finds the queue full: shed inline with a typed 503.
    let mut overflow = connect();
    {
        let mut response = String::new();
        overflow.read_to_string(&mut response).expect("read shed");
        assert!(response.contains("503"), "overflow got: {response:?}");
        // Retry-After scales with queue depth: the queue is full here
        // (depth == limit), so the shed advertises the max backoff.
        assert!(response.contains("Retry-After: 8"), "{response:?}");
        assert!(
            response.contains("admission queue full"),
            "not the queue-full shed: {response:?}"
        );
    }

    // SIGTERM with the queue still full.
    shutdown.request(15);

    // Both accepted connections must still be answered in full.
    for s in [&mut held, &mut queued] {
        write!(s, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read");
        assert!(
            response.contains("200 OK") && response.ends_with("{\"status\":\"ok\"}"),
            "accepted connection dropped during drain: {response:?}"
        );
    }

    let report = server_thread.join().expect("join");
    assert!(report.connections >= 3, "{:?}", report.connections);
    assert!(report.shed >= 1, "queue-full shed not counted");
    std::fs::remove_dir_all(&dir).ok();
}
