//! The clique-based discovery pipeline.

use crate::consensus::consensus;
use crate::kmer::{hamming, kmers, KmerSite};
use gsb_core::sink::CollectSink;
use gsb_core::{CliqueEnumerator, EnumConfig};
use gsb_graph::BitGraph;

/// Parameters of an (l, d) motif search.
#[derive(Clone, Copy, Debug)]
pub struct MotifParams {
    /// Motif width.
    pub l: usize,
    /// Maximum substitutions per planted instance; two instances of one
    /// motif differ by at most `2d`.
    pub d: usize,
    /// Minimum number of *distinct sequences* a clique must span to be
    /// reported (the quorum).
    pub q: usize,
}

/// One discovered motif.
#[derive(Clone, Debug)]
pub struct Motif {
    /// Column-majority consensus of the supporting windows.
    pub consensus: Vec<u8>,
    /// Supporting occurrences, `(sequence, position)`, ascending.
    pub sites: Vec<(usize, usize)>,
}

impl Motif {
    /// Number of distinct sequences supporting the motif.
    pub fn support(&self) -> usize {
        let mut seqs: Vec<usize> = self.sites.iter().map(|&(s, _)| s).collect();
        seqs.sort_unstable();
        seqs.dedup();
        seqs.len()
    }
}

/// Build the l-mer similarity graph: vertices are the returned sites;
/// edges join sites from different sequences within Hamming distance
/// `2d`. (Same-sequence edges are excluded so a clique's size bounds
/// its sequence support tightly and repeats don't self-amplify.)
pub fn build_motif_graph(seqs: &[Vec<u8>], params: &MotifParams) -> (BitGraph, Vec<KmerSite>) {
    let sites = kmers(seqs, params.l);
    let mut g = BitGraph::new(sites.len());
    for i in 0..sites.len() {
        for j in i + 1..sites.len() {
            if sites[i].seq == sites[j].seq {
                continue;
            }
            if hamming(&sites[i].text, &sites[j].text) <= 2 * params.d {
                g.add_edge(i, j);
            }
        }
    }
    (g, sites)
}

/// Discover motifs: maximal cliques of the similarity graph spanning at
/// least `q` distinct sequences, reported with consensus and sites,
/// strongest support first.
pub fn find_motifs(seqs: &[Vec<u8>], params: &MotifParams) -> Vec<Motif> {
    assert!(params.q >= 2, "a motif needs at least two sequences");
    let (g, sites) = build_motif_graph(seqs, params);
    let mut sink = CollectSink::default();
    CliqueEnumerator::new(EnumConfig {
        min_k: params.q,
        ..Default::default()
    })
    .enumerate(&g, &mut sink);
    let mut motifs: Vec<Motif> = sink
        .cliques
        .iter()
        .filter_map(|clique| {
            let members: Vec<&KmerSite> = clique.iter().map(|&v| &sites[v as usize]).collect();
            let mut seq_ids: Vec<usize> = members.iter().map(|s| s.seq).collect();
            seq_ids.sort_unstable();
            seq_ids.dedup();
            if seq_ids.len() < params.q {
                return None;
            }
            let windows: Vec<&[u8]> = members.iter().map(|s| s.text.as_slice()).collect();
            let mut site_list: Vec<(usize, usize)> =
                members.iter().map(|s| (s.seq, s.pos)).collect();
            site_list.sort_unstable();
            Some(Motif {
                consensus: consensus(&windows),
                sites: site_list,
            })
        })
        .collect();
    motifs.sort_by_key(|m| (std::cmp::Reverse(m.support()), m.consensus.clone()));
    motifs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

    /// Plant a mutated copy of `motif` at a random position in each of
    /// `n` random background sequences.
    fn planted_instances(
        n: usize,
        len: usize,
        motif: &[u8],
        d: usize,
        seed: u64,
    ) -> (Vec<Vec<u8>>, Vec<(usize, usize)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for si in 0..n {
            let mut s: Vec<u8> = (0..len).map(|_| BASES[rng.gen_range(0..4)]).collect();
            let pos = rng.gen_range(0..=len - motif.len());
            let mut instance = motif.to_vec();
            // exactly d substitutions at distinct positions
            let mut mutated = std::collections::BTreeSet::new();
            while mutated.len() < d {
                mutated.insert(rng.gen_range(0..motif.len()));
            }
            for &p in &mutated {
                let old = instance[p];
                let mut new = old;
                while new == old {
                    new = BASES[rng.gen_range(0..4)];
                }
                instance[p] = new;
            }
            s[pos..pos + motif.len()].copy_from_slice(&instance);
            seqs.push(s);
            truth.push((si, pos));
        }
        (seqs, truth)
    }

    #[test]
    fn graph_edges_respect_hamming_budget() {
        let seqs = vec![b"ACGTACGT".to_vec(), b"ACGAACGT".to_vec()];
        let params = MotifParams { l: 4, d: 1, q: 2 };
        let (g, sites) = build_motif_graph(&seqs, &params);
        for (u, v) in g.edges() {
            assert_ne!(sites[u].seq, sites[v].seq);
            assert!(hamming(&sites[u].text, &sites[v].text) <= 2);
        }
    }

    #[test]
    fn exact_motif_recovered() {
        let motif = b"TTGACAGCTA";
        let (seqs, truth) = planted_instances(5, 60, motif, 0, 1);
        let found = find_motifs(&seqs, &MotifParams { l: 10, d: 0, q: 5 });
        assert!(!found.is_empty());
        let best = &found[0];
        assert_eq!(best.consensus, motif.to_vec());
        assert_eq!(best.support(), 5);
        for t in &truth {
            assert!(best.sites.contains(t), "missing planted site {t:?}");
        }
    }

    #[test]
    fn mutated_motif_recovered() {
        // classic (10, 1) planted instance across 6 sequences
        let motif = b"GCCGATTACC";
        let (seqs, truth) = planted_instances(6, 50, motif, 1, 7);
        let found = find_motifs(&seqs, &MotifParams { l: 10, d: 1, q: 5 });
        assert!(!found.is_empty(), "no motif found");
        // some reported motif must cover most planted sites
        let hit = found
            .iter()
            .any(|m| truth.iter().filter(|t| m.sites.contains(t)).count() >= 5);
        assert!(hit, "planted sites not recovered: {found:?}");
        // and its consensus should be close to the planted motif
        let best = found
            .iter()
            .max_by_key(|m| truth.iter().filter(|t| m.sites.contains(t)).count())
            .unwrap();
        assert!(
            hamming(&best.consensus, motif) <= 2,
            "consensus {} too far from {}",
            String::from_utf8_lossy(&best.consensus),
            String::from_utf8_lossy(motif)
        );
    }

    #[test]
    fn quorum_filters_weak_cliques() {
        let motif = b"ACGTACGTAC";
        let (mut seqs, _) = planted_instances(3, 40, motif, 0, 3);
        // a fourth sequence with no instance
        let mut rng = StdRng::seed_from_u64(99);
        seqs.push((0..40).map(|_| BASES[rng.gen_range(0..4)]).collect());
        let found = find_motifs(&seqs, &MotifParams { l: 10, d: 0, q: 3 });
        assert!(found.iter().any(|m| m.support() >= 3));
        let found4 = find_motifs(&seqs, &MotifParams { l: 10, d: 0, q: 4 });
        assert!(found4.iter().all(|m| m.support() >= 4), "quorum violated");
    }
}
