//! l-mer extraction and Hamming distance.

/// One l-mer occurrence: which sequence, where, and the window itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KmerSite {
    /// Index of the source sequence.
    pub seq: usize,
    /// Offset of the window within the sequence.
    pub pos: usize,
    /// The window contents (length l).
    pub text: Vec<u8>,
}

/// All length-`l` windows of every sequence, in (sequence, position)
/// order. Sequences shorter than `l` contribute nothing.
pub fn kmers(seqs: &[Vec<u8>], l: usize) -> Vec<KmerSite> {
    assert!(l > 0, "window width must be positive");
    let mut out = Vec::new();
    for (si, s) in seqs.iter().enumerate() {
        for pos in 0..s.len().saturating_sub(l - 1) {
            out.push(KmerSite {
                seq: si,
                pos,
                text: s[pos..pos + l].to_vec(),
            });
        }
    }
    out
}

/// Hamming distance of two equal-length byte strings.
pub fn hamming(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).filter(|&(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmer_extraction() {
        let seqs = vec![b"ACGTA".to_vec(), b"GG".to_vec()];
        let sites = kmers(&seqs, 3);
        assert_eq!(sites.len(), 3); // ACG, CGT, GTA; "GG" too short
        assert_eq!(sites[0].text, b"ACG".to_vec());
        assert_eq!(
            sites[2],
            KmerSite {
                seq: 0,
                pos: 2,
                text: b"GTA".to_vec()
            }
        );
    }

    #[test]
    fn kmer_window_equals_sequence_length() {
        let seqs = vec![b"ACGT".to_vec()];
        let sites = kmers(&seqs, 4);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].text, b"ACGT".to_vec());
    }

    #[test]
    fn hamming_distances() {
        assert_eq!(hamming(b"ACGT", b"ACGT"), 0);
        assert_eq!(hamming(b"ACGT", b"ACGA"), 1);
        assert_eq!(hamming(b"AAAA", b"TTTT"), 4);
        assert_eq!(hamming(b"", b""), 0);
    }

    #[test]
    #[should_panic]
    fn hamming_rejects_length_mismatch() {
        hamming(b"AC", b"ACG");
    }
}
