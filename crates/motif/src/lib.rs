//! # gsb-motif — clique-based cis-regulatory motif discovery
//!
//! The SC'05 paper names "cis regulatory motif finding \[28\]" as a core
//! application of maximal clique enumeration; \[28\] is the authors' own
//! HiCOMB 2004 motif-discovery tool. The method, reproduced here:
//!
//! 1. slide a window of width `l` over every promoter sequence,
//!    collecting all **l-mers** ([`kmers`]);
//! 2. build a graph whose vertices are l-mer occurrences and whose
//!    edges join occurrences from *different* sequences within Hamming
//!    distance `2d` of each other (two instances of one (l, d)-motif
//!    differ by at most 2d substitutions) — [`build_motif_graph`];
//! 3. enumerate maximal cliques spanning at least `q` distinct
//!    sequences ([`find_motifs`]): each is a candidate motif, its
//!    column-majority **consensus** the motif itself.
//!
//! This is the classic (l, d) planted-motif formulation; the tests
//! plant motifs in random backgrounds and recover them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consensus;
pub mod discover;
pub mod kmer;

pub use consensus::consensus;
pub use discover::{build_motif_graph, find_motifs, Motif, MotifParams};
pub use kmer::{hamming, kmers, KmerSite};
