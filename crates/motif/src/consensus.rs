//! Column-majority consensus of a set of aligned l-mers.

/// Majority symbol per column (ties broken by byte order, so the
/// result is deterministic). All inputs must share a length.
pub fn consensus(windows: &[&[u8]]) -> Vec<u8> {
    let Some(first) = windows.first() else {
        return Vec::new();
    };
    let l = first.len();
    let mut out = Vec::with_capacity(l);
    for col in 0..l {
        let mut counts = std::collections::BTreeMap::new();
        for w in windows {
            assert_eq!(w.len(), l, "window length mismatch");
            *counts.entry(w[col]).or_insert(0usize) += 1;
        }
        let (&best, _) = counts
            .iter()
            .max_by_key(|&(&sym, &count)| (count, std::cmp::Reverse(sym)))
            .expect("nonempty");
        out.push(best);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_wins_per_column() {
        let w: Vec<&[u8]> = vec![b"ACGT", b"ACGA", b"ACCT"];
        assert_eq!(consensus(&w), b"ACGT".to_vec());
    }

    #[test]
    fn ties_break_deterministically() {
        let w: Vec<&[u8]> = vec![b"A", b"C"];
        // tie between A and C: smaller byte wins
        assert_eq!(consensus(&w), b"A".to_vec());
    }

    #[test]
    fn empty_input() {
        let w: Vec<&[u8]> = vec![];
        assert!(consensus(&w).is_empty());
    }
}
