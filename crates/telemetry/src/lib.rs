//! # gsb-telemetry — the run-observability spine
//!
//! The paper's headline design choice — enumerating maximal cliques in
//! *non-decreasing size order* — exists so that "a run can be bounded
//! and its progress tracked" (§2). This crate is the tracking half: a
//! zero-dependency event layer every other crate reports into, exported
//! three ways (machine-readable JSON lines, a live stderr progress
//! line, and the `gsb report` renderer).
//!
//! * [`recorder`] — the [`Recorder`] trait:
//!   counters, gauges, and histograms backed by atomics (lock-free on
//!   the hot path once a handle is held) plus span-style timed scopes.
//!   [`NoopRecorder`] compiles away under
//!   monomorphization when telemetry is disabled.
//! * [`json`] — a minimal hand-rolled JSON writer/parser (the offline
//!   build environment stubs external crates, and the record schema is
//!   flat enough not to need one).
//! * [`record`] — [`LevelRecord`]: one consistent
//!   snapshot per level barrier, the unit of the JSON-lines run report,
//!   and [`RunSummary`], the final record.
//! * [`runlog`] — [`RunTelemetry`]: the shared
//!   handle a run threads through the pipeline; owns the JSONL writer,
//!   the cumulative counters, and the live progress line with its
//!   level-growth ETA.
//! * [`report`] — parse a run report back (tolerating a truncated last
//!   line — the file of a crashed run) and render the Fig. 8-style
//!   per-level imbalance table.
//! * [`promtext`] — Prometheus text-format exposition
//!   ([`promtext::PromWriter`]) for the serving tier's live `/metrics`
//!   endpoint.
//! * [`trace`] — request-scoped tracing: seeded
//!   [`trace::TraceIdGen`] trace ids and the per-stage
//!   [`trace::SpanRecorder`].
//! * [`access`] — the JSONL access-log schema
//!   ([`access::AccessRecord`]) shared by the server (writer) and
//!   `gsb tail` (reader), plus the size-capped
//!   [`access::RotatingWriter`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod json;
pub mod promtext;
pub mod record;
pub mod recorder;
pub mod report;
pub mod runlog;
pub mod trace;

pub use access::{AccessRecord, RotatingWriter};
pub use promtext::{PromKind, PromWriter};
pub use record::{LevelRecord, RecordError, RunSummary};
pub use recorder::{AtomicRecorder, Counter, Gauge, Histogram, NoopRecorder, Recorder, TimedScope};
pub use report::{parse_report, render_report, ParsedReport};
pub use runlog::{RunTelemetry, TelemetryConfig};
pub use trace::{SpanRecorder, TraceIdGen};
