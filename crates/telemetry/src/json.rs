//! A minimal JSON writer and parser.
//!
//! The offline build environment stubs out external crates, so the
//! record schema is served by a small hand-rolled implementation:
//! a push-style object/array writer and a recursive-descent parser
//! producing a [`JsonValue`] tree. Covers exactly the JSON subset the
//! run-report schema uses (objects, arrays, strings, numbers, bools,
//! null); numbers parse into `f64` with a lossless `u64` fast path.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number that fits a `u64` without loss.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Key order is not preserved; lookups are by name.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: member as `u64`, defaulting to 0 when absent.
    pub fn u64_or_zero(&self, key: &str) -> u64 {
        self.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
    }

    /// Convenience: member as a `Vec<u64>`, empty when absent.
    pub fn u64_array(&self, key: &str) -> Vec<u64> {
        self.get(key)
            .and_then(JsonValue::as_array)
            .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
            .unwrap_or_default()
    }
}

/// Parse error: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value from `input`. Trailing non-whitespace
/// is an error (each run-report line is exactly one object).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            offset: pos,
            message: "trailing characters",
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8, message: &'static str) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError {
            offset: *pos,
            message,
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError {
            offset: *pos,
            message: "unexpected end of input",
        }),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &'static str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError {
            offset: *pos,
            message: "invalid literal",
        })
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'{', "expected '{'")?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':'")?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => {
                return Err(JsonError {
                    offset: *pos,
                    message: "expected ',' or '}'",
                })
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => {
                return Err(JsonError {
                    offset: *pos,
                    message: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    offset: *pos,
                    message: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or(JsonError {
                    offset: *pos,
                    message: "unterminated escape",
                })?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(JsonError {
                            offset: *pos,
                            message: "truncated \\u escape",
                        })?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError {
                                offset: *pos,
                                message: "invalid \\u escape",
                            })?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => {
                        return Err(JsonError {
                            offset: *pos - 1,
                            message: "invalid escape",
                        })
                    }
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap());
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| JsonError {
            offset: start,
            message: "invalid number",
        })
}

/// Push-style writer for one JSON object on a single line.
///
/// ```
/// use gsb_telemetry::json::ObjectWriter;
/// let mut w = ObjectWriter::new();
/// w.str_field("type", "level").u64_field("k", 3).u64_slice_field("busy", &[1, 2]);
/// assert_eq!(w.finish(), r#"{"type":"level","k":3,"busy":[1,2]}"#);
/// ```
#[derive(Debug)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl Default for ObjectWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectWriter {
    /// Start a new object.
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) -> &mut Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
        self
    }

    /// Append a string field.
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_escaped(&mut self.buf, value);
        self
    }

    /// Append an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Append a float field (finite values only; non-finite become null).
    pub fn f64_field(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Append a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Append an array-of-u64 field.
    pub fn u64_slice_field(&mut self, key: &str, values: &[u64]) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// Close the object and return the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn write_escaped(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_then_parser_round_trips() {
        let mut w = ObjectWriter::new();
        w.str_field("type", "level")
            .u64_field("k", 5)
            .f64_field("ratio", 0.25)
            .bool_field("degraded", false)
            .u64_slice_field("busy_ns", &[10, 20, 30]);
        let line = w.finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("level"));
        assert_eq!(v.u64_or_zero("k"), 5);
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(false));
        assert_eq!(v.u64_array("busy_ns"), vec![10, 20, 30]);
    }

    #[test]
    fn escapes_survive_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let mut w = ObjectWriter::new();
        w.str_field("s", nasty);
        let line = w.finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_truncated_input() {
        assert!(parse(r#"{"k":3"#).is_err());
        assert!(parse(r#"{"k":"#).is_err());
        assert!(parse(r#"{"k"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse(r#"{"k":3} extra"#).is_err());
    }

    #[test]
    fn numbers_parse_uint_fast_path_and_float() {
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(parse("1.5").unwrap().as_f64(), Some(1.5));
        assert_eq!(parse("-2").unwrap().as_f64(), Some(-2.0));
        assert_eq!(parse("2e3").unwrap().as_f64(), Some(2000.0));
    }

    #[test]
    fn nested_arrays_and_objects() {
        let v = parse(r#"{"a":[{"b":1},{"b":2}],"c":null}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].u64_or_zero("b"), 2);
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
    }
}
