//! Prometheus text-format exposition (version 0.0.4), hand-rolled and
//! std-only like the rest of the stack.
//!
//! The serving tier's `GET /metrics` endpoint renders every live
//! [`crate::AtomicRecorder`] series through this module. The format is
//! deliberately tiny — `# HELP` / `# TYPE` comments followed by
//! `name{label="value"} 1234` sample lines — but the rules that make a
//! scrape *valid* are easy to get subtly wrong, so they live here once,
//! tested:
//!
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*` (anything else is
//!   sanitized to `_`, see [`sanitize_metric_name`]);
//! * label values escape `\`, `"`, and newline ([`escape_label_value`]);
//! * `HELP` text escapes `\` and newline ([`escape_help`]);
//! * histograms render as cumulative `_bucket{le="..."}` lines in
//!   ascending `le` order, closed by `le="+Inf"` == `_count`, plus
//!   `_sum` and `_count`;
//! * each metric name declares its `TYPE` exactly once, before its
//!   first sample.
//!
//! [`PromWriter`] enforces the single-declaration and histogram
//! invariants by construction; `scripts/promtext_lint.py` re-checks the
//! rendered text from the outside in CI.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The metric kinds this exposition uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PromKind {
    /// Monotonically non-decreasing.
    Counter,
    /// Goes up and down.
    Gauge,
    /// Cumulative `_bucket`/`_sum`/`_count` family.
    Histogram,
}

impl PromKind {
    fn as_str(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
            PromKind::Histogram => "histogram",
        }
    }
}

/// Sanitize to the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every illegal byte becomes `_`, and a
/// leading digit gets a `_` prefix. Empty input becomes `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `HELP` text: `\` → `\\`, newline → `\n` (quotes are legal).
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Accumulates one exposition document. Metric families must be
/// declared ([`PromWriter::family`]) before their samples; declaring
/// the same name twice is ignored (first declaration wins), so callers
/// can emit label variants from independent loops.
#[derive(Debug, Default)]
pub struct PromWriter {
    buf: String,
    declared: BTreeSet<String>,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare `name` with its type and help text. `name` is sanitized;
    /// the sanitized name is returned for use in sample calls. A second
    /// declaration of the same name is a no-op.
    pub fn family(&mut self, name: &str, kind: PromKind, help: &str) -> String {
        let name = sanitize_metric_name(name);
        if self.declared.insert(name.clone()) {
            let _ = writeln!(self.buf, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(self.buf, "# TYPE {name} {}", kind.as_str());
        }
        name
    }

    /// One integer sample. `labels` render in the given order.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.sample_text(name, labels, &value.to_string());
    }

    /// One float sample (finite values; NaN renders as `NaN` which
    /// Prometheus accepts, so no special-casing).
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.sample_text(name, labels, &format!("{value}"));
    }

    fn sample_text(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        debug_assert!(
            self.declared.contains(name)
                || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                    name.strip_suffix(suffix)
                        .is_some_and(|base| self.declared.contains(base))
                }),
            "sample for undeclared family {name}"
        );
        self.buf.push_str(name);
        if !labels.is_empty() {
            self.buf.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                let _ = write!(
                    self.buf,
                    "{}=\"{}\"",
                    sanitize_metric_name(k),
                    escape_label_value(v)
                );
            }
            self.buf.push('}');
        }
        let _ = writeln!(self.buf, " {value}");
    }

    /// A full histogram family instance: cumulative `(upper_bound,
    /// cumulative_count)` buckets ascending in bound, then the
    /// mandatory `le="+Inf"` bucket equal to `count`, then `_sum` and
    /// `_count`. `name` must have been declared as
    /// [`PromKind::Histogram`]. Bucket counts are clamped to `count` so
    /// a torn concurrent snapshot can never render a non-monotone
    /// series.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        buckets: &[(u64, u64)],
        sum: u64,
        count: u64,
    ) {
        let bucket_name = format!("{name}_bucket");
        let mut prev = 0u64;
        for &(bound, cumulative) in buckets {
            let cumulative = cumulative.clamp(prev, count);
            prev = cumulative;
            let le = bound.to_string();
            let mut with_le = labels.to_vec();
            with_le.push(("le", le.as_str()));
            self.sample_text(&bucket_name, &with_le, &cumulative.to_string());
        }
        let mut with_inf = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.sample_text(&bucket_name, &with_inf, &count.to_string());
        self.sample(&format!("{name}_sum"), labels, sum);
        self.sample(&format!("{name}_count"), labels, count);
    }

    /// The rendered document.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_metric_name("http.max.ns"), "http_max_ns");
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
    }

    #[test]
    fn escapes_label_values_and_help() {
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_help("50% of \\ runs\nok"), "50% of \\\\ runs\\nok");
    }

    #[test]
    fn family_declared_once_and_samples_render() {
        let mut w = PromWriter::new();
        let name = w.family("gsb.http.requests", PromKind::Counter, "requests");
        assert_eq!(name, "gsb_http_requests");
        w.family("gsb.http.requests", PromKind::Counter, "requests again");
        w.sample(&name, &[("endpoint", "max")], 3);
        w.sample(&name, &[("endpoint", "a\"b")], 1);
        let text = w.finish();
        assert_eq!(text.matches("# TYPE gsb_http_requests counter").count(), 1);
        assert!(text.contains("gsb_http_requests{endpoint=\"max\"} 3\n"));
        assert!(text.contains("gsb_http_requests{endpoint=\"a\\\"b\"} 1\n"));
    }

    #[test]
    fn histogram_renders_cumulative_with_inf_closure() {
        let mut w = PromWriter::new();
        let name = w.family("lat_ns", PromKind::Histogram, "latency");
        w.histogram(&name, &[("endpoint", "max")], &[(1, 2), (7, 5)], 99, 6);
        let text = w.finish();
        let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(
            lines,
            vec![
                "lat_ns_bucket{endpoint=\"max\",le=\"1\"} 2",
                "lat_ns_bucket{endpoint=\"max\",le=\"7\"} 5",
                "lat_ns_bucket{endpoint=\"max\",le=\"+Inf\"} 6",
                "lat_ns_sum{endpoint=\"max\"} 99",
                "lat_ns_count{endpoint=\"max\"} 6",
            ]
        );
    }

    #[test]
    fn histogram_clamps_torn_snapshots_monotone() {
        let mut w = PromWriter::new();
        let name = w.family("h", PromKind::Histogram, "h");
        // A racing writer made bucket counts momentarily exceed count
        // and dip: the render clamps to a monotone series ending at
        // count.
        w.histogram(&name, &[], &[(1, 5), (3, 4), (7, 12)], 10, 6);
        let text = w.finish();
        let values: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("h_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(values, vec![5, 5, 6, 6]);
    }
}
