//! Structured JSONL access log: one self-describing line per request,
//! with per-stage span timings flattened into `stage_<name>_ns` keys,
//! plus a size-capped [`RotatingWriter`] that rotates by atomic rename.
//!
//! The schema is shared between the serving tier (which writes it) and
//! `gsb tail` (which reads it), so both live here in `gsb_telemetry`
//! next to the JSON machinery they use. Records round-trip through
//! [`AccessRecord::to_json_line`] / [`AccessRecord::parse`]; unknown
//! keys are ignored on parse so the schema can grow.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::json::{self, JsonValue, ObjectWriter};

/// One access-log line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessRecord {
    /// Milliseconds since the Unix epoch at completion.
    pub ts_ms: u64,
    /// Trace id (client-supplied or server-generated).
    pub trace: String,
    /// Endpoint label (one of the server's `ENDPOINTS` names).
    pub endpoint: String,
    /// HTTP status written to the client.
    pub status: u16,
    /// Shed/degraded cause (`"queue_full"`, `"rate_limited"`,
    /// `"degraded_exact"`, ... ) or empty when none.
    pub cause: String,
    /// Response body bytes.
    pub bytes: u64,
    /// Wall time from span start to log, nanoseconds.
    pub total_ns: u64,
    /// Ordered `(stage, nanoseconds)` pairs from the request span.
    pub stages: Vec<(String, u64)>,
}

impl AccessRecord {
    /// Render as a single JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.u64_field("ts_ms", self.ts_ms);
        w.str_field("trace", &self.trace);
        w.str_field("endpoint", &self.endpoint);
        w.u64_field("status", u64::from(self.status));
        if !self.cause.is_empty() {
            w.str_field("cause", &self.cause);
        }
        w.u64_field("bytes", self.bytes);
        w.u64_field("total_ns", self.total_ns);
        for (stage, ns) in &self.stages {
            w.u64_field(&format!("stage_{stage}_ns"), *ns);
        }
        w.finish()
    }

    /// Parse one JSON line. Stage keys (`stage_<name>_ns`) are
    /// collected in the object's (sorted) key order; unknown keys are
    /// ignored.
    pub fn parse(line: &str) -> Option<AccessRecord> {
        let JsonValue::Object(map) = json::parse(line).ok()? else {
            return None;
        };
        let get_u64 = |key: &str| -> Option<u64> { map.get(key).and_then(JsonValue::as_u64) };
        let get_str = |key: &str| -> Option<String> {
            map.get(key).and_then(JsonValue::as_str).map(String::from)
        };
        let mut stages = Vec::new();
        for (key, value) in &map {
            if let Some(stage) = key
                .strip_prefix("stage_")
                .and_then(|rest| rest.strip_suffix("_ns"))
            {
                if let Some(ns) = value.as_u64() {
                    if !stage.is_empty() {
                        stages.push((stage.to_string(), ns));
                    }
                }
            }
        }
        Some(AccessRecord {
            ts_ms: get_u64("ts_ms")?,
            trace: get_str("trace")?,
            endpoint: get_str("endpoint")?,
            status: get_u64("status")? as u16,
            cause: get_str("cause").unwrap_or_default(),
            bytes: get_u64("bytes").unwrap_or(0),
            total_ns: get_u64("total_ns").unwrap_or(0),
            stages,
        })
    }
}

/// An append-only line writer that rotates by atomic rename when the
/// file would exceed `max_bytes`: the live file moves to `<path>.1`
/// (clobbering any previous `<path>.1`) and a fresh file is opened at
/// `path`. One generation of history is deliberate — the access log is
/// an operational window, not an archive; ship older generations off
/// the box before they rotate away.
#[derive(Debug)]
pub struct RotatingWriter {
    path: PathBuf,
    max_bytes: u64,
    written: u64,
    out: BufWriter<File>,
}

impl RotatingWriter {
    /// Open (appending) the log at `path`, rotating once the file
    /// exceeds `max_bytes`. `max_bytes == 0` disables rotation.
    pub fn open(path: &Path, max_bytes: u64) -> io::Result<RotatingWriter> {
        let out = OpenOptions::new().create(true).append(true).open(path)?;
        let written = out.metadata()?.len();
        Ok(RotatingWriter {
            path: path.to_path_buf(),
            max_bytes,
            written,
            out: BufWriter::new(out),
        })
    }

    /// Append one line (a trailing `\n` is added) and flush, rotating
    /// first if the line would push the file past the cap.
    pub fn append_line(&mut self, line: &str) -> io::Result<()> {
        let incoming = line.len() as u64 + 1;
        if self.max_bytes > 0 && self.written > 0 && self.written + incoming > self.max_bytes {
            self.rotate()?;
        }
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        // Flush per line: the log must be complete at the moment of a
        // crash, and tail -f must see lines promptly.
        self.out.flush()?;
        self.written += incoming;
        Ok(())
    }

    /// The path of the live log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes written to the current generation.
    pub fn written(&self) -> u64 {
        self.written
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.out.flush()?;
        let mut rotated = self.path.as_os_str().to_os_string();
        rotated.push(".1");
        std::fs::rename(&self.path, PathBuf::from(rotated))?;
        let fresh = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        self.out = BufWriter::new(fresh);
        self.written = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> AccessRecord {
        AccessRecord {
            ts_ms: 1_700_000_000_123,
            trace: "ab12cd34ef56ab78".into(),
            endpoint: "containing".into(),
            status: 200,
            cause: String::new(),
            bytes: 512,
            total_ns: 1_234_567,
            stages: vec![
                ("queue".into(), 1000),
                ("parse".into(), 2000),
                ("postings".into(), 3000),
                ("blocks".into(), 4000),
                ("respond".into(), 500),
            ],
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = sample_record();
        let line = rec.to_json_line();
        assert!(!line.contains('\n'));
        let back = AccessRecord::parse(&line).expect("parse");
        assert_eq!(back.ts_ms, rec.ts_ms);
        assert_eq!(back.trace, rec.trace);
        assert_eq!(back.endpoint, rec.endpoint);
        assert_eq!(back.status, rec.status);
        assert_eq!(back.cause, rec.cause);
        assert_eq!(back.bytes, rec.bytes);
        assert_eq!(back.total_ns, rec.total_ns);
        let mut expected = rec.stages.clone();
        expected.sort();
        assert_eq!(back.stages, expected);
    }

    #[test]
    fn cause_field_appears_only_when_set() {
        let mut rec = sample_record();
        assert!(!rec.to_json_line().contains("\"cause\""));
        rec.cause = "queue_full".into();
        rec.status = 503;
        let line = rec.to_json_line();
        assert!(line.contains("\"cause\":\"queue_full\""));
        let back = AccessRecord::parse(&line).unwrap();
        assert_eq!(back.cause, "queue_full");
        assert_eq!(back.status, 503);
    }

    #[test]
    fn parse_rejects_garbage_and_missing_required_keys() {
        assert!(AccessRecord::parse("not json").is_none());
        assert!(AccessRecord::parse("{}").is_none());
        assert!(AccessRecord::parse("{\"ts_ms\":1}").is_none());
        // Unknown keys are tolerated.
        let line =
            "{\"ts_ms\":1,\"trace\":\"t\",\"endpoint\":\"max\",\"status\":200,\"future_key\":true}";
        let rec = AccessRecord::parse(line).unwrap();
        assert_eq!(rec.endpoint, "max");
        assert!(rec.stages.is_empty());
    }

    #[test]
    fn writer_rotates_at_cap_with_atomic_rename() {
        let dir = std::env::temp_dir().join(format!("gsb-access-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(dir.join("access.jsonl.1"));

        let mut w = RotatingWriter::open(&path, 64).unwrap();
        let line = "x".repeat(30); // 31 bytes with newline
        w.append_line(&line).unwrap();
        w.append_line(&line).unwrap(); // 62 bytes, still under cap
        w.append_line(&line).unwrap(); // would hit 93 > 64: rotate first
        assert_eq!(w.written(), 31);

        let rotated = std::fs::read_to_string(dir.join("access.jsonl.1")).unwrap();
        assert_eq!(rotated.lines().count(), 2);
        let live = std::fs::read_to_string(&path).unwrap();
        assert_eq!(live.lines().count(), 1);

        // Re-opening resumes the byte count of the live file.
        drop(w);
        let w2 = RotatingWriter::open(&path, 64).unwrap();
        assert_eq!(w2.written(), 31);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_cap_never_rotates() {
        let dir = std::env::temp_dir().join(format!("gsb-access0-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut w = RotatingWriter::open(&path, 0).unwrap();
        for _ in 0..20 {
            w.append_line(&"y".repeat(100)).unwrap();
        }
        assert!(!dir.join("a.jsonl.1").exists());
        assert_eq!(w.written(), 20 * 101);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
