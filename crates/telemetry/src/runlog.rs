//! [`RunTelemetry`]: the handle one enumeration run threads through
//! the pipeline.
//!
//! It owns the JSON-lines writer (flushed once per level barrier —
//! the checkpoint cut is the natural flush point), the cumulative
//! counters, and the optional live stderr progress line with its
//! level-growth ETA. The handle is shared behind an `Arc` and safe to
//! poke from barrier code; the per-worker hot loops never touch it —
//! they report through plain integers aggregated at the barrier.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::record::{LevelRecord, RunSummary};
use crate::recorder::{AtomicRecorder, Recorder};

/// Where a run's telemetry goes.
#[derive(Clone, Debug, Default)]
pub struct TelemetryConfig {
    /// Write one JSON record per level barrier to this file.
    pub metrics_out: Option<PathBuf>,
    /// Emit a live progress line on stderr at each barrier.
    pub progress: bool,
}

impl TelemetryConfig {
    /// True when neither export is requested.
    pub fn is_off(&self) -> bool {
        self.metrics_out.is_none() && !self.progress
    }
}

struct Eta {
    prev_candidates: u64,
    prev_level_ns: u64,
}

/// Per-run telemetry state. Create once, share via `Arc`, feed a
/// [`LevelRecord`] skeleton at every barrier with
/// [`on_level`](RunTelemetry::on_level), close with
/// [`finish`](RunTelemetry::finish).
pub struct RunTelemetry {
    config: TelemetryConfig,
    recorder: AtomicRecorder,
    writer: Mutex<Option<BufWriter<File>>>,
    eta: Mutex<Eta>,
    start: Instant,
    seq: AtomicU64,
    /// Cumulative maximal cliques, seeded by [`seed_prior`](Self::seed_prior) on resume.
    maximal_total: AtomicU64,
    /// Wall nanoseconds accumulated before this process started (resume).
    prior_wall_ns: AtomicU64,
    levels_done: AtomicU64,
    checkpoints: AtomicU64,
    retries_total: AtomicU64,
    quarantined_total: AtomicU64,
    io_retries_total: AtomicU64,
    /// Checkpoint latency/bytes parked by the barrier for the next record.
    pending_ckpt_ns: AtomicU64,
    pending_ckpt_bytes: AtomicU64,
}

impl std::fmt::Debug for RunTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunTelemetry")
            .field("config", &self.config)
            .field("levels_done", &self.levels_done.load(Ordering::Relaxed))
            .field("maximal_total", &self.maximal_total.load(Ordering::Relaxed))
            .finish()
    }
}

impl RunTelemetry {
    /// Open the metrics file (if configured) and start the run clock.
    pub fn new(config: TelemetryConfig) -> io::Result<RunTelemetry> {
        let writer = match &config.metrics_out {
            Some(path) => Some(BufWriter::new(File::create(path)?)),
            None => None,
        };
        Ok(RunTelemetry {
            config,
            recorder: AtomicRecorder::new(),
            writer: Mutex::new(writer),
            eta: Mutex::new(Eta {
                prev_candidates: 0,
                prev_level_ns: 0,
            }),
            start: Instant::now(),
            seq: AtomicU64::new(0),
            maximal_total: AtomicU64::new(0),
            prior_wall_ns: AtomicU64::new(0),
            levels_done: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            retries_total: AtomicU64::new(0),
            quarantined_total: AtomicU64::new(0),
            io_retries_total: AtomicU64::new(0),
            pending_ckpt_ns: AtomicU64::new(0),
            pending_ckpt_bytes: AtomicU64::new(0),
        })
    }

    /// The named-instrument registry for ad-hoc counters outside the
    /// per-level schema (spill events, watchdog trips, …).
    pub fn recorder(&self) -> &AtomicRecorder {
        &self.recorder
    }

    /// Restore cumulative counters from checkpoint metadata so a
    /// resumed run reports totals, not deltas.
    pub fn seed_prior(&self, cliques_emitted: u64, levels_done: u64, wall_ns: u64) {
        self.maximal_total.store(cliques_emitted, Ordering::Relaxed);
        self.levels_done.store(levels_done, Ordering::Relaxed);
        self.prior_wall_ns.store(wall_ns, Ordering::Relaxed);
    }

    /// Count freshly emitted maximal cliques. The run's sink wrapper
    /// calls this for every emission — seeds, level expansions, and the
    /// degraded out-of-core tail alike — so the cumulative total is
    /// exact no matter which path produced a clique.
    pub fn add_cliques(&self, n: u64) {
        self.maximal_total.fetch_add(n, Ordering::Relaxed);
    }

    /// Cumulative maximal cliques emitted (including resumed progress).
    pub fn cliques_emitted(&self) -> u64 {
        self.maximal_total.load(Ordering::Relaxed)
    }

    /// Level barriers crossed (including resumed progress).
    pub fn levels_completed(&self) -> u64 {
        self.levels_done.load(Ordering::Relaxed)
    }

    /// Wall nanoseconds so far (including resumed time).
    pub fn wall_ns(&self) -> u64 {
        self.prior_wall_ns.load(Ordering::Relaxed) + self.start.elapsed().as_nanos() as u64
    }

    /// Park a checkpoint write's cost; the next [`on_level`](Self::on_level)
    /// folds it into that barrier's record.
    pub fn note_checkpoint(&self, ns: u64, bytes: u64) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.pending_ckpt_ns.store(ns, Ordering::Relaxed);
        self.pending_ckpt_bytes.store(bytes, Ordering::Relaxed);
        self.recorder.observe("checkpoint_write_ns", ns);
        self.recorder.add("checkpoint_bytes", bytes);
    }

    /// Record a worker panic that was retried.
    pub fn note_retry(&self) {
        self.retries_total.fetch_add(1, Ordering::Relaxed);
        self.recorder.add("worker_retries", 1);
    }

    /// Record a spill-to-disk event of `bytes`.
    pub fn note_spill(&self, bytes: u64) {
        self.recorder.add("spill_events", 1);
        self.recorder.add("spill_bytes", bytes);
    }

    /// Record sub-lists skipped into the quarantine sidecar
    /// (degraded-exact mode: the output is missing exactly their
    /// descendants, and the sidecar says which).
    pub fn note_quarantine(&self, n: u64) {
        self.quarantined_total.fetch_add(n, Ordering::Relaxed);
        self.recorder.add("quarantined_sublists", n);
    }

    /// Record transient-I/O retry attempts performed during the run.
    pub fn note_io_retries(&self, n: u64) {
        self.io_retries_total.fetch_add(n, Ordering::Relaxed);
        self.recorder.add("io_retries", n);
    }

    /// Take a level barrier: completes `record`'s cumulative fields,
    /// writes the JSON line (flushed — the barrier is the durability
    /// cut), and repaints the progress line. The caller fills the
    /// per-level fields (`k`, `sublists`, `candidates`,
    /// `maximal_level`, `level_ns`, per-worker vectors, memory,
    /// `transfers`, `retries`, `degraded`) and has already counted the
    /// level's emissions via [`add_cliques`](Self::add_cliques); `seq`,
    /// totals, `wall_ns`, and pending checkpoint costs are filled here.
    pub fn on_level(&self, mut record: LevelRecord) -> io::Result<LevelRecord> {
        record.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        record.maximal_total = self.maximal_total.load(Ordering::Relaxed);
        self.levels_done.fetch_add(1, Ordering::Relaxed);
        record.wall_ns = self.wall_ns();
        record.ckpt_ns = self.pending_ckpt_ns.swap(0, Ordering::Relaxed);
        record.ckpt_bytes = self.pending_ckpt_bytes.swap(0, Ordering::Relaxed);
        self.retries_total
            .fetch_add(record.retries, Ordering::Relaxed);

        self.recorder.add("sublists", record.sublists);
        self.recorder.add("candidates", record.candidates);
        self.recorder.add("and_ops", record.and_ops);
        self.recorder
            .add("maximality_tests", record.maximality_tests);
        self.recorder.observe("level_ns", record.level_ns);

        if let Some(w) = self.writer.lock().unwrap().as_mut() {
            w.write_all(record.to_json().as_bytes())?;
            w.write_all(b"\n")?;
            w.flush()?;
        }
        if self.config.progress {
            let eta = self.eta_text(&record);
            eprintln!(
                "[gsb] level k={} sublists={} candidates={} cliques={} elapsed={:.1}s eta~{}",
                record.k,
                record.sublists,
                record.candidates,
                record.maximal_total,
                record.wall_ns as f64 / 1e9,
                eta,
            );
        }
        Ok(record)
    }

    /// ETA from the level-growth trend: if candidate counts are
    /// decaying by ratio r per level, remaining work is roughly the
    /// geometric tail `level_ns * r / (1 - r)`. When the level is
    /// still growing (r >= 1) the trend gives no bound.
    fn eta_text(&self, record: &LevelRecord) -> String {
        let mut eta = self.eta.lock().unwrap();
        let text = if eta.prev_candidates > 0 && record.candidates > 0 && eta.prev_level_ns > 0 {
            let r = record.candidates as f64 / eta.prev_candidates as f64;
            if r < 1.0 {
                let remaining_ns = record.level_ns.max(eta.prev_level_ns) as f64 * r / (1.0 - r);
                format!("{:.1}s", remaining_ns / 1e9)
            } else {
                "?".to_string()
            }
        } else if record.candidates == 0 {
            "0s".to_string()
        } else {
            "?".to_string()
        };
        eta.prev_candidates = record.candidates;
        eta.prev_level_ns = record.level_ns;
        text
    }

    /// Write the summary record (filling cumulative fields from run
    /// state) and flush/close the metrics file.
    pub fn finish(&self, mut summary: RunSummary) -> io::Result<RunSummary> {
        summary.levels = self.levels_done.load(Ordering::Relaxed);
        summary.maximal_total = self.maximal_total.load(Ordering::Relaxed);
        summary.wall_ns = self.wall_ns();
        summary.checkpoints = self.checkpoints.load(Ordering::Relaxed);
        summary.retries = self.retries_total.load(Ordering::Relaxed);
        summary.quarantined = self.quarantined_total.load(Ordering::Relaxed);
        summary.io_retries = self.io_retries_total.load(Ordering::Relaxed);
        let mut guard = self.writer.lock().unwrap();
        if let Some(w) = guard.as_mut() {
            w.write_all(summary.to_json().as_bytes())?;
            w.write_all(b"\n")?;
            w.flush()?;
        }
        *guard = None;
        if self.config.progress {
            eprintln!(
                "[gsb] done: {} maximal cliques over {} levels in {:.1}s",
                summary.maximal_total,
                summary.levels,
                summary.wall_ns as f64 / 1e9,
            );
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{parse_line, ReportLine};

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "gsb-telemetry-test-{}-{}",
            std::process::id(),
            name
        ));
        p
    }

    #[test]
    fn writes_one_line_per_level_plus_summary() {
        let path = temp_path("lines.jsonl");
        let t = RunTelemetry::new(TelemetryConfig {
            metrics_out: Some(path.clone()),
            progress: false,
        })
        .unwrap();
        for k in 3..6 {
            let rec = LevelRecord {
                k,
                sublists: 10 * k,
                candidates: 100 / k,
                maximal_level: 2,
                level_ns: 1000,
                ..LevelRecord::default()
            };
            t.add_cliques(rec.maximal_level);
            let out = t.on_level(rec).unwrap();
            assert_eq!(out.seq, k - 3);
            assert_eq!(out.maximal_total, 2 * (k - 2));
        }
        let summary = t.finish(RunSummary::default()).unwrap();
        assert_eq!(summary.levels, 3);
        assert_eq!(summary.maximal_total, 6);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines[..3] {
            assert!(matches!(parse_line(line).unwrap(), ReportLine::Level(_)));
        }
        assert!(matches!(
            parse_line(lines[3]).unwrap(),
            ReportLine::Summary(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seed_prior_makes_totals_cumulative() {
        let t = RunTelemetry::new(TelemetryConfig::default()).unwrap();
        t.seed_prior(40, 5, 1_000_000_000);
        t.add_cliques(2);
        let out = t
            .on_level(LevelRecord {
                k: 6,
                maximal_level: 2,
                ..LevelRecord::default()
            })
            .unwrap();
        assert_eq!(out.maximal_total, 42);
        assert_eq!(t.levels_completed(), 6);
        assert!(t.wall_ns() >= 1_000_000_000);
    }

    #[test]
    fn checkpoint_cost_lands_on_next_record_only() {
        let t = RunTelemetry::new(TelemetryConfig::default()).unwrap();
        t.note_checkpoint(5000, 4096);
        let first = t
            .on_level(LevelRecord {
                k: 3,
                ..LevelRecord::default()
            })
            .unwrap();
        assert_eq!((first.ckpt_ns, first.ckpt_bytes), (5000, 4096));
        let second = t
            .on_level(LevelRecord {
                k: 4,
                ..LevelRecord::default()
            })
            .unwrap();
        assert_eq!((second.ckpt_ns, second.ckpt_bytes), (0, 0));
        let summary = t.finish(RunSummary::default()).unwrap();
        assert_eq!(summary.checkpoints, 1);
    }

    #[test]
    fn eta_decays_with_shrinking_levels() {
        let t = RunTelemetry::new(TelemetryConfig::default()).unwrap();
        let r1 = LevelRecord {
            k: 3,
            candidates: 100,
            level_ns: 1_000,
            ..Default::default()
        };
        assert_eq!(t.eta_text(&r1), "?"); // no prior level yet
        let r2 = LevelRecord {
            k: 4,
            candidates: 50,
            level_ns: 1_000,
            ..Default::default()
        };
        // r = 0.5 → remaining ≈ 1000 * 0.5 / 0.5 = 1000 ns
        assert_eq!(t.eta_text(&r2), "0.0s");
        let r3 = LevelRecord {
            k: 5,
            candidates: 80,
            level_ns: 1_000,
            ..Default::default()
        };
        assert_eq!(t.eta_text(&r3), "?"); // growing again: no bound
        let r4 = LevelRecord {
            k: 6,
            candidates: 0,
            level_ns: 1_000,
            ..Default::default()
        };
        assert_eq!(t.eta_text(&r4), "0s"); // nothing left
    }
}
