//! The run-report schema: one [`LevelRecord`] per level barrier, one
//! [`RunSummary`] at the end.
//!
//! Records serialise to single JSON lines (`{"type":"level",...}` /
//! `{"type":"summary",...}`). Parsing ignores unknown keys so old
//! reports stay readable as the schema grows, mirroring how
//! `checkpoint::RunMeta` treats its key=value file.

use crate::json::{parse, JsonValue, ObjectWriter};

/// One consistent telemetry snapshot taken at a level barrier of the
/// level-synchronous enumeration (the checkpoint cut).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LevelRecord {
    /// Record sequence number within the run (0-based, monotone).
    pub seq: u64,
    /// Clique size this level produced candidates for (paper §2.3).
    pub k: u64,
    /// Sub-lists (shared-prefix groups) in the level that was expanded.
    pub sublists: u64,
    /// Candidate (k+1)-cliques produced by this level's expansion.
    pub candidates: u64,
    /// Maximal cliques emitted at this barrier.
    pub maximal_level: u64,
    /// Cumulative maximal cliques emitted so far, including any
    /// progress restored from a checkpoint on resume.
    pub maximal_total: u64,
    /// Wall time this level took, nanoseconds.
    pub level_ns: u64,
    /// Cumulative wall time since run start (including resumed time).
    pub wall_ns: u64,
    /// Bitmap AND operations performed (one per sub-list × tail vertex).
    pub and_ops: u64,
    /// Any-bit maximality tests performed (one per candidate pair).
    pub maximality_tests: u64,
    /// Per-worker busy nanoseconds for this level (empty = sequential).
    pub busy_ns: Vec<u64>,
    /// Per-worker work units (bitmap words touched) for this level.
    pub units: Vec<u64>,
    /// Per-worker task (sub-list) counts for this level.
    pub tasks: Vec<u64>,
    /// Sub-lists that moved between workers at this level: balancer
    /// transfers (barrier scheduler) or successful steals (steal
    /// scheduler) — the unified moved-work count.
    pub transfers: u64,
    /// Per-worker successful steals this level (empty under the
    /// barrier scheduler).
    pub steals: Vec<u64>,
    /// Per-worker nanoseconds spent waiting for stealable work (the
    /// epoch quiescence tail; empty under the barrier scheduler).
    pub idle_ns: Vec<u64>,
    /// Victim scans that found nothing stealable while work was still
    /// in flight (steal scheduler only).
    pub failed_steals: u64,
    /// Memory-watchdog projection for the next level, bytes.
    pub projected_bytes: u64,
    /// Formula-accounted size of the level (paper §3), bytes.
    pub formula_bytes: u64,
    /// Measured heap size of the level, bytes.
    pub heap_bytes: u64,
    /// Checkpoint write latency at this barrier, ns (0 = no checkpoint).
    pub ckpt_ns: u64,
    /// Checkpoint bytes written at this barrier (0 = no checkpoint).
    pub ckpt_bytes: u64,
    /// Worker panics retried while producing this level.
    pub retries: u64,
    /// Whether the run had degraded to out-of-core mode by this level.
    pub degraded: bool,
}

/// Final record of a run: totals the per-level records roll up to.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunSummary {
    /// Number of level barriers crossed.
    pub levels: u64,
    /// Total maximal cliques emitted.
    pub maximal_total: u64,
    /// Total wall time, nanoseconds.
    pub wall_ns: u64,
    /// Level size at which the run degraded to out-of-core, if any.
    pub degraded_at: Option<u64>,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Worker panics retried across the run.
    pub retries: u64,
    /// Sub-lists skipped into the quarantine sidecar (degraded-exact
    /// runs; 0 = every sub-list was enumerated).
    pub quarantined: u64,
    /// Transient-I/O retry attempts performed across the run.
    pub io_retries: u64,
    /// Maximum clique size found (0 = none).
    pub max_clique: u64,
}

/// Error turning a JSON line into a record.
#[derive(Clone, Debug, PartialEq)]
pub enum RecordError {
    /// The line is not valid JSON (truncated lines land here).
    Json(String),
    /// The line parsed but is not a known record type.
    UnknownType(String),
    /// The line parsed but a required field is missing or mistyped.
    Schema(&'static str),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Json(e) => write!(f, "invalid record line: {e}"),
            RecordError::UnknownType(t) => write!(f, "unknown record type {t:?}"),
            RecordError::Schema(field) => write!(f, "record missing field {field:?}"),
        }
    }
}

impl std::error::Error for RecordError {}

/// A line of the run report, as parsed.
#[derive(Clone, Debug, PartialEq)]
pub enum ReportLine {
    /// A per-level record.
    Level(LevelRecord),
    /// The final summary record.
    Summary(RunSummary),
}

impl LevelRecord {
    /// Serialise to one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str_field("type", "level")
            .u64_field("seq", self.seq)
            .u64_field("k", self.k)
            .u64_field("sublists", self.sublists)
            .u64_field("candidates", self.candidates)
            .u64_field("maximal_level", self.maximal_level)
            .u64_field("maximal_total", self.maximal_total)
            .u64_field("level_ns", self.level_ns)
            .u64_field("wall_ns", self.wall_ns)
            .u64_field("and_ops", self.and_ops)
            .u64_field("maximality_tests", self.maximality_tests)
            .u64_slice_field("busy_ns", &self.busy_ns)
            .u64_slice_field("units", &self.units)
            .u64_slice_field("tasks", &self.tasks)
            .u64_field("transfers", self.transfers)
            .u64_slice_field("steals", &self.steals)
            .u64_slice_field("idle_ns", &self.idle_ns)
            .u64_field("failed_steals", self.failed_steals)
            .u64_field("projected_bytes", self.projected_bytes)
            .u64_field("formula_bytes", self.formula_bytes)
            .u64_field("heap_bytes", self.heap_bytes)
            .u64_field("ckpt_ns", self.ckpt_ns)
            .u64_field("ckpt_bytes", self.ckpt_bytes)
            .u64_field("retries", self.retries)
            .bool_field("degraded", self.degraded);
        w.finish()
    }

    fn from_value(v: &JsonValue) -> Result<LevelRecord, RecordError> {
        // `k` is the only field whose absence makes a record useless;
        // everything else defaults to zero so the schema can grow.
        let k = v
            .get("k")
            .and_then(JsonValue::as_u64)
            .ok_or(RecordError::Schema("k"))?;
        Ok(LevelRecord {
            seq: v.u64_or_zero("seq"),
            k,
            sublists: v.u64_or_zero("sublists"),
            candidates: v.u64_or_zero("candidates"),
            maximal_level: v.u64_or_zero("maximal_level"),
            maximal_total: v.u64_or_zero("maximal_total"),
            level_ns: v.u64_or_zero("level_ns"),
            wall_ns: v.u64_or_zero("wall_ns"),
            and_ops: v.u64_or_zero("and_ops"),
            maximality_tests: v.u64_or_zero("maximality_tests"),
            busy_ns: v.u64_array("busy_ns"),
            units: v.u64_array("units"),
            tasks: v.u64_array("tasks"),
            transfers: v.u64_or_zero("transfers"),
            steals: v.u64_array("steals"),
            idle_ns: v.u64_array("idle_ns"),
            failed_steals: v.u64_or_zero("failed_steals"),
            projected_bytes: v.u64_or_zero("projected_bytes"),
            formula_bytes: v.u64_or_zero("formula_bytes"),
            heap_bytes: v.u64_or_zero("heap_bytes"),
            ckpt_ns: v.u64_or_zero("ckpt_ns"),
            ckpt_bytes: v.u64_or_zero("ckpt_bytes"),
            retries: v.u64_or_zero("retries"),
            degraded: v
                .get("degraded")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
        })
    }
}

impl RunSummary {
    /// Serialise to one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str_field("type", "summary")
            .u64_field("levels", self.levels)
            .u64_field("maximal_total", self.maximal_total)
            .u64_field("wall_ns", self.wall_ns);
        if let Some(d) = self.degraded_at {
            w.u64_field("degraded_at", d);
        }
        w.u64_field("checkpoints", self.checkpoints)
            .u64_field("retries", self.retries)
            .u64_field("quarantined", self.quarantined)
            .u64_field("io_retries", self.io_retries)
            .u64_field("max_clique", self.max_clique);
        w.finish()
    }

    fn from_value(v: &JsonValue) -> RunSummary {
        RunSummary {
            levels: v.u64_or_zero("levels"),
            maximal_total: v.u64_or_zero("maximal_total"),
            wall_ns: v.u64_or_zero("wall_ns"),
            degraded_at: v.get("degraded_at").and_then(JsonValue::as_u64),
            checkpoints: v.u64_or_zero("checkpoints"),
            retries: v.u64_or_zero("retries"),
            quarantined: v.u64_or_zero("quarantined"),
            io_retries: v.u64_or_zero("io_retries"),
            max_clique: v.u64_or_zero("max_clique"),
        }
    }
}

/// Parse one line of a run report.
pub fn parse_line(line: &str) -> Result<ReportLine, RecordError> {
    let v = parse(line.trim()).map_err(|e| RecordError::Json(e.to_string()))?;
    match v.get("type").and_then(JsonValue::as_str) {
        Some("level") => LevelRecord::from_value(&v).map(ReportLine::Level),
        Some("summary") => Ok(ReportLine::Summary(RunSummary::from_value(&v))),
        Some(other) => Err(RecordError::UnknownType(other.to_string())),
        None => Err(RecordError::Schema("type")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LevelRecord {
        LevelRecord {
            seq: 2,
            k: 4,
            sublists: 17,
            candidates: 120,
            maximal_level: 3,
            maximal_total: 45,
            level_ns: 1_000_000,
            wall_ns: 5_000_000,
            and_ops: 900,
            maximality_tests: 880,
            busy_ns: vec![400_000, 380_000, 420_000],
            units: vec![100, 90, 110],
            tasks: vec![6, 5, 6],
            transfers: 2,
            steals: vec![0, 2, 1],
            idle_ns: vec![10_000, 0, 5_000],
            failed_steals: 3,
            projected_bytes: 1 << 20,
            formula_bytes: 1 << 19,
            heap_bytes: 1 << 19,
            ckpt_ns: 30_000,
            ckpt_bytes: 4096,
            retries: 0,
            degraded: false,
        }
    }

    #[test]
    fn level_record_round_trips() {
        let rec = sample();
        let line = rec.to_json();
        match parse_line(&line).unwrap() {
            ReportLine::Level(back) => assert_eq!(back, rec),
            other => panic!("expected level, got {other:?}"),
        }
    }

    #[test]
    fn summary_round_trips_with_and_without_degradation() {
        for degraded_at in [None, Some(7)] {
            let s = RunSummary {
                levels: 9,
                maximal_total: 123,
                wall_ns: 42,
                degraded_at,
                checkpoints: 3,
                retries: 1,
                quarantined: 2,
                io_retries: 5,
                max_clique: 11,
            };
            match parse_line(&s.to_json()).unwrap() {
                ReportLine::Summary(back) => assert_eq!(back, s),
                other => panic!("expected summary, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let line = r#"{"type":"level","k":3,"future_field":[1,2,3]}"#;
        match parse_line(line).unwrap() {
            ReportLine::Level(rec) => {
                assert_eq!(rec.k, 3);
                assert_eq!(rec.sublists, 0);
            }
            other => panic!("expected level, got {other:?}"),
        }
    }

    #[test]
    fn truncated_line_is_a_json_error() {
        let full = sample().to_json();
        let cut = &full[..full.len() / 2];
        assert!(matches!(parse_line(cut), Err(RecordError::Json(_))));
    }

    #[test]
    fn missing_type_and_unknown_type_are_rejected() {
        assert_eq!(parse_line(r#"{"k":3}"#), Err(RecordError::Schema("type")));
        assert!(matches!(
            parse_line(r#"{"type":"zebra"}"#),
            Err(RecordError::UnknownType(_))
        ));
    }
}
