//! The event layer: counters, gauges, histograms, timed scopes.
//!
//! Two implementations of one trait:
//!
//! * [`AtomicRecorder`] — named instruments backed by `AtomicU64`.
//!   Looking an instrument up by name takes a short read lock; *using*
//!   a held handle ([`Counter`], [`Gauge`], [`Histogram`]) is a single
//!   relaxed atomic op, so hot loops resolve their handles once and
//!   stay lock-free.
//! * [`NoopRecorder`] — every method is an empty inlinable body. Code
//!   instrumented generically over `R: Recorder` compiles the
//!   telemetry away entirely when handed the no-op.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Sink for telemetry events. Implementations must be cheap and
/// thread-safe: enumeration workers report from the level barrier
/// without coordination.
pub trait Recorder: Send + Sync {
    /// Add `delta` to the named monotonic counter.
    fn add(&self, key: &'static str, delta: u64);

    /// Set the named gauge to `value` (last write wins).
    fn set(&self, key: &'static str, value: u64);

    /// Record one sample into the named histogram.
    fn observe(&self, key: &'static str, value: u64);

    /// Whether events are being retained. Callers may skip building
    /// expensive event payloads when this is `false`.
    fn enabled(&self) -> bool;

    /// Span-style timing: the returned guard records elapsed
    /// nanoseconds into the `key` histogram when dropped.
    fn span(&self, key: &'static str) -> TimedScope<'_>
    where
        Self: Sized,
    {
        TimedScope {
            recorder: if self.enabled() { Some(self) } else { None },
            key,
            start: Instant::now(),
        }
    }
}

/// Guard that reports its lifetime into a histogram on drop.
/// Created by [`Recorder::span`].
pub struct TimedScope<'a> {
    recorder: Option<&'a dyn Recorder>,
    key: &'static str,
    start: Instant,
}

impl TimedScope<'_> {
    /// Nanoseconds since the scope opened (without closing it).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for TimedScope<'_> {
    fn drop(&mut self) {
        if let Some(r) = self.recorder {
            r.observe(self.key, self.start.elapsed().as_nanos() as u64);
        }
    }
}

/// Discards everything. `enabled()` is `false`, so generic callers can
/// skip payload construction; the methods themselves are empty and
/// vanish under inlining.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn add(&self, _key: &'static str, _delta: u64) {}
    #[inline(always)]
    fn set(&self, _key: &'static str, _value: u64) {}
    #[inline(always)]
    fn observe(&self, _key: &'static str, _value: u64) {}
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// A handle to one monotonic counter. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A handle to one gauge (last write wins). Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: bucket `i` counts samples whose
/// value needs `i` significant bits (bucket 0 holds the value 0).
const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free log₂-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    fn observe(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize; // 0 for value 0
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }
}

/// A handle to one histogram. Cloning shares the cells.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.0.observe(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Cumulative bucket snapshot for exposition: `(upper_bound,
    /// cumulative_count)` pairs in ascending bound order, truncated
    /// after the last non-empty bucket (so an idle histogram renders
    /// compactly). Bucket `i` holds values needing `i` significant
    /// bits, so its inclusive upper bound is `0` for `i == 0` and
    /// `2^i - 1` otherwise. The snapshot is taken bucket-by-bucket
    /// without locking; a torn read can momentarily disagree with
    /// [`Histogram::count`], which renderers must clamp for.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let counts: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let last = match counts.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate().take(last + 1) {
            cumulative = cumulative.saturating_add(c);
            let bound = if i == 0 {
                0
            } else {
                (1u64 << (i - 1)).saturating_mul(2).saturating_sub(1)
            };
            out.push((bound, cumulative));
        }
        out
    }

    /// Approximate quantile from the log₂ buckets: returns the upper
    /// bound of the bucket containing the `q`-quantile sample
    /// (`0.0 ..= 1.0`). Coarse by construction — within a factor of two.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i == 0 {
                    0
                } else {
                    (1u64 << (i - 1)).saturating_mul(2) - 1
                };
            }
        }
        u64::MAX
    }
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// A registry of named atomic instruments.
///
/// Name-based [`Recorder`] calls take a read lock to find the cell;
/// for hot paths, resolve a [`Counter`]/[`Gauge`]/[`Histogram`] handle
/// once via [`counter`](AtomicRecorder::counter) & friends and update
/// it lock-free.
#[derive(Default)]
pub struct AtomicRecorder {
    instruments: RwLock<Instruments>,
}

impl std::fmt::Debug for AtomicRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot_counters();
        f.debug_struct("AtomicRecorder")
            .field("counters", &snap)
            .finish()
    }
}

impl AtomicRecorder {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle to the named counter, creating it on first use.
    pub fn counter(&self, key: &'static str) -> Counter {
        if let Some(c) = self.instruments.read().unwrap().counters.get(key) {
            return c.clone();
        }
        let mut w = self.instruments.write().unwrap();
        w.counters.entry(key).or_default().clone()
    }

    /// Handle to the named gauge, creating it on first use.
    pub fn gauge(&self, key: &'static str) -> Gauge {
        if let Some(g) = self.instruments.read().unwrap().gauges.get(key) {
            return g.clone();
        }
        let mut w = self.instruments.write().unwrap();
        w.gauges.entry(key).or_default().clone()
    }

    /// Handle to the named histogram, creating it on first use.
    pub fn histogram(&self, key: &'static str) -> Histogram {
        if let Some(h) = self.instruments.read().unwrap().histograms.get(key) {
            return h.clone();
        }
        let mut w = self.instruments.write().unwrap();
        w.histograms.entry(key).or_default().clone()
    }

    /// Sorted snapshot of every counter's current value.
    pub fn snapshot_counters(&self) -> BTreeMap<&'static str, u64> {
        self.instruments
            .read()
            .unwrap()
            .counters
            .iter()
            .map(|(&k, c)| (k, c.get()))
            .collect()
    }

    /// Sorted snapshot of every gauge's current value.
    pub fn snapshot_gauges(&self) -> BTreeMap<&'static str, u64> {
        self.instruments
            .read()
            .unwrap()
            .gauges
            .iter()
            .map(|(&k, g)| (k, g.get()))
            .collect()
    }

    /// Snapshot of every histogram as `(count, sum, max)`.
    pub fn snapshot_histograms(&self) -> BTreeMap<&'static str, (u64, u64, u64)> {
        self.instruments
            .read()
            .unwrap()
            .histograms
            .iter()
            .map(|(&k, h)| (k, (h.count(), h.sum(), h.max())))
            .collect()
    }

    /// Sorted handles to every registered histogram. Cloned handles
    /// share the live cells, so callers (e.g. the `/metrics` renderer)
    /// can drop the registry lock before reading bucket contents.
    pub fn histogram_handles(&self) -> Vec<(&'static str, Histogram)> {
        self.instruments
            .read()
            .unwrap()
            .histograms
            .iter()
            .map(|(&k, h)| (k, h.clone()))
            .collect()
    }
}

impl Recorder for AtomicRecorder {
    fn add(&self, key: &'static str, delta: u64) {
        self.counter(key).add(delta);
    }

    fn set(&self, key: &'static str, value: u64) {
        self.gauge(key).set(value);
    }

    fn observe(&self, key: &'static str, value: u64) {
        self.histogram(key).observe(value);
    }

    fn enabled(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = AtomicRecorder::new();
        r.add("cliques", 3);
        r.add("cliques", 4);
        r.add("levels", 1);
        assert_eq!(r.counter("cliques").get(), 7);
        let snap = r.snapshot_counters();
        assert_eq!(snap.get("cliques"), Some(&7));
        assert_eq!(snap.get("levels"), Some(&1));
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = AtomicRecorder::new();
        r.set("projected_bytes", 100);
        r.set("projected_bytes", 42);
        assert_eq!(r.gauge("projected_bytes").get(), 42);
    }

    #[test]
    fn histogram_stats() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 201.2).abs() < 1e-9);
        // the 0-quantile bucket bound is exact for 0
        assert_eq!(h.quantile_upper_bound(0.0), 0);
        // the max lives in the [512, 1023] bucket
        assert!(h.quantile_upper_bound(1.0) >= 1000);
        assert_eq!(Histogram::default().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn histogram_empty_edge_cases() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_upper_bound(0.0), 0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        assert_eq!(h.quantile_upper_bound(1.0), 0);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn histogram_single_sample() {
        let h = Histogram::default();
        h.observe(700);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 700);
        assert_eq!(h.max(), 700);
        assert_eq!(h.mean(), 700.0);
        // Every quantile lands in the one occupied bucket [512, 1023].
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_upper_bound(q), 1023, "q={q}");
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last(), Some(&(1023, 1)));
        // All earlier cumulative counts are zero.
        assert!(buckets[..buckets.len() - 1].iter().all(|&(_, c)| c == 0));
    }

    #[test]
    fn histogram_all_samples_one_bucket() {
        let h = Histogram::default();
        for v in [16u64, 20, 25, 31] {
            h.observe(v); // all need 5 significant bits: bucket [16, 31]
        }
        assert_eq!(h.quantile_upper_bound(0.01), 31);
        assert_eq!(h.quantile_upper_bound(0.5), 31);
        assert_eq!(h.quantile_upper_bound(1.0), 31);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last(), Some(&(31, 4)));
        assert_eq!(buckets.iter().filter(|&&(_, c)| c > 0).count(), 1);
    }

    #[test]
    fn histogram_sum_overflow_wraps_but_count_and_quantiles_survive() {
        let h = Histogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        h.observe(3);
        // fetch_add wraps on overflow: sum is meaningless past u64::MAX
        // but must not panic, and count/max/quantiles stay correct.
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX.wrapping_add(u64::MAX).wrapping_add(3));
        assert_eq!(h.quantile_upper_bound(0.01), 3);
        assert!(h.quantile_upper_bound(1.0) > 1u64 << 62);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().map(|&(_, c)| c), Some(3));
    }

    #[test]
    fn histogram_handles_enumerate_shared_cells() {
        let r = AtomicRecorder::new();
        r.observe("a_ns", 5);
        r.observe("b_ns", 9);
        let handles = r.histogram_handles();
        let names: Vec<&str> = handles.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["a_ns", "b_ns"]);
        // The handle shares cells with the registry: later observes are
        // visible through the already-returned handle.
        r.observe("a_ns", 6);
        assert_eq!(handles[0].1.count(), 2);
    }

    #[test]
    fn handles_are_lock_free_shared_cells() {
        let r = AtomicRecorder::new();
        let c = r.counter("shared");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("shared").get(), 4000);
    }

    #[test]
    fn noop_disables_and_discards() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.add("x", 1);
        r.set("x", 1);
        r.observe("x", 1);
        // span on a noop records nothing and must not panic
        drop(r.span("x"));
    }

    #[test]
    fn spans_record_elapsed_into_histogram() {
        let r = AtomicRecorder::new();
        {
            let s = r.span("barrier_ns");
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(s.elapsed_ns() > 0);
        }
        let h = r.histogram("barrier_ns");
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000_000, "2ms sleep recorded {} ns", h.sum());
    }
}
