//! Parse a JSON-lines run report back and render it for humans:
//! a per-level summary table and the Fig. 8-style worker-imbalance
//! table (stddev/mean of per-worker busy time, as the paper uses to
//! evaluate its dynamic load balancer).
//!
//! Parsing tolerates a truncated final line — the natural shape of
//! the report file of a run that crashed mid-write — and reports it
//! in [`ParsedReport::truncated`] instead of failing.

use crate::record::{parse_line, LevelRecord, RecordError, ReportLine, RunSummary};

/// A parsed run report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedReport {
    /// Per-level records in file order.
    pub levels: Vec<LevelRecord>,
    /// The final summary record, if the run got far enough to write it.
    pub summary: Option<RunSummary>,
    /// Whether the last line was damaged (truncated mid-record) and
    /// dropped.
    pub truncated: bool,
}

impl ParsedReport {
    /// Total maximal cliques: from the summary if present, else from
    /// the last level's cumulative counter.
    pub fn total_maximal(&self) -> u64 {
        self.summary
            .as_ref()
            .map(|s| s.maximal_total)
            .or_else(|| self.levels.last().map(|l| l.maximal_total))
            .unwrap_or(0)
    }
}

/// Parse report text (the contents of a `--metrics-out` file).
///
/// A damaged *final* line is tolerated (crash mid-write) and flagged
/// via [`ParsedReport::truncated`]; a damaged line anywhere else is a
/// real error.
pub fn parse_report(text: &str) -> Result<ParsedReport, RecordError> {
    let mut report = ParsedReport::default();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    for (i, line) in lines.iter().enumerate() {
        match parse_line(line) {
            Ok(ReportLine::Level(rec)) => report.levels.push(rec),
            Ok(ReportLine::Summary(s)) => report.summary = Some(s),
            Err(RecordError::Json(_)) if i + 1 == lines.len() => {
                report.truncated = true;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(report)
}

fn mean(values: &[u64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
    }
}

fn stddev(values: &[u64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Relative imbalance stddev/mean as a percentage; 0 when mean is 0.
fn imbalance_pct(values: &[u64]) -> f64 {
    let m = mean(values);
    if m == 0.0 {
        0.0
    } else {
        100.0 * stddev(values) / m
    }
}

/// Humanize nanoseconds (`1.5ms`, `2.00s`, ...). Public because the
/// serving-side `gsb tail` analyzer renders the same units.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Humanize bytes (`1.5KiB`, `2.00GiB`, ...).
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: u64 = 1024;
    if bytes >= KIB * KIB * KIB {
        format!("{:.2}GiB", bytes as f64 / (KIB * KIB * KIB) as f64)
    } else if bytes >= KIB * KIB {
        format!("{:.1}MiB", bytes as f64 / (KIB * KIB) as f64)
    } else if bytes >= KIB {
        format!("{:.1}KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes}B")
    }
}

/// Right-align cells into fixed columns. Shared by the run-report
/// renderer and the `gsb tail` access-log analyzer, so enumeration and
/// serving keep one table style.
#[derive(Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (extra cells beyond the header are dropped).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render the table (header, rule, rows) into `out`.
    pub fn render(&self, out: &mut String) {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let push_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                for _ in 0..widths[i].saturating_sub(cell.len()) {
                    out.push(' ');
                }
                out.push_str(cell);
            }
            out.push('\n');
        };
        push_row(out, &self.header);
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        push_row(out, &rule);
        for row in &self.rows {
            push_row(out, row);
        }
    }
}

/// Render the per-level summary table and the Fig. 8 imbalance table.
pub fn render_report(report: &ParsedReport) -> String {
    let mut out = String::new();
    out.push_str("Per-level summary\n");
    let mut table = TextTable::new(&[
        "k",
        "sublists",
        "candidates",
        "maximal",
        "total",
        "level",
        "busy mean",
        "stddev",
        "imb%",
        "xfer",
        "ckpt",
    ]);
    for rec in &report.levels {
        let ckpt = if rec.ckpt_bytes > 0 {
            format!("{}/{}", fmt_ns(rec.ckpt_ns), fmt_bytes(rec.ckpt_bytes))
        } else {
            "-".to_string()
        };
        table.row(vec![
            format!("{}{}", rec.k, if rec.degraded { "*" } else { "" }),
            rec.sublists.to_string(),
            rec.candidates.to_string(),
            rec.maximal_level.to_string(),
            rec.maximal_total.to_string(),
            fmt_ns(rec.level_ns),
            fmt_ns(mean(&rec.busy_ns) as u64),
            fmt_ns(stddev(&rec.busy_ns) as u64),
            format!("{:.1}", imbalance_pct(&rec.busy_ns)),
            rec.transfers.to_string(),
            ckpt,
        ]);
    }
    table.render(&mut out);
    if report.levels.iter().any(|r| r.degraded) {
        out.push_str("(* = level ran in degraded out-of-core mode)\n");
    }

    // Fig. 8 view: total busy time per worker across the whole run.
    let workers = report
        .levels
        .iter()
        .map(|r| r.busy_ns.len())
        .max()
        .unwrap_or(0);
    if workers > 1 {
        let mut totals = vec![0u64; workers];
        for rec in &report.levels {
            for (i, &ns) in rec.busy_ns.iter().enumerate() {
                totals[i] += ns;
            }
        }
        out.push_str("\nWorker imbalance (Fig. 8)\n");
        let mut wt = TextTable::new(&["worker", "busy", "rel"]);
        let m = mean(&totals);
        for (i, &t) in totals.iter().enumerate() {
            let rel = if m == 0.0 { 0.0 } else { t as f64 / m };
            wt.row(vec![i.to_string(), fmt_ns(t), format!("{rel:.2}")]);
        }
        wt.render(&mut out);
        out.push_str(&format!(
            "mean {}  stddev {}  imbalance {:.1}%\n",
            fmt_ns(m as u64),
            fmt_ns(stddev(&totals) as u64),
            imbalance_pct(&totals),
        ));
    }

    // Steal balance: where the work-stealing scheduler moved work and
    // how long workers sat idle waiting for something to steal. Only
    // rendered for runs that recorded steal counters.
    if report.levels.iter().any(|r| !r.steals.is_empty()) {
        let workers = report
            .levels
            .iter()
            .map(|r| r.busy_ns.len().max(r.steals.len()).max(r.idle_ns.len()))
            .max()
            .unwrap_or(0);
        let mut steals = vec![0u64; workers];
        let mut idle = vec![0u64; workers];
        let mut busy = vec![0u64; workers];
        let mut failed = 0u64;
        for rec in &report.levels {
            for (i, &s) in rec.steals.iter().enumerate() {
                steals[i] += s;
            }
            for (i, &ns) in rec.idle_ns.iter().enumerate() {
                idle[i] += ns;
            }
            for (i, &ns) in rec.busy_ns.iter().enumerate() {
                busy[i] += ns;
            }
            failed += rec.failed_steals;
        }
        out.push_str("\nSteal balance\n");
        let mut st = TextTable::new(&["worker", "steals", "idle", "idle%"]);
        for i in 0..workers {
            let span = busy[i] + idle[i];
            let pct = if span == 0 {
                0.0
            } else {
                100.0 * idle[i] as f64 / span as f64
            };
            st.row(vec![
                i.to_string(),
                steals[i].to_string(),
                fmt_ns(idle[i]),
                format!("{pct:.1}"),
            ]);
        }
        st.render(&mut out);
        out.push_str(&format!(
            "total steals {}  failed steal scans {}\n",
            steals.iter().sum::<u64>(),
            failed,
        ));
    }

    if let Some(s) = &report.summary {
        out.push_str(&format!(
            "\nTotals: {} maximal cliques, {} levels, wall {}",
            s.maximal_total,
            s.levels,
            fmt_ns(s.wall_ns),
        ));
        if s.max_clique > 0 {
            out.push_str(&format!(", maximum clique {}", s.max_clique));
        }
        if s.checkpoints > 0 {
            out.push_str(&format!(", {} checkpoints", s.checkpoints));
        }
        if s.retries > 0 {
            out.push_str(&format!(", {} worker retries", s.retries));
        }
        if s.io_retries > 0 {
            out.push_str(&format!(", {} I/O retries", s.io_retries));
        }
        if let Some(k) = s.degraded_at {
            out.push_str(&format!(", degraded at k={k}"));
        }
        out.push('\n');
        if s.quarantined > 0 {
            out.push_str(&format!(
                "warning: {} sub-list(s) quarantined — output is exact except \
                 descendants of the prefixes in quarantine.jsonl\n",
                s.quarantined,
            ));
        }
    } else {
        out.push_str(&format!(
            "\nNo summary record (run did not finish cleanly); last cumulative total: {}\n",
            report.total_maximal(),
        ));
    }
    if report.truncated {
        out.push_str("warning: last line was truncated and dropped\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(k: u64, busy: &[u64], maximal: u64, total: u64) -> LevelRecord {
        LevelRecord {
            k,
            sublists: k * 3,
            candidates: 100 - k,
            maximal_level: maximal,
            maximal_total: total,
            level_ns: 1_500_000,
            busy_ns: busy.to_vec(),
            ..LevelRecord::default()
        }
    }

    fn sample_text() -> String {
        let mut text = String::new();
        text.push_str(&level(3, &[100, 200], 2, 2).to_json());
        text.push('\n');
        text.push_str(&level(4, &[150, 150], 5, 7).to_json());
        text.push('\n');
        let s = RunSummary {
            levels: 2,
            maximal_total: 7,
            wall_ns: 3_000_000,
            max_clique: 5,
            ..RunSummary::default()
        };
        text.push_str(&s.to_json());
        text.push('\n');
        text
    }

    #[test]
    fn parses_full_report() {
        let report = parse_report(&sample_text()).unwrap();
        assert_eq!(report.levels.len(), 2);
        assert_eq!(report.summary.as_ref().unwrap().maximal_total, 7);
        assert!(!report.truncated);
        assert_eq!(report.total_maximal(), 7);
    }

    #[test]
    fn tolerates_truncated_last_line() {
        let full = sample_text();
        // Cut mid-way through the final (summary) record.
        let cut = &full[..full.len() - 20];
        let report = parse_report(cut).unwrap();
        assert_eq!(report.levels.len(), 2);
        assert!(report.summary.is_none());
        assert!(report.truncated);
        // Falls back to the last level's cumulative counter.
        assert_eq!(report.total_maximal(), 7);
    }

    #[test]
    fn rejects_damage_before_the_last_line() {
        let mut text = String::from("{\"type\":\"level\",\"k\":3");
        text.push('\n');
        text.push_str(&level(4, &[1], 1, 1).to_json());
        text.push('\n');
        assert!(parse_report(&text).is_err());
    }

    #[test]
    fn render_includes_imbalance_and_totals() {
        let report = parse_report(&sample_text()).unwrap();
        let text = render_report(&report);
        assert!(text.contains("Per-level summary"));
        assert!(text.contains("Worker imbalance (Fig. 8)"));
        assert!(text.contains("7 maximal cliques"));
        assert!(text.contains("maximum clique 5"));
        // Level 3 busy [100, 200]: mean 150, stddev 50, imbalance 33.3%
        assert!(text.contains("33.3"), "missing imbalance row in:\n{text}");
    }

    #[test]
    fn render_includes_steal_balance_when_recorded() {
        let mut rec = level(3, &[900, 100], 2, 2);
        rec.steals = vec![0, 4];
        rec.idle_ns = vec![100, 900];
        rec.failed_steals = 7;
        rec.transfers = 4;
        let mut text = String::new();
        text.push_str(&rec.to_json());
        text.push('\n');
        let report = parse_report(&text).unwrap();
        let rendered = render_report(&report);
        assert!(rendered.contains("Steal balance"), "in:\n{rendered}");
        assert!(
            rendered.contains("total steals 4  failed steal scans 7"),
            "in:\n{rendered}"
        );
        // Worker 1: idle 900 of span 100+900 => 90.0%
        assert!(rendered.contains("90.0"), "in:\n{rendered}");
    }

    #[test]
    fn render_omits_steal_balance_for_barrier_runs() {
        let report = parse_report(&sample_text()).unwrap();
        assert!(!render_report(&report).contains("Steal balance"));
    }

    #[test]
    fn render_without_workers_or_summary() {
        let mut text = String::new();
        text.push_str(&level(3, &[], 1, 1).to_json());
        text.push('\n');
        let report = parse_report(&text).unwrap();
        let rendered = render_report(&report);
        assert!(!rendered.contains("Fig. 8"));
        assert!(rendered.contains("did not finish cleanly"));
        assert!(rendered.contains("last cumulative total: 1"));
    }

    #[test]
    fn empty_file_parses_to_empty_report() {
        let report = parse_report("").unwrap();
        assert!(report.levels.is_empty());
        assert!(report.summary.is_none());
        assert_eq!(report.total_maximal(), 0);
    }
}
