//! Request-scoped tracing: trace ids and per-stage span timing.
//!
//! One request through the serving tier crosses several very different
//! regimes — queue wait under admission control, header parsing against
//! slow clients, postings intersection, block fetch (cache hit or CRC +
//! decode), response write — and an aggregate latency histogram cannot
//! say *which* regime made an outlier slow. A [`SpanRecorder`] is the
//! cheap alternative to a tracing framework: a trace id plus an ordered
//! list of `(stage, nanoseconds)` pairs, built with two `Instant`
//! reads per stage and no allocation beyond the stage vector.
//!
//! Trace ids come from the client (`X-Gsb-Trace` request header, so a
//! caller can follow its request through a router fan-out later) or
//! from [`TraceIdGen`] — a seeded xorshift64* generator, deterministic
//! per server instance like every other seeded component in this repo.

use std::time::Instant;

/// Maximum accepted length of a client-supplied trace id.
pub const MAX_TRACE_ID_LEN: usize = 64;

/// Is `id` acceptable as a client-supplied trace id? Bounded length,
/// ASCII alphanumerics plus `._-` only — it is echoed into a response
/// header and the access log, so the alphabet is deliberately tight
/// (no CR/LF header injection, no JSON escaping surprises).
pub fn valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_TRACE_ID_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Deterministic trace-id generator (xorshift64*), seeded once per
/// server. Ids are 16 lowercase hex chars.
#[derive(Clone, Debug)]
pub struct TraceIdGen {
    state: u64,
}

impl TraceIdGen {
    /// Seeded generator; a zero seed is remapped (xorshift fixpoint).
    pub fn seeded(seed: u64) -> Self {
        // SplitMix64 scramble so nearby seeds do not yield nearby ids.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        TraceIdGen {
            state: if z == 0 { 0x6A09_E667_F3BC_C909 } else { z },
        }
    }

    /// The next trace id.
    pub fn next_id(&mut self) -> String {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        let value = self.state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        format!("{value:016x}")
    }
}

/// A lightweight request span: a trace id and ordered stage timings.
#[derive(Clone, Debug)]
pub struct SpanRecorder {
    trace_id: String,
    started: Instant,
    last: Instant,
    stages: Vec<(&'static str, u64)>,
}

impl SpanRecorder {
    /// Open a span now.
    pub fn new(trace_id: String) -> Self {
        Self::started_at(trace_id, Instant::now())
    }

    /// Open a span whose clock started earlier (e.g. at `accept`), so
    /// the first [`SpanRecorder::stage`] covers time already spent.
    pub fn started_at(trace_id: String, started: Instant) -> Self {
        SpanRecorder {
            trace_id,
            started,
            last: started,
            stages: Vec::with_capacity(8),
        }
    }

    /// The trace id.
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Replace the trace id (it is often only known after the request
    /// header is parsed, mid-span).
    pub fn set_trace_id(&mut self, trace_id: String) {
        self.trace_id = trace_id;
    }

    /// Close the current stage: records the nanoseconds since the
    /// previous stage boundary (or span start) under `name`.
    pub fn stage(&mut self, name: &'static str) {
        let now = Instant::now();
        let ns = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        self.stages.push((name, ns));
    }

    /// Record an explicitly measured stage without moving the stage
    /// boundary (for durations measured elsewhere, e.g. inside the
    /// index reader).
    pub fn record(&mut self, name: &'static str, ns: u64) {
        self.stages.push((name, ns));
    }

    /// Total nanoseconds since the span started.
    pub fn total_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// The recorded stages in order.
    pub fn stages(&self) -> &[(&'static str, u64)] {
        &self.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_hex_and_seed_sensitive() {
        let mut a = TraceIdGen::seeded(7);
        let mut b = TraceIdGen::seeded(7);
        let mut c = TraceIdGen::seeded(8);
        let id1 = a.next_id();
        assert_eq!(id1, b.next_id());
        assert_ne!(id1, c.next_id());
        assert_ne!(id1, a.next_id());
        assert_eq!(id1.len(), 16);
        assert!(id1.bytes().all(|b| b.is_ascii_hexdigit()));
        assert!(valid_trace_id(&id1));
    }

    #[test]
    fn zero_seed_still_generates() {
        let mut g = TraceIdGen::seeded(0);
        assert_ne!(g.next_id(), g.next_id());
    }

    #[test]
    fn trace_id_validation_is_strict() {
        assert!(valid_trace_id("abc-123.DEF_x"));
        assert!(!valid_trace_id(""));
        assert!(!valid_trace_id("has space"));
        assert!(!valid_trace_id("crlf\r\ninject"));
        assert!(!valid_trace_id("quote\"y"));
        assert!(!valid_trace_id(&"a".repeat(MAX_TRACE_ID_LEN + 1)));
        assert!(valid_trace_id(&"a".repeat(MAX_TRACE_ID_LEN)));
    }

    #[test]
    fn span_records_ordered_stages_and_total() {
        let mut span = SpanRecorder::new("t1".into());
        std::thread::sleep(std::time::Duration::from_millis(1));
        span.stage("parse");
        span.record("blocks", 42);
        std::thread::sleep(std::time::Duration::from_millis(1));
        span.stage("respond");
        let names: Vec<&str> = span.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["parse", "blocks", "respond"]);
        assert!(span.stages()[0].1 >= 1_000_000);
        assert_eq!(span.stages()[1].1, 42);
        assert!(span.total_ns() >= 2_000_000);
        assert_eq!(span.trace_id(), "t1");
    }

    #[test]
    fn started_at_backdates_the_first_stage() {
        let early = Instant::now() - std::time::Duration::from_millis(5);
        let mut span = SpanRecorder::started_at("t2".into(), early);
        span.stage("queue");
        assert!(span.stages()[0].1 >= 5_000_000, "{:?}", span.stages());
        assert!(span.total_ns() >= 5_000_000);
    }
}
