//! # gsb-cli — command-line front end for the SC'05 clique framework
//!
//! Subcommands (see [`run`] and `gsb help`):
//!
//! * `generate` — synthesize G(n,p), planted-module, or correlation-like
//!   graphs to an edge-list/DIMACS file;
//! * `stats` — profile a graph file (n, m, density, degrees, triangles);
//! * `cliques` — enumerate maximal cliques in non-decreasing size order,
//!   with `Init_K`/max bounds, threads, optional disk spill, and
//!   telemetry export (`--metrics-out`, `--progress`);
//! * `report` — render a `--metrics-out` run log as per-level and
//!   worker-imbalance tables;
//! * `maxclique` — exact maximum clique (direct B&B or the FPT
//!   vertex-cover route);
//! * `vc` — minimum vertex cover / decision;
//! * `fvs` — minimum feedback vertex set;
//! * `convert` — translate between edge-list and DIMACS by extension.
//!
//! Everything returns its report as a `String`, so the whole surface is
//! unit-testable without spawning processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use args::ArgError;
use std::fmt;

/// Top-level CLI errors.
#[derive(Debug)]
pub enum CliError {
    /// No subcommand / unknown subcommand.
    Usage(String),
    /// Argument parsing or validation failed.
    Args(ArgError),
    /// File I/O failed.
    Io(std::io::Error),
    /// Graph file was malformed.
    Parse(gsb_graph::io::ParseError),
    /// Checkpoint/spill storage failed or is corrupt.
    Store(gsb_core::StoreError),
    /// The enumeration runtime failed (worker panics, nothing to
    /// resume, ...).
    Runtime(String),
    /// A graceful shutdown on this signal: the run stopped at a level
    /// barrier with a final checkpoint, ready for `gsb resume`.
    Interrupted(i32),
    /// A graceful server shutdown on this signal: `gsb serve` stopped
    /// accepting, answered every in-flight and queued connection, and
    /// exited clean.
    Drained {
        /// The signal that requested shutdown (2 = SIGINT, 15 = SIGTERM).
        signal: i32,
        /// Connections accepted over the server's lifetime.
        connections: u64,
        /// Requests answered over the server's lifetime.
        requests: u64,
    },
}

impl CliError {
    /// Process exit code: 2 for usage/argument mistakes (the operator
    /// should fix the command line), 1 for runtime failures, and the
    /// conventional `128 + signal` (130 = SIGINT, 143 = SIGTERM) for a
    /// signal-requested graceful shutdown.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) | CliError::Args(_) => 2,
            CliError::Io(_) | CliError::Parse(_) | CliError::Store(_) | CliError::Runtime(_) => 1,
            CliError::Interrupted(signal) => 128 + signal,
            CliError::Drained { signal, .. } => 128 + signal,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Parse(e) => write!(f, "parse error: {e}"),
            CliError::Store(e) => write!(f, "storage error: {e}"),
            CliError::Runtime(msg) => write!(f, "runtime error: {msg}"),
            CliError::Interrupted(signal) => write!(
                f,
                "interrupted by signal {signal}; checkpoint saved — continue with `gsb resume`"
            ),
            CliError::Drained {
                signal,
                connections,
                requests,
            } => write!(
                f,
                "shutdown on signal {signal}: drained {connections} connection(s), \
                 {requests} request(s) answered, none truncated"
            ),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<gsb_graph::io::ParseError> for CliError {
    fn from(e: gsb_graph::io::ParseError) -> Self {
        CliError::Parse(e)
    }
}

impl From<gsb_core::StoreError> for CliError {
    fn from(e: gsb_core::StoreError) -> Self {
        CliError::Store(e)
    }
}

impl From<gsb_core::PipelineError> for CliError {
    fn from(e: gsb_core::PipelineError) -> Self {
        match e {
            gsb_core::PipelineError::Store(e) => CliError::Store(e),
            gsb_core::PipelineError::Interrupted { signal } => CliError::Interrupted(signal),
            other => CliError::Runtime(other.to_string()),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
gsb — genome-scale clique analysis (SC'05 framework)

USAGE:
  gsb generate --kind gnp|planted|correlation --n N [--p P] [--density D]
               [--modules 9,7,5] [--seed S] --out FILE
  gsb stats FILE
  gsb cliques FILE [--min K] [--max K] [--threads T] [--count-only]
               [--backend dense|wah|hybrid] [--spill-budget BYTES]
               [--order natural|degeneracy|degree]
               [--out FILE] [--checkpoint-dir DIR] [--checkpoint-secs S]
               [--memory-budget BYTES] [--disk-budget BYTES]
               [--worker-deadline-secs S] [--scheduler steal|barrier]
               [--metrics-out RUN_JSONL] [--progress]
  gsb resume CHECKPOINT_DIR [--threads T] [--worker-deadline-secs S]
               [--metrics-out RUN_JSONL] [--progress]
  gsb report RUN_JSONL
  gsb maxclique FILE [--via-vc]
  gsb vc FILE [--k K]
  gsb fvs FILE
  gsb motif SEQFILE --l WIDTH [--d MUTATIONS] [--q QUORUM] [--top N]
  gsb index GRAPH --out DIR [--min K] [--max K] [--threads T]
               [--backend dense|wah|hybrid] [--block-target BYTES]
               [--text-out FILE]
  gsb query INDEX_DIR (--containing V | --size-min K --size-max M |
               --max | --overlap V,W) [--ids-only] [--limit N]
  gsb serve INDEX_DIR [--addr HOST:PORT] [--threads T]
               [--deadline-secs S] [--request-deadline-ms MS]
               [--queue-limit N] [--rate-limit QPS] [--rate-burst N]
               [--max-header-bytes N] [--reload-poll-ms MS]
               [--metrics-out FILE] [--access-log FILE]
               [--access-log-max-bytes N] [--slow-query-ms MS]
               [--slow-query-log FILE] [--trace-seed S]
  gsb shard INDEX_DIR --out DIR [--shards N]
               [--topology-out FILE --replicas h:p,h:p/h:p,h:p]
  gsb router TOPOLOGY [--addr HOST:PORT] [--threads T]
               [--deadline-secs S] [--request-deadline-ms MS]
               [--queue-limit N] [--max-header-bytes N]
               [--probe-interval-ms MS] [--breaker-failures N]
               [--breaker-cooldown-ms MS] [--try-timeout-ms MS]
               [--hedge-percentile P] [--hedge-min-ms MS]
               [--retry-seed S] [--trace-seed S] [--metrics-out FILE]
  gsb tail ACCESS_LOG [--top N]
  gsb scrub INDEX_DIR [--json]
  gsb update INDEX_DIR [--add-edges FILE] [--remove-edges FILE]
               [--block-target BYTES]
  gsb compact INDEX_DIR [--block-target BYTES]
  gsb bench-serve [--out FILE] [--seed S] [--smoke] [--scrape]
               [--router]
  gsb bench-update [--out FILE] [--seed S] [--smoke]
  gsb stats --index INDEX_DIR
  gsb convert IN OUT
  gsb help

Graph files: whitespace edge lists (0-indexed), or DIMACS with a
.clq/.dimacs extension. Sequence files: one sequence per line.

Backends: `cliques --backend dense|wah|hybrid` selects the bitmap
representation of the per-sub-list common-neighbor sets — dense u64
words (default), WAH-compressed run-length words, or a per-sub-list
adaptive hybrid. Every backend enumerates the identical clique set;
compressed backends trade AND throughput for a smaller working set on
sparse genome-scale graphs. Checkpoints are written in the selected
representation and `gsb resume` picks the backend up from run.meta.

Schedulers: `cliques --scheduler steal|barrier` selects the parallel
runtime — work-stealing per-sub-list tasks with steal-scope epochs
(default; idle workers steal from busy ones, no central balancer), or
the paper's level-synchronous barrier rounds with the centralized
spread balancer. Both emit byte-identical output; run.meta records the
choice and `gsb resume` re-derives it (older run.meta files without a
scheduler line resume under barrier, which is what wrote them).

Crash recovery: `cliques --checkpoint-dir DIR --out FILE` persists the
current level at each barrier (every --checkpoint-secs seconds if
given); after a crash, `gsb resume DIR` reloads the newest valid
checkpoint and completes the run, appending to the original output
file. `--memory-budget BYTES` degrades to the out-of-core enumerator
instead of exceeding the budget.

Supervision: with `--checkpoint-dir`, SIGINT/SIGTERM trigger a graceful
shutdown — the in-flight level finishes, a final checkpoint is forced,
and the process exits 130/143 with the directory ready for `gsb
resume` (which reports why the previous run stopped).
`--worker-deadline-secs S` declares a parallel worker stuck after S
seconds without progress: it is replaced, the level retried, and
deterministic offenders are skipped into `quarantine.jsonl` next to the
checkpoints (reported by `gsb report`; the output stays exact except
descendants of the quarantined prefixes). `--disk-budget BYTES` caps
total checkpoint bytes, pruning old checkpoints (and surviving ENOSPC)
by keeping at least the newest one. Transient I/O errors on checkpoint
and spill writes are retried with jittered exponential backoff.

Telemetry: `cliques --metrics-out run.jsonl` writes one JSON record per
level barrier plus a final summary; `--progress` prints a live status
line to stderr. `gsb report run.jsonl` renders the per-level summary
and the Fig. 8-style worker-imbalance table from such a file.

Index & serving: `gsb index` streams the enumeration into a persistent
on-disk index (CRC-framed clique store, per-vertex postings lists, a
size-range directory, committed atomically via index.meta); `gsb
query` answers containment/size-range/max/overlap queries from that
directory without re-running anything; `gsb stats --index DIR` prints
the index profile and size histogram; `gsb serve` exposes the same
queries over HTTP (GET /health /stats /containing/V /size/LO/HI /max
/overlap/V/W) with per-endpoint latency histograms (`--metrics-out`),
a per-connection deadline, and a graceful SIGINT/SIGTERM drain that
answers every accepted connection before exiting 130/143.

Overload & integrity: `gsb serve` admission-controls with a bounded
queue (`--queue-limit`, full queue sheds 503 + Retry-After), optional
per-endpoint token-bucket rate limits (`--rate-limit QPS` with
`--rate-burst`, /health exempt, over-limit answers 429), a per-request
deadline budget measured from accept (`--request-deadline-ms`; slow
clients get 408, oversized headers 431), and optional hot-reloads
(`--reload-poll-ms` polls index.meta and atomically swaps in a rebuilt
index without dropping in-flight requests). Blocks that fail CRC at
read time are quarantined in memory and list answers degrade exactly
(marked with X-Gsb-Degraded) until a rebuild lands. `gsb scrub
INDEX_DIR` walks every CRC frame offline, recomputes the postings from
the decoded cliques, and exits 1 listing findings on any corruption
(`--json` emits one JSON object per finding plus a summary line).
`gsb bench-serve` runs a self-contained closed-loop load benchmark
(steady + overload scenarios, plus a concurrent /metrics-scrape
scenario with `--scrape` and router failover scenarios with
`--router`) and writes QPS/latency/shed-rate percentiles to
results/BENCH_serve.json.

Dynamic updates: `gsb update` applies an edge-edit batch (plain `u v`
edit files, removals before additions) to an index in place — only the
affected neighborhoods are re-enumerated (delta cliques + tombstones
appended as a new generation, manifest bumped atomically, so a serving
`gsb serve --reload-poll-ms` picks the new view up live without
dropping requests). Indexes built with `--max` are frozen (updates are
refused; rebuild without `--max`). `gsb compact INDEX_DIR` folds the
delta chain back into a clean base byte-identical to a fresh `gsb
index` of the patched graph; it is crash-safe and restartable — a
compact killed mid-swap is finished, not rebuilt, by the next run.
`gsb stats --index` reports the chain length and live/tombstone
counts; `gsb scrub` walks every delta frame, tombstone, and the graph
snapshot with the same any-single-byte-flip guarantee as the base.
`gsb bench-update` times update batches against full rebuilds and
commits the speedups to results/BENCH_update.json.

Replication: `gsb shard` splits one committed index into contiguous
clique-id shard directories (each an ordinary index a stock `gsb
serve` can serve; size order makes id ranges size ranges) and can emit
the matching topology file. `gsb router` fronts those backends: it
scatter-gathers containing/overlap across shards, routes size/get/max
to the owning shards, health-probes every replica's /ready, drives a
per-backend circuit breaker (closed/half-open/open, with passive
failure accounting), carves per-try timeouts from the request deadline
(propagated via X-Gsb-Deadline-Ms so backends shed abandoned work),
fails over across replicas with seeded jittered backoff, hedges tail
latency at --hedge-percentile, and degrades exactly: if every replica
of a shard is down, scatter answers carry the surviving shards plus
X-Gsb-Degraded and a missing_shards field — never a blind 500. The
router's /metrics exports per-backend breaker-state gauges and
retry/hedge/degraded counters.

Observability: `gsb serve` exposes GET /metrics (Prometheus text
format: per-endpoint request counters and latency histograms, queue
depth, shed/degraded/status counters, block-cache and index gauges)
and GET /metrics-json (the --metrics-out snapshot, live); both are
exempt from admission control so a saturated server can still be
watched. Every request carries a trace id (client-supplied via
X-Gsb-Trace or server-generated) echoed in the response headers with
per-request nanoseconds. `--access-log FILE` appends one JSON line per
request (trace id, endpoint, status, shed cause, per-stage timings),
atomically rotated past `--access-log-max-bytes`; `--slow-query-ms`
tees requests over the threshold into `--slow-query-log` (default
`<access-log>.slow`). `gsb tail ACCESS_LOG` renders the RED summary
(rate/errors/duration percentiles per endpoint), the shed/degraded
cause table, and the top `--top` slowest traces with their per-stage
breakdown.";

/// Dispatch a full argv (without the program name) and return the
/// report to print.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some(cmd) = argv.first() else {
        return Err(CliError::Usage("no subcommand given".into()));
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "generate" => commands::generate(rest),
        "stats" => commands::stats(rest),
        "cliques" => commands::cliques(rest),
        "resume" => commands::resume(rest),
        "report" => commands::report(rest),
        "maxclique" => commands::maxclique(rest),
        "vc" => commands::vertex_cover(rest),
        "fvs" => commands::fvs(rest),
        "motif" => commands::motif(rest),
        "index" => commands::index(rest),
        "query" => commands::query(rest),
        "serve" => commands::serve(rest),
        "router" => commands::router(rest),
        "shard" => commands::shard(rest),
        "tail" => commands::tail(rest),
        "scrub" => commands::scrub(rest),
        "update" => commands::update(rest),
        "compact" => commands::compact(rest),
        "bench-serve" => commands::bench_serve(rest),
        "bench-update" => commands::bench_update(rest),
        "convert" => commands::convert(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}
