//! Subcommand implementations. Each takes the post-subcommand argv and
//! returns the report text.

use crate::args::Args;
use crate::CliError;
use gsb_core::checkpoint::{latest_checkpoint, CheckpointConfig, RunMeta, RunProgress};
use gsb_core::sink::{CollectSink, CountSink};
use gsb_core::store::SpillConfig;
use gsb_core::{
    CliqueEnumerator, CliquePipeline, EnumConfig, ParallelConfig, ParallelEnumerator,
    PipelineReport, WriterSink,
};
use gsb_graph::generators::{correlation_like, gnp, planted, CorrelationProfile, Module};
use gsb_graph::{io as gio, BitGraph};
use gsb_telemetry::{parse_report, render_report, RunTelemetry, TelemetryConfig};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn load(path: &str) -> Result<BitGraph, CliError> {
    Ok(gio::load(Path::new(path))?)
}

fn save(g: &BitGraph, path: &str) -> Result<(), CliError> {
    let file = std::fs::File::create(path)?;
    match Path::new(path).extension().and_then(|e| e.to_str()) {
        Some("clq") | Some("dimacs") => gio::write_dimacs(g, file)?,
        _ => gio::write_edge_list(g, file)?,
    }
    Ok(())
}

/// `gsb generate`
pub fn generate(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(
        argv,
        &[
            "kind", "n", "p", "density", "modules", "seed", "out", "overlap",
        ],
        &[],
        0,
    )?;
    let kind = a.flag("kind").unwrap_or("gnp").to_string();
    let n: usize = a.flag_or("n", 100)?;
    let seed: u64 = a.flag_or("seed", 0)?;
    let out = a
        .flag("out")
        .ok_or(crate::args::ArgError::Required("--out".into()))?
        .to_string();
    let g = match kind.as_str() {
        "gnp" => {
            let p: f64 = a.flag_or("p", 0.01)?;
            gnp(n, p, seed)
        }
        "planted" => {
            let p: f64 = a.flag_or("p", 0.01)?;
            let sizes: Vec<usize> = a.flag_list("modules")?;
            let modules: Vec<Module> = sizes.into_iter().map(Module::clique).collect();
            planted(n, p, &modules, seed)
        }
        "correlation" => {
            let density: f64 = a.flag_or("density", 0.002)?;
            let mut profile = CorrelationProfile::myogenic_like(n);
            profile.density = density;
            if let Some(overlap) = a.flag_opt::<f64>("overlap")? {
                profile.overlap = overlap;
            }
            correlation_like(&profile, seed)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --kind {other:?} (gnp | planted | correlation)"
            )))
        }
    };
    save(&g, &out)?;
    Ok(format!(
        "wrote {} ({} vertices, {} edges, density {:.4}%)\n",
        out,
        g.n(),
        g.m(),
        100.0 * g.density()
    ))
}

/// `gsb stats`
pub fn stats(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &[], &[], 1)?;
    let path = a.required_positional(0, "FILE")?;
    let g = load(path)?;
    let p = gsb_graph::stats::profile(&g);
    let mut out = String::new();
    let _ = writeln!(out, "file:        {path}");
    let _ = writeln!(out, "vertices:    {}", p.n);
    let _ = writeln!(out, "edges:       {}", p.m);
    let _ = writeln!(out, "density:     {:.4}%", 100.0 * p.density);
    let _ = writeln!(
        out,
        "degree:      min {} / mean {:.2} / max {}",
        p.min_degree, p.mean_degree, p.max_degree
    );
    let _ = writeln!(out, "isolated:    {}", p.isolated);
    let _ = writeln!(out, "triangles:   {}", p.triangles);
    let _ = writeln!(out, "clustering:  {:.4}", p.clustering);
    let _ = writeln!(
        out,
        "clique upper bound (degeneracy/coloring): {}",
        gsb_graph::reduce::clique_upper_bound(&g)
    );
    Ok(out)
}

/// `gsb cliques`
pub fn cliques(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(
        argv,
        &[
            "min",
            "max",
            "threads",
            "spill-budget",
            "order",
            "out",
            "checkpoint-dir",
            "checkpoint-secs",
            "memory-budget",
            "metrics-out",
        ],
        &["count-only", "progress"],
        1,
    )?;
    let path = a.required_positional(0, "FILE")?;
    let g = load(path)?;
    let config = EnumConfig {
        min_k: a.flag_or("min", 3)?,
        max_k: a.flag_opt("max")?,
        record_costs: false,
    };
    let threads: usize = a.flag_or("threads", 1)?;
    let spill_budget: Option<usize> = a.flag_opt("spill-budget")?;
    let count_only = a.switch("count-only");

    // Fault-tolerant pipeline path: checkpointing and/or a memory
    // budget route through CliquePipeline instead of the raw
    // enumerators.
    let checkpoint_dir = a.flag("checkpoint-dir").map(str::to_string);
    let checkpoint_secs: Option<u64> = a.flag_opt("checkpoint-secs")?;
    let memory_budget: Option<usize> = a.flag_opt("memory-budget")?;
    let telemetry_config = TelemetryConfig {
        metrics_out: a.flag("metrics-out").map(PathBuf::from),
        progress: a.switch("progress"),
    };
    if checkpoint_dir.is_some() || memory_budget.is_some() || !telemetry_config.is_off() {
        if a.flag("order").is_some() || spill_budget.is_some() {
            return Err(CliError::Usage(
                "--checkpoint-dir/--memory-budget/--metrics-out/--progress conflict with \
                 --order and --spill-budget"
                    .into(),
            ));
        }
        return cliques_pipeline(
            &a,
            path,
            &g,
            config,
            threads,
            count_only,
            checkpoint_dir.as_deref(),
            checkpoint_secs,
            memory_budget,
            telemetry_config,
        );
    }
    if checkpoint_secs.is_some() {
        return Err(CliError::Usage(
            "--checkpoint-secs requires --checkpoint-dir".into(),
        ));
    }

    // Optional vertex reordering (sequential path only).
    if let Some(order_name) = a.flag("order") {
        if threads != 1 || spill_budget.is_some() {
            return Err(CliError::Usage(
                "--order applies to the plain sequential run (no --threads/--spill-budget)".into(),
            ));
        }
        let ordering = match order_name {
            "natural" => gsb_core::order::Ordering::Natural,
            "degeneracy" => gsb_core::order::Ordering::Degeneracy,
            "degree" => gsb_core::order::Ordering::DegreeDescending,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown --order {other:?} (natural | degeneracy | degree)"
                )))
            }
        };
        let mut collect = CollectSink::default();
        gsb_core::order::enumerate_ordered(&g, ordering, config, &mut collect);
        let count = CountSink {
            count: collect.cliques.len(),
        };
        if count_only {
            collect.cliques.clear();
        }
        return Ok(render_cliques(&collect, &count, count_only));
    }

    // Optional streaming output to a file.
    if let Some(out_path) = a.flag("out") {
        if count_only {
            return Err(CliError::Usage("--out and --count-only conflict".into()));
        }
        let file = std::fs::File::create(out_path)?;
        let mut sink = gsb_core::WriterSink::new(file);
        if threads == 1 {
            CliqueEnumerator::new(config).enumerate(&g, &mut sink);
        } else {
            let enumerator = ParallelEnumerator::new(ParallelConfig {
                threads,
                enum_config: config,
                ..Default::default()
            });
            let garc = Arc::new(g);
            enumerator.enumerate(&garc, &mut sink);
        }
        let written = sink.finish()?;
        return Ok(format!("wrote {written} maximal cliques to {out_path}\n"));
    }

    let mut collect = CollectSink::default();
    let mut count = CountSink::default();
    if let Some(budget) = spill_budget {
        if threads != 1 {
            return Err(CliError::Usage(
                "--spill-budget requires --threads 1 (the out-of-core store is sequential)".into(),
            ));
        }
        let spill = SpillConfig::in_temp(budget);
        let enumerator = CliqueEnumerator::new(config);
        let stats = if count_only {
            enumerator.enumerate_spilled(&g, &mut count, &spill)?
        } else {
            enumerator.enumerate_spilled(&g, &mut collect, &spill)?
        };
        let mut out = render_cliques(&collect, &count, count_only);
        let _ = writeln!(
            out,
            "out-of-core: {} bytes read back across {} levels",
            stats.total_bytes_read(),
            stats.levels.len()
        );
        return Ok(out);
    }
    if threads == 1 {
        let enumerator = CliqueEnumerator::new(config);
        if count_only {
            enumerator.enumerate(&g, &mut count);
        } else {
            enumerator.enumerate(&g, &mut collect);
        }
    } else {
        let enumerator = ParallelEnumerator::new(ParallelConfig {
            threads,
            enum_config: config,
            ..Default::default()
        });
        let garc = Arc::new(g);
        if count_only {
            enumerator.enumerate(&garc, &mut count);
        } else {
            enumerator.enumerate(&garc, &mut collect);
        }
    }
    Ok(render_cliques(&collect, &count, count_only))
}

/// The fault-tolerant `gsb cliques` variant: checkpointing and/or a
/// memory budget through [`CliquePipeline`].
#[allow(clippy::too_many_arguments)]
fn cliques_pipeline(
    a: &Args,
    graph_path: &str,
    g: &BitGraph,
    config: EnumConfig,
    threads: usize,
    count_only: bool,
    checkpoint_dir: Option<&str>,
    checkpoint_secs: Option<u64>,
    memory_budget: Option<usize>,
    telemetry_config: TelemetryConfig,
) -> Result<String, CliError> {
    let mut pipe = CliquePipeline::new()
        .min_size(config.min_k)
        .threads(threads)
        .skip_exact_bound();
    if let Some(mx) = config.max_k {
        pipe = pipe.max_size(mx);
    }
    if let Some(budget) = memory_budget {
        pipe = pipe.memory_budget(budget);
    }
    if !telemetry_config.is_off() {
        pipe = pipe.telemetry(Arc::new(RunTelemetry::new(telemetry_config)?));
    }

    if let Some(dir) = checkpoint_dir {
        // Resume needs a durable output file to reconcile against:
        // in-memory results would vanish with the crash being guarded
        // against.
        let Some(out_path) = a.flag("out") else {
            return Err(CliError::Usage(
                "--checkpoint-dir requires --out FILE (resume appends to it)".into(),
            ));
        };
        if count_only {
            return Err(CliError::Usage(
                "--checkpoint-dir conflicts with --count-only".into(),
            ));
        }
        let ckpt = match checkpoint_secs {
            Some(secs) => CheckpointConfig::every_secs(dir, secs),
            None => CheckpointConfig::every_level(dir),
        };
        std::fs::create_dir_all(dir)?;
        RunMeta {
            graph: graph_path.to_string(),
            min_k: config.min_k,
            max_k: config.max_k,
            threads,
            out: Some(out_path.to_string()),
        }
        .save(Path::new(dir))?;
        pipe = pipe.checkpoint(ckpt);
        let file = std::fs::File::create(out_path)?;
        let mut sink = WriterSink::new(file);
        let report = pipe.try_run(g, &mut sink)?;
        let written = sink.finish()?;
        let mut out = format!("wrote {written} maximal cliques to {out_path}\n");
        let _ = writeln!(
            out,
            "checkpointed {} level(s) in {dir} (cleaned up on completion)",
            report.checkpoints.len()
        );
        append_degradation_note(&mut out, &report);
        return Ok(out);
    }

    // Memory budget without checkpointing: any sink works.
    if let Some(out_path) = a.flag("out") {
        if count_only {
            return Err(CliError::Usage("--out and --count-only conflict".into()));
        }
        let file = std::fs::File::create(out_path)?;
        let mut sink = WriterSink::new(file);
        let report = pipe.try_run(g, &mut sink)?;
        let written = sink.finish()?;
        let mut out = format!("wrote {written} maximal cliques to {out_path}\n");
        append_degradation_note(&mut out, &report);
        return Ok(out);
    }
    let mut collect = CollectSink::default();
    let mut count = CountSink::default();
    let report = if count_only {
        pipe.try_run(g, &mut count)?
    } else {
        pipe.try_run(g, &mut collect)?
    };
    let mut out = render_cliques(&collect, &count, count_only);
    append_degradation_note(&mut out, &report);
    Ok(out)
}

fn append_degradation_note(out: &mut String, report: &PipelineReport) {
    if let Some(k) = report.degraded_at {
        let bytes = report
            .spill_stats
            .as_ref()
            .map_or(0, gsb_core::spill::SpillStats::total_bytes_read);
        let _ = writeln!(
            out,
            "memory budget reached at level {k}: finished out of core ({bytes} bytes read back)"
        );
    }
}

/// `gsb resume` — continue a checkpointed `cliques` run after a crash.
pub fn resume(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &["threads", "metrics-out"], &["progress"], 1)?;
    let dir = a.required_positional(0, "CHECKPOINT_DIR")?;
    let meta = RunMeta::load(Path::new(dir)).map_err(|_| {
        CliError::Runtime(format!(
            "no run.meta in {dir} — nothing to resume (directory never checkpointed, \
             or the run completed and cleaned up)"
        ))
    })?;
    let g = load(&meta.graph)?;
    let Some((k_ckpt, _)) = latest_checkpoint(Path::new(dir), g.n())? else {
        return Err(CliError::Runtime(format!(
            "no usable checkpoint in {dir} (the run may have completed)"
        )));
    };
    let out_path = meta.out.clone().ok_or_else(|| {
        CliError::Runtime("run.meta records no output file; cannot reconcile".into())
    })?;
    // Reconcile the output file with the checkpoint cut: the resumed
    // run re-emits every clique of size > k_ckpt, so keep only
    // well-formed lines at or below it (this also drops a line torn by
    // the crash mid-write).
    let kept = truncate_output(&out_path, k_ckpt)?;
    let file = std::fs::OpenOptions::new().append(true).open(&out_path)?;
    let mut sink = WriterSink::new(file);
    let threads = a
        .flag_opt::<usize>("threads")?
        .unwrap_or(meta.threads)
        .max(1);
    let mut pipe = CliquePipeline::new()
        .min_size(meta.min_k.max(1))
        .threads(threads)
        .skip_exact_bound()
        .checkpoint(CheckpointConfig::every_level(dir));
    if let Some(mx) = meta.max_k {
        pipe = pipe.max_size(mx);
    }
    // Cumulative telemetry persisted at the last checkpoint barrier:
    // report how far the interrupted run had gotten, and let the
    // pipeline seed its counters from it so exported totals continue.
    let prior = RunProgress::load(Path::new(dir)).ok();
    let telemetry_config = TelemetryConfig {
        metrics_out: a.flag("metrics-out").map(PathBuf::from),
        progress: a.switch("progress"),
    };
    if !telemetry_config.is_off() {
        pipe = pipe.telemetry(Arc::new(RunTelemetry::new(telemetry_config)?));
    }
    let report = pipe.resume(&g, &mut sink)?;
    let appended = sink.finish()?;
    let mut out = String::new();
    if let Some(p) = prior {
        let _ = writeln!(
            out,
            "prior progress: {} cliques across {} level(s) in {:.1}s before the interruption",
            p.cliques_emitted,
            p.levels_done,
            p.wall_ms as f64 / 1e3
        );
    }
    let _ = writeln!(
        out,
        "resumed {} from its level-{k_ckpt} checkpoint: kept {kept} cliques (size <= {k_ckpt}), \
         appended {appended} more to {out_path}",
        meta.graph
    );
    append_degradation_note(&mut out, &report);
    Ok(out)
}

/// `gsb report` — render a `--metrics-out` JSONL run log as the
/// per-level summary and Fig. 8-style worker-imbalance tables.
pub fn report(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &[], &[], 1)?;
    let path = a.required_positional(0, "RUN_JSONL")?;
    let text = std::fs::read_to_string(path)?;
    let parsed = parse_report(&text)
        .map_err(|e| CliError::Runtime(format!("{path} is not a valid run log: {e}")))?;
    Ok(render_report(&parsed))
}

/// Keep only well-formed `size\tv1 v2 ...` lines with `size <= max_k`;
/// atomically replace the file. Returns how many lines were kept.
fn truncate_output(path: &str, max_k: usize) -> Result<usize, CliError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        // The crash may have happened before the file was created.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(CliError::Io(e)),
    };
    let mut kept = String::with_capacity(text.len());
    let mut kept_lines = 0usize;
    for line in text.lines() {
        let Some((size, rest)) = line.split_once('\t') else {
            continue;
        };
        let Ok(k) = size.parse::<usize>() else {
            continue;
        };
        if k > max_k || rest.split_whitespace().count() != k {
            continue;
        }
        kept.push_str(line);
        kept.push('\n');
        kept_lines += 1;
    }
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, kept.as_bytes())?;
    std::fs::rename(&tmp, path)?;
    Ok(kept_lines)
}

fn render_cliques(collect: &CollectSink, count: &CountSink, count_only: bool) -> String {
    let mut out = String::new();
    if count_only {
        let _ = writeln!(out, "{} maximal cliques", count.count);
    } else {
        for c in &collect.cliques {
            let text: Vec<String> = c.iter().map(u32::to_string).collect();
            let _ = writeln!(out, "{}\t{}", c.len(), text.join(" "));
        }
        let _ = writeln!(out, "# {} maximal cliques", collect.cliques.len());
    }
    out
}

/// `gsb maxclique`
pub fn maxclique(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &[], &["via-vc"], 1)?;
    let path = a.required_positional(0, "FILE")?;
    let g = load(path)?;
    let clique: Vec<usize> = if a.switch("via-vc") {
        gsb_fpt::maximum_clique_via_vc(&g)
    } else {
        gsb_core::maximum_clique(&g)
            .into_iter()
            .map(|v| v as usize)
            .collect()
    };
    let text: Vec<String> = clique.iter().map(usize::to_string).collect();
    Ok(format!(
        "maximum clique size {}: {}\n",
        clique.len(),
        text.join(" ")
    ))
}

/// `gsb vc`
pub fn vertex_cover(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &["k"], &[], 1)?;
    let path = a.required_positional(0, "FILE")?;
    let g = load(path)?;
    match a.flag_opt::<usize>("k")? {
        Some(k) => match gsb_fpt::vertex_cover_decision(&g, k) {
            Some(cover) => {
                let text: Vec<String> = cover.iter().map(usize::to_string).collect();
                Ok(format!(
                    "YES: cover of size {} <= {k}: {}\n",
                    cover.len(),
                    text.join(" ")
                ))
            }
            None => Ok(format!("NO: no vertex cover of size <= {k}\n")),
        },
        None => {
            let cover = gsb_fpt::minimum_vertex_cover(&g);
            let text: Vec<String> = cover.iter().map(usize::to_string).collect();
            Ok(format!(
                "minimum vertex cover size {}: {}\n",
                cover.len(),
                text.join(" ")
            ))
        }
    }
}

/// `gsb fvs`
pub fn fvs(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &[], &[], 1)?;
    let path = a.required_positional(0, "FILE")?;
    let g = load(path)?;
    let set = gsb_fpt::feedback_vertex_set(&g);
    let text: Vec<String> = set.iter().map(usize::to_string).collect();
    Ok(format!(
        "minimum feedback vertex set size {}: {}\n",
        set.len(),
        text.join(" ")
    ))
}

/// `gsb motif`
pub fn motif(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &["l", "d", "q", "top"], &[], 1)?;
    let path = a.required_positional(0, "SEQFILE")?;
    let text = std::fs::read_to_string(path)?;
    let seqs: Vec<Vec<u8>> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with('>'))
        .map(|l| l.as_bytes().to_vec())
        .collect();
    if seqs.len() < 2 {
        return Err(CliError::Usage(
            "need at least two sequences (one per line)".into(),
        ));
    }
    let l: usize = a
        .flag_opt("l")?
        .ok_or(crate::args::ArgError::Required("--l".into()))?;
    let params = gsb_motif::MotifParams {
        l,
        d: a.flag_or("d", 1)?,
        q: a.flag_or("q", seqs.len().saturating_sub(1).max(2))?,
    };
    let top: usize = a.flag_or("top", 5)?;
    let motifs = gsb_motif::find_motifs(&seqs, &params);
    let mut out = format!(
        "{} sequences, window {}, <= {} mutations, quorum {}: {} motifs\n",
        seqs.len(),
        params.l,
        params.d,
        params.q,
        motifs.len()
    );
    for m in motifs.iter().take(top) {
        let _ = writeln!(
            out,
            "{}\tsupport {}\tsites {:?}",
            String::from_utf8_lossy(&m.consensus),
            m.support(),
            m.sites
        );
    }
    Ok(out)
}

/// `gsb convert`
pub fn convert(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &[], &[], 2)?;
    let input = a.required_positional(0, "IN")?;
    let output = a.required_positional(1, "OUT")?;
    let g = load(input)?;
    save(&g, output)?;
    Ok(format!(
        "converted {input} -> {output} ({} vertices, {} edges)\n",
        g.n(),
        g.m()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("gsb-cli-test-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn generate_stats_cliques_roundtrip() {
        let path = tmp("g1.txt");
        let report = generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "40",
            "--p",
            "0.02",
            "--modules",
            "6,5",
            "--seed",
            "3",
            "--out",
            &path,
        ]))
        .unwrap();
        assert!(report.contains("40 vertices"));

        let s = stats(&argv(&[&path])).unwrap();
        assert!(s.contains("vertices:    40"));
        assert!(s.contains("clique upper bound"));

        let c = cliques(&argv(&[&path, "--min", "4"])).unwrap();
        assert!(c.contains("maximal cliques"));
        // every line is "size\tvertices"
        for line in c.lines().filter(|l| !l.starts_with('#')) {
            let (size, rest) = line.split_once('\t').expect("tabbed");
            let k: usize = size.parse().unwrap();
            assert_eq!(rest.split_whitespace().count(), k);
            assert!(k >= 4);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cliques_count_only_and_threads_agree() {
        let path = tmp("g2.txt");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "36",
            "--modules",
            "7",
            "--out",
            &path,
        ]))
        .unwrap();
        let seq = cliques(&argv(&[&path, "--count-only"])).unwrap();
        let par = cliques(&argv(&[&path, "--count-only", "--threads", "3"])).unwrap();
        assert_eq!(seq, par);
        let spill = cliques(&argv(&[&path, "--count-only", "--spill-budget", "0"])).unwrap();
        assert!(spill.starts_with(&seq.lines().next().unwrap().to_string()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cliques_order_and_out_flags() {
        let path = tmp("g6.txt");
        let out = tmp("g6.cliques");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "30",
            "--modules",
            "6,5",
            "--out",
            &path,
        ]))
        .unwrap();
        let plain = cliques(&argv(&[&path, "--min", "4"])).unwrap();
        for order in ["natural", "degeneracy", "degree"] {
            let ordered = cliques(&argv(&[&path, "--min", "4", "--order", order])).unwrap();
            // same clique set (line sets match after sorting)
            let mut a: Vec<&str> = plain.lines().filter(|l| !l.starts_with('#')).collect();
            let mut b: Vec<&str> = ordered.lines().filter(|l| !l.starts_with('#')).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "--order {order}");
        }
        assert!(cliques(&argv(&[&path, "--order", "bogus"])).is_err());
        // streaming output
        let report = cliques(&argv(&[&path, "--min", "4", "--out", &out])).unwrap();
        assert!(report.contains("maximal cliques"));
        let streamed = std::fs::read_to_string(&out).unwrap();
        let n_lines = streamed.lines().count();
        let n_plain = plain.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(n_lines, n_plain);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn maxclique_both_routes() {
        let path = tmp("g3.txt");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "30",
            "--modules",
            "6",
            "--out",
            &path,
        ]))
        .unwrap();
        let direct = maxclique(&argv(&[&path])).unwrap();
        let viavc = maxclique(&argv(&[&path, "--via-vc"])).unwrap();
        let size = |s: &str| {
            s.split("size ")
                .nth(1)
                .unwrap()
                .split(':')
                .next()
                .unwrap()
                .parse::<usize>()
                .unwrap()
        };
        assert_eq!(size(&direct), size(&viavc));
        assert!(size(&direct) >= 6);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn vc_and_fvs_run() {
        let path = tmp("g4.txt");
        generate(&argv(&[
            "--kind", "gnp", "--n", "14", "--p", "0.3", "--out", &path,
        ]))
        .unwrap();
        let vc_min = vertex_cover(&argv(&[&path])).unwrap();
        assert!(vc_min.contains("minimum vertex cover size"));
        let vc_yes = vertex_cover(&argv(&[&path, "--k", "14"])).unwrap();
        assert!(vc_yes.starts_with("YES"));
        let vc_no = vertex_cover(&argv(&[&path, "--k", "0"])).unwrap();
        assert!(vc_no.starts_with("NO"));
        let f = fvs(&argv(&[&path])).unwrap();
        assert!(f.contains("feedback vertex set"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn motif_subcommand_end_to_end() {
        let path = tmp("seqs.txt");
        // three sequences sharing an exact 8-mer
        std::fs::write(
            &path,
            "AAAAAGATTACAGGTTTT\nCCCCGATTACAGGCCCC\n# comment\nTTGATTACAGGTTAAAA\n",
        )
        .unwrap();
        let report = motif(&argv(&[&path, "--l", "8", "--d", "0", "--q", "3"])).unwrap();
        assert!(report.contains("GATTACAG"), "{report}");
        assert!(motif(&argv(&[&path])).is_err()); // --l required
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn convert_edge_list_to_dimacs() {
        let a_path = tmp("g5.txt");
        let b_path = tmp("g5.clq");
        generate(&argv(&[
            "--kind", "gnp", "--n", "10", "--p", "0.4", "--out", &a_path,
        ]))
        .unwrap();
        let report = convert(&argv(&[&a_path, &b_path])).unwrap();
        assert!(report.contains("converted"));
        let g1 = load(&a_path).unwrap();
        let g2 = load(&b_path).unwrap();
        assert_eq!(g1, g2);
        let _ = std::fs::remove_file(&a_path);
        let _ = std::fs::remove_file(&b_path);
    }

    #[test]
    fn checkpoint_flags_are_validated() {
        let path = tmp("g8.txt");
        generate(&argv(&[
            "--kind", "gnp", "--n", "12", "--p", "0.3", "--out", &path,
        ]))
        .unwrap();
        // --checkpoint-dir without --out
        let err = cliques(&argv(&[&path, "--checkpoint-dir", "/tmp/x"])).unwrap_err();
        assert!(err.to_string().contains("--out"), "{err}");
        // --checkpoint-secs without --checkpoint-dir
        let err = cliques(&argv(&[&path, "--checkpoint-secs", "5"])).unwrap_err();
        assert!(err.to_string().contains("--checkpoint-dir"), "{err}");
        // conflicts with the one-shot spill/order paths
        let err = cliques(&argv(&[
            &path,
            "--memory-budget",
            "1000",
            "--order",
            "degree",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert_eq!(err.exit_code(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpointed_run_matches_plain_and_cleans_up() {
        let path = tmp("g9.txt");
        let dir = tmp("g9-ckpt");
        let out = tmp("g9.out");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "32",
            "--modules",
            "7,5",
            "--seed",
            "11",
            "--out",
            &path,
        ]))
        .unwrap();
        let plain = cliques(&argv(&[&path, "--min", "3"])).unwrap();
        let report = cliques(&argv(&[
            &path,
            "--min",
            "3",
            "--checkpoint-dir",
            &dir,
            "--out",
            &out,
        ]))
        .unwrap();
        assert!(report.contains("checkpointed"), "{report}");
        let mut a: Vec<&str> = plain.lines().filter(|l| !l.starts_with('#')).collect();
        let written = std::fs::read_to_string(&out).unwrap();
        let mut b: Vec<&str> = written.lines().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // success cleaned the checkpoint dir: nothing to resume
        let err = resume(&argv(&[&dir])).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_completes_a_crashed_run_byte_identically() {
        use gsb_core::checkpoint::CheckpointManager;
        use gsb_core::EnumStats;

        let path = tmp("g10.txt");
        let dir = tmp("g10-ckpt");
        let out = tmp("g10.out");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "34",
            "--modules",
            "8,6",
            "--seed",
            "29",
            "--out",
            &path,
        ]))
        .unwrap();
        let expected = cliques(&argv(&[&path, "--min", "3"])).unwrap();

        // Manufacture the crashed state: step the enumerator to level 4,
        // persist a real checkpoint + run.meta, and write the output
        // file as the dying run left it — the cliques emitted so far
        // plus a line torn mid-write.
        let g = load(&path).unwrap();
        let seq = CliqueEnumerator::new(EnumConfig::default());
        let mut pre = gsb_core::sink::CollectSink::default();
        let mut stats = EnumStats::default();
        let mut level = seq.init_level(&g, &mut pre, &mut stats);
        while level.k < 4 && !level.sublists.is_empty() {
            let (next, _) = seq.step(&g, &level, &mut pre);
            level = next;
        }
        let k_ckpt = level.k;
        let mgr = CheckpointManager::new(CheckpointConfig::every_level(&dir)).unwrap();
        {
            let mut mgr = mgr;
            mgr.force(&level).unwrap();
            // crash: dropped without finish(), files stay
        }
        RunMeta {
            graph: path.clone(),
            min_k: 3,
            max_k: None,
            threads: 1,
            out: Some(out.clone()),
        }
        .save(Path::new(&dir))
        .unwrap();
        let pre_count = pre.cliques.iter().filter(|c| c.len() <= k_ckpt).count() as u64;
        RunProgress {
            cliques_emitted: pre_count,
            levels_done: k_ckpt as u64 - 2,
            wall_ms: 1500,
        }
        .save(Path::new(&dir))
        .unwrap();
        let mut crashed = String::new();
        for c in pre.cliques.iter().filter(|c| c.len() <= k_ckpt) {
            let verts: Vec<String> = c.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(crashed, "{}\t{}", c.len(), verts.join(" "));
        }
        crashed.push_str("6\t1 2"); // torn by the crash: no newline, wrong arity
        std::fs::write(&out, &crashed).unwrap();

        let report = resume(&argv(&[&dir])).unwrap();
        assert!(
            report.contains(&format!("level-{k_ckpt} checkpoint")),
            "{report}"
        );
        assert!(
            report.contains(&format!("prior progress: {pre_count} cliques")),
            "{report}"
        );
        assert!(report.contains("1.5s before the interruption"), "{report}");
        let resumed = std::fs::read_to_string(&out).unwrap();
        let mut got: Vec<&str> = resumed.lines().collect();
        let mut want: Vec<&str> = expected.lines().filter(|l| !l.starts_with('#')).collect();
        got.sort();
        want.sort();
        assert_eq!(got.len(), want.len(), "clique counts differ");
        assert_eq!(got, want);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_out_produces_schema_valid_monotone_records() {
        let path = tmp("g11.txt");
        let jsonl = tmp("g11.jsonl");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "36",
            "--modules",
            "8,6",
            "--seed",
            "7",
            "--out",
            &path,
        ]))
        .unwrap();
        let plain = cliques(&argv(&[&path, "--min", "3", "--count-only"])).unwrap();
        let with_metrics = cliques(&argv(&[
            &path,
            "--min",
            "3",
            "--threads",
            "3",
            "--count-only",
            "--metrics-out",
            &jsonl,
        ]))
        .unwrap();
        // telemetry must not change the enumeration result
        assert_eq!(plain, with_metrics);

        let text = std::fs::read_to_string(&jsonl).unwrap();
        let parsed = gsb_telemetry::parse_report(&text).expect("valid run log");
        assert!(!parsed.truncated);
        assert!(!parsed.levels.is_empty(), "no level records");
        for w in parsed.levels.windows(2) {
            assert!(w[1].k > w[0].k, "level k not monotone: {w:?}");
            assert!(w[1].maximal_total >= w[0].maximal_total);
        }
        for level in &parsed.levels {
            assert!(level.sublists > 0, "empty sub-list count: {level:?}");
            assert!(!level.busy_ns.is_empty(), "no per-worker busy time");
        }
        let summary = parsed.summary.as_ref().expect("summary record");
        let total: u64 = plain.split_whitespace().next().unwrap().parse().unwrap();
        assert_eq!(summary.maximal_total, total);
        assert!(summary.maximal_total > 0);

        // and the rendered report round-trips from the same file
        let rendered = report(&argv(&[&jsonl])).unwrap();
        assert!(rendered.contains("Per-level summary"), "{rendered}");
        assert!(rendered.contains("Worker imbalance"), "{rendered}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&jsonl);
    }

    #[test]
    fn report_tolerates_a_crash_truncated_run_log() {
        let path = tmp("g13.txt");
        let jsonl = tmp("g13.jsonl");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "30",
            "--modules",
            "7",
            "--seed",
            "2",
            "--out",
            &path,
        ]))
        .unwrap();
        cliques(&argv(&[&path, "--count-only", "--metrics-out", &jsonl])).unwrap();
        // Simulate dying mid-write: chop the file inside its last line.
        let text = std::fs::read_to_string(&jsonl).unwrap();
        let cut = text.trim_end().len() - 10;
        std::fs::write(&jsonl, &text[..cut]).unwrap();
        let rendered = report(&argv(&[&jsonl])).unwrap();
        assert!(rendered.contains("truncated"), "{rendered}");
        assert!(rendered.contains("Per-level summary"), "{rendered}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&jsonl);
    }

    #[test]
    fn report_rejects_garbage_and_metrics_conflicts_are_usage_errors() {
        let bad = tmp("bad.jsonl");
        std::fs::write(&bad, "not json at all\nstill not\n").unwrap();
        let err = report(&argv(&[&bad])).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        let _ = std::fs::remove_file(&bad);

        let path = tmp("g12.txt");
        generate(&argv(&[
            "--kind", "gnp", "--n", "12", "--p", "0.3", "--out", &path,
        ]))
        .unwrap();
        let err = cliques(&argv(&[&path, "--progress", "--order", "degree"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dispatch_and_usage() {
        assert!(crate::run(&argv(&["help"])).unwrap().contains("USAGE"));
        assert!(crate::run(&argv(&[])).is_err());
        assert!(crate::run(&argv(&["bogus"])).is_err());
        let err = crate::run(&argv(&["generate", "--kind", "nope", "--out", "x"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown --kind"));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = stats(&argv(&["/definitely/not/here"])).unwrap_err();
        assert!(matches!(err, CliError::Parse(_) | CliError::Io(_)));
    }
}
