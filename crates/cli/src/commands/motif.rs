//! `gsb motif` — (l, d)-motif discovery over a sequence file.

use crate::args::Args;
use crate::CliError;
use std::fmt::Write as _;

/// `gsb motif`
pub fn motif(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &["l", "d", "q", "top"], &[], 1)?;
    let path = a.required_positional(0, "SEQFILE")?;
    let text = std::fs::read_to_string(path)?;
    let seqs: Vec<Vec<u8>> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with('>'))
        .map(|l| l.as_bytes().to_vec())
        .collect();
    if seqs.len() < 2 {
        return Err(CliError::Usage(
            "need at least two sequences (one per line)".into(),
        ));
    }
    let l: usize = a
        .flag_opt("l")?
        .ok_or(crate::args::ArgError::Required("--l".into()))?;
    let params = gsb_motif::MotifParams {
        l,
        d: a.flag_or("d", 1)?,
        q: a.flag_or("q", seqs.len().saturating_sub(1).max(2))?,
    };
    let top: usize = a.flag_or("top", 5)?;
    let motifs = gsb_motif::find_motifs(&seqs, &params);
    let mut out = format!(
        "{} sequences, window {}, <= {} mutations, quorum {}: {} motifs\n",
        seqs.len(),
        params.l,
        params.d,
        params.q,
        motifs.len()
    );
    for m in motifs.iter().take(top) {
        let _ = writeln!(
            out,
            "{}\tsupport {}\tsites {:?}",
            String::from_utf8_lossy(&m.consensus),
            m.support(),
            m.sites
        );
    }
    Ok(out)
}
