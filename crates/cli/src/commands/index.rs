//! `gsb index` — enumerate maximal cliques straight into a persistent
//! on-disk index (clique store + postings + size directory), queryable
//! afterwards with `gsb query` / `gsb serve` without re-running the
//! enumeration.

use super::load;
use crate::args::Args;
use crate::CliError;
use gsb_core::{BackendChoice, CliquePipeline, TeeSink, WriterSink};
use gsb_index::IndexWriter;
use std::fmt::Write as _;
use std::path::Path;

/// `gsb index`
pub fn index(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(
        argv,
        &[
            "out",
            "min",
            "max",
            "threads",
            "backend",
            "block-target",
            "text-out",
        ],
        &[],
        1,
    )?;
    let graph_path = a.required_positional(0, "GRAPH")?;
    let Some(out_dir) = a.flag("out") else {
        return Err(CliError::Usage(
            "gsb index requires --out DIR (where the index is written)".into(),
        ));
    };
    let g = load(graph_path)?;
    let min_k: usize = a.flag_or("min", 3)?;
    let max_k: Option<usize> = a.flag_opt("max")?;
    let threads: usize = a.flag_or("threads", 1)?;
    let backend = match a.flag("backend") {
        Some(name) => name.parse::<BackendChoice>().map_err(CliError::Usage)?,
        None => BackendChoice::Dense,
    };
    let block_target: Option<usize> = a.flag_opt("block-target")?;

    let mut pipe = CliquePipeline::new()
        .min_size(min_k)
        .threads(threads)
        .backend(backend)
        .skip_exact_bound();
    if let Some(mx) = max_k {
        pipe = pipe.max_size(mx);
    }

    let mut writer = IndexWriter::create(Path::new(out_dir), g.n()).map_err(CliError::Store)?;
    if let Some(bytes) = block_target {
        writer = writer.block_target(bytes);
    }
    // An unbounded run maintains "every maximal clique ≥ --min", which
    // is exactly the set `gsb update` knows how to maintain — record
    // the min and snapshot the graph so the index stays updatable.
    // --max truncates the set to a shape updates can't reason about, so
    // such indexes are committed frozen (queryable, not updatable).
    if max_k.is_none() {
        writer = writer
            .min_size(min_k as u32)
            .snapshot(&g)
            .map_err(CliError::Store)?;
    }

    // --text-out additionally streams the classic `size\tv …` lines;
    // the index sink goes first in the tee so a flush barrier makes the
    // durable artifact durable before the convenience copy.
    let summary = if let Some(text_path) = a.flag("text-out") {
        let file = std::fs::File::create(text_path)?;
        let mut text = WriterSink::new(file);
        {
            let mut tee = TeeSink(&mut writer, &mut text);
            pipe.try_run(&g, &mut tee)?;
        }
        text.finish()?;
        writer.finish().map_err(CliError::Store)?
    } else {
        pipe.try_run(&g, &mut writer)?;
        writer.finish().map_err(CliError::Store)?
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "indexed {} maximal cliques from {graph_path} into {out_dir}",
        summary.cliques
    );
    let _ = writeln!(
        out,
        "largest clique: {} / blocks: {} / store: {} bytes / postings: {} bytes",
        summary.max_clique, summary.blocks, summary.store_bytes, summary.postings_bytes
    );
    if let Some(text_path) = a.flag("text-out") {
        let _ = writeln!(out, "text copy: {text_path}");
    }
    Ok(out)
}
