//! `gsb serve` — serve a `gsb index` directory over HTTP until a
//! SIGINT/SIGTERM asks for a graceful drain.

use crate::args::Args;
use crate::CliError;
use gsb_core::ShutdownToken;
use gsb_index::{CliqueIndex, ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// `gsb serve`
pub fn serve(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(
        argv,
        &["addr", "threads", "deadline-secs", "metrics-out"],
        &[],
        1,
    )?;
    let dir = a.required_positional(0, "INDEX_DIR")?;
    let addr = a.flag("addr").unwrap_or("127.0.0.1:7700");
    let threads: usize = a.flag_or("threads", 4)?;
    let deadline_secs: u64 = a.flag_or("deadline-secs", 10)?;
    let metrics_out = a.flag("metrics-out").map(PathBuf::from);

    let index = Arc::new(CliqueIndex::open(Path::new(dir)).map_err(CliError::Store)?);
    let config = ServeConfig {
        threads,
        deadline: Duration::from_secs(deadline_secs.max(1)),
        metrics_out: metrics_out.clone(),
    };
    let server = Server::bind(Arc::clone(&index), addr, config)?;
    let bound = server.local_addr()?;
    // Stderr, eagerly: the operator (and the CI smoke test) needs the
    // address before the first query, while stdout stays machine-clean.
    eprintln!(
        "gsb serve: listening on http://{bound} ({} cliques over {} vertices, {threads} workers)",
        index.len(),
        index.n()
    );
    eprintln!("gsb serve: endpoints: /health /stats /containing/V /size/LO/HI /max /overlap/V/W");

    let shutdown = ShutdownToken::global();
    let report = server.run(&shutdown)?;
    if let Some(path) = &metrics_out {
        eprintln!("gsb serve: metrics written to {}", path.display());
    }
    match shutdown.signal() {
        // The conventional loud exit: 128 + signal, with the drain
        // evidence in the message.
        Some(signal) => Err(CliError::Drained {
            signal,
            connections: report.connections,
            requests: report.requests,
        }),
        // run() only returns once shutdown is requested; a missing
        // signal would mean an embedder's private token fired.
        None => Ok(format!(
            "served {} requests over {} connections\n",
            report.requests, report.connections
        )),
    }
}
