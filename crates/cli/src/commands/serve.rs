//! `gsb serve` — serve a `gsb index` directory over HTTP until a
//! SIGINT/SIGTERM asks for a graceful drain.

use crate::args::Args;
use crate::CliError;
use gsb_core::ShutdownToken;
use gsb_index::{CliqueIndex, ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// `gsb serve`
pub fn serve(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(
        argv,
        &[
            "addr",
            "threads",
            "deadline-secs",
            "request-deadline-ms",
            "queue-limit",
            "rate-limit",
            "rate-burst",
            "max-header-bytes",
            "reload-poll-ms",
            "metrics-out",
            "access-log",
            "access-log-max-bytes",
            "slow-query-ms",
            "slow-query-log",
            "trace-seed",
        ],
        &[],
        1,
    )?;
    let dir = a.required_positional(0, "INDEX_DIR")?;
    let addr = a.flag("addr").unwrap_or("127.0.0.1:7700");
    let threads: usize = a.flag_or("threads", 4)?;
    let deadline_secs: u64 = a.flag_or("deadline-secs", 10)?;
    let request_deadline_ms: u64 = a.flag_or("request-deadline-ms", 5000)?;
    let queue_limit: usize = a.flag_or("queue-limit", 128)?;
    let rate_limit: f64 = a.flag_or("rate-limit", 0.0)?;
    let rate_burst: u32 = a.flag_or("rate-burst", 8)?;
    let max_header_bytes: usize = a.flag_or("max-header-bytes", 8192)?;
    let reload_poll_ms: u64 = a.flag_or("reload-poll-ms", 0)?;
    let metrics_out = a.flag("metrics-out").map(PathBuf::from);
    let access_log = a.flag("access-log").map(PathBuf::from);
    let access_log_max_bytes: u64 = a.flag_or("access-log-max-bytes", 64 * 1024 * 1024)?;
    let slow_query_ms: u64 = a.flag_or("slow-query-ms", 0)?;
    let slow_query_log = a.flag("slow-query-log").map(PathBuf::from);
    let trace_seed: u64 = a.flag_or("trace-seed", 17)?;
    // Slow queries need somewhere to go: an explicit --slow-query-log
    // wins, else derive `<access-log>.slow`.
    let slow_query_log = match (slow_query_ms > 0, slow_query_log, &access_log) {
        (false, _, _) => None,
        (true, Some(path), _) => Some(path),
        (true, None, Some(access)) => {
            let mut name = access.as_os_str().to_os_string();
            name.push(".slow");
            Some(PathBuf::from(name))
        }
        (true, None, None) => {
            return Err(CliError::Usage(
                "--slow-query-ms requires --slow-query-log or --access-log".into(),
            ))
        }
    };

    let index_dir = Path::new(dir).to_path_buf();
    let index = Arc::new(CliqueIndex::open(&index_dir).map_err(CliError::Store)?);
    let config = ServeConfig {
        threads,
        deadline: Duration::from_secs(deadline_secs.max(1)),
        request_deadline: Duration::from_millis(request_deadline_ms.max(1)),
        queue_limit: queue_limit.max(1),
        rate_limit: (rate_limit > 0.0).then_some(rate_limit),
        rate_burst: rate_burst.max(1),
        max_header_bytes: max_header_bytes.max(64),
        reload_poll: (reload_poll_ms > 0).then(|| Duration::from_millis(reload_poll_ms)),
        index_dir: (reload_poll_ms > 0).then(|| index_dir.clone()),
        metrics_out: metrics_out.clone(),
        access_log: access_log.clone(),
        access_log_max_bytes,
        slow_query_ms: (slow_query_ms > 0).then_some(slow_query_ms),
        slow_query_log,
        trace_seed,
    };
    let server = Server::bind(Arc::clone(&index), addr, config)?;
    let bound = server.local_addr()?;
    // Stderr, eagerly: the operator (and the CI smoke test) needs the
    // address before the first query, while stdout stays machine-clean.
    eprintln!(
        "gsb serve: listening on http://{bound} ({} cliques over {} vertices, {threads} workers, generation {})",
        index.len(),
        index.n(),
        index.generation()
    );
    eprintln!(
        "gsb serve: endpoints: /health /ready /stats /get/ID /containing/V /size/LO/HI /max /overlap/V/W /metrics /metrics-json"
    );
    if let Some(path) = &access_log {
        eprintln!("gsb serve: access log at {}", path.display());
    }

    let shutdown = ShutdownToken::global();
    let report = server.run(&shutdown)?;
    if let Some(path) = &metrics_out {
        eprintln!("gsb serve: metrics written to {}", path.display());
    }
    if report.shed > 0 || report.rate_limited > 0 || report.degraded > 0 || report.reloads > 0 {
        eprintln!(
            "gsb serve: shed {} connections, rate-limited {}, degraded {}, hot-reloads {}",
            report.shed, report.rate_limited, report.degraded, report.reloads
        );
    }
    match shutdown.signal() {
        // The conventional loud exit: 128 + signal, with the drain
        // evidence in the message.
        Some(signal) => Err(CliError::Drained {
            signal,
            connections: report.connections,
            requests: report.requests,
        }),
        // run() only returns once shutdown is requested; a missing
        // signal would mean an embedder's private token fired.
        None => Ok(format!(
            "served {} requests over {} connections\n",
            report.requests, report.connections
        )),
    }
}
