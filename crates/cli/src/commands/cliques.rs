//! `gsb cliques` — levelwise maximal-clique enumeration, with the
//! `--backend` bitmap-representation switch and the fault-tolerant
//! pipeline path (checkpointing, memory budget, telemetry).

use super::{load, render_cliques};
use crate::args::Args;
use crate::CliError;
use gsb_core::checkpoint::{CheckpointConfig, RunMeta};
use gsb_core::sink::{CollectSink, CountSink};
use gsb_core::store::SpillConfig;
use gsb_core::{
    BackendChoice, CliqueEnumerator, CliquePipeline, EnumConfig, EnumStats, ParallelConfig,
    ParallelEnumerator, PipelineReport, Scheduler, WriterSink,
};
use gsb_graph::BitGraph;
use gsb_telemetry::{RunTelemetry, TelemetryConfig};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// `gsb cliques`
pub fn cliques(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(
        argv,
        &[
            "min",
            "max",
            "threads",
            "spill-budget",
            "order",
            "out",
            "backend",
            "checkpoint-dir",
            "checkpoint-secs",
            "memory-budget",
            "disk-budget",
            "worker-deadline-secs",
            "metrics-out",
            "scheduler",
        ],
        &["count-only", "progress"],
        1,
    )?;
    let path = a.required_positional(0, "FILE")?;
    let g = load(path)?;
    let config = EnumConfig {
        min_k: a.flag_or("min", 3)?,
        max_k: a.flag_opt("max")?,
        record_costs: false,
    };
    let threads: usize = a.flag_or("threads", 1)?;
    let spill_budget: Option<usize> = a.flag_opt("spill-budget")?;
    let count_only = a.switch("count-only");
    let backend = match a.flag("backend") {
        Some(name) => name.parse::<BackendChoice>().map_err(CliError::Usage)?,
        None => BackendChoice::Dense,
    };
    let scheduler = match a.flag("scheduler") {
        Some(name) => name.parse::<Scheduler>().map_err(CliError::Usage)?,
        None => Scheduler::default(),
    };

    // Pipeline path: a non-dense backend, checkpointing, and/or a
    // memory budget route through CliquePipeline instead of the raw
    // enumerators.
    let checkpoint_dir = a.flag("checkpoint-dir").map(str::to_string);
    let checkpoint_secs: Option<u64> = a.flag_opt("checkpoint-secs")?;
    let memory_budget: Option<usize> = a.flag_opt("memory-budget")?;
    let disk_budget: Option<u64> = a.flag_opt("disk-budget")?;
    let worker_deadline_secs: Option<u64> = a.flag_opt("worker-deadline-secs")?;
    if disk_budget.is_some() && checkpoint_dir.is_none() {
        return Err(CliError::Usage(
            "--disk-budget requires --checkpoint-dir (it caps checkpoint bytes)".into(),
        ));
    }
    let telemetry_config = TelemetryConfig {
        metrics_out: a.flag("metrics-out").map(PathBuf::from),
        progress: a.switch("progress"),
    };
    if backend != BackendChoice::Dense
        || checkpoint_dir.is_some()
        || memory_budget.is_some()
        || worker_deadline_secs.is_some()
        || !telemetry_config.is_off()
    {
        if a.flag("order").is_some() || spill_budget.is_some() {
            return Err(CliError::Usage(
                "--backend/--checkpoint-dir/--memory-budget/--metrics-out/--progress conflict \
                 with --order and --spill-budget"
                    .into(),
            ));
        }
        return cliques_pipeline(
            &a,
            path,
            &g,
            config,
            backend,
            scheduler,
            threads,
            count_only,
            checkpoint_dir.as_deref(),
            checkpoint_secs,
            memory_budget,
            disk_budget,
            worker_deadline_secs,
            telemetry_config,
        );
    }
    if checkpoint_secs.is_some() {
        return Err(CliError::Usage(
            "--checkpoint-secs requires --checkpoint-dir".into(),
        ));
    }

    // Optional vertex reordering (sequential path only).
    if let Some(order_name) = a.flag("order") {
        if threads != 1 || spill_budget.is_some() {
            return Err(CliError::Usage(
                "--order applies to the plain sequential run (no --threads/--spill-budget)".into(),
            ));
        }
        let ordering = match order_name {
            "natural" => gsb_core::order::Ordering::Natural,
            "degeneracy" => gsb_core::order::Ordering::Degeneracy,
            "degree" => gsb_core::order::Ordering::DegreeDescending,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown --order {other:?} (natural | degeneracy | degree)"
                )))
            }
        };
        let mut collect = CollectSink::default();
        gsb_core::order::enumerate_ordered(&g, ordering, config, &mut collect);
        let count = CountSink {
            count: collect.cliques.len(),
        };
        if count_only {
            collect.cliques.clear();
        }
        return Ok(render_cliques(&collect, &count, count_only));
    }

    // Optional streaming output to a file.
    if let Some(out_path) = a.flag("out") {
        if count_only {
            return Err(CliError::Usage("--out and --count-only conflict".into()));
        }
        let file = std::fs::File::create(out_path)?;
        let mut sink = gsb_core::WriterSink::new(file);
        if threads == 1 {
            CliqueEnumerator::new(config).enumerate(&g, &mut sink);
        } else {
            let enumerator = ParallelEnumerator::new(ParallelConfig {
                threads,
                enum_config: config,
                scheduler,
                ..Default::default()
            });
            let garc = Arc::new(g);
            enumerator.enumerate(&garc, &mut sink);
        }
        let written = sink.finish()?;
        return Ok(format!("wrote {written} maximal cliques to {out_path}\n"));
    }

    let mut collect = CollectSink::default();
    let mut count = CountSink::default();
    if let Some(budget) = spill_budget {
        if threads != 1 {
            return Err(CliError::Usage(
                "--spill-budget requires --threads 1 (the out-of-core store is sequential)".into(),
            ));
        }
        let spill = SpillConfig::in_temp(budget);
        let enumerator = CliqueEnumerator::new(config);
        let stats = if count_only {
            enumerator.enumerate_spilled(&g, &mut count, &spill)?
        } else {
            enumerator.enumerate_spilled(&g, &mut collect, &spill)?
        };
        let mut out = render_cliques(&collect, &count, count_only);
        let _ = writeln!(
            out,
            "out-of-core: {} bytes read back across {} levels",
            stats.total_bytes_read(),
            stats.levels.len()
        );
        return Ok(out);
    }
    if threads == 1 {
        let enumerator = CliqueEnumerator::new(config);
        if count_only {
            enumerator.enumerate(&g, &mut count);
        } else {
            enumerator.enumerate(&g, &mut collect);
        }
    } else {
        let enumerator = ParallelEnumerator::new(ParallelConfig {
            threads,
            enum_config: config,
            scheduler,
            ..Default::default()
        });
        let garc = Arc::new(g);
        if count_only {
            enumerator.enumerate(&garc, &mut count);
        } else {
            enumerator.enumerate(&garc, &mut collect);
        }
    }
    Ok(render_cliques(&collect, &count, count_only))
}

/// The pipeline `gsb cliques` variant: a selectable bitmap backend,
/// checkpointing, and/or a memory budget through [`CliquePipeline`].
#[allow(clippy::too_many_arguments)]
fn cliques_pipeline(
    a: &Args,
    graph_path: &str,
    g: &BitGraph,
    config: EnumConfig,
    backend: BackendChoice,
    scheduler: Scheduler,
    threads: usize,
    count_only: bool,
    checkpoint_dir: Option<&str>,
    checkpoint_secs: Option<u64>,
    memory_budget: Option<usize>,
    disk_budget: Option<u64>,
    worker_deadline_secs: Option<u64>,
    telemetry_config: TelemetryConfig,
) -> Result<String, CliError> {
    let mut pipe = CliquePipeline::new()
        .min_size(config.min_k)
        .threads(threads)
        .backend(backend)
        .scheduler(scheduler)
        .skip_exact_bound();
    if let Some(mx) = config.max_k {
        pipe = pipe.max_size(mx);
    }
    if let Some(budget) = memory_budget {
        pipe = pipe.memory_budget(budget);
    }
    if let Some(secs) = worker_deadline_secs {
        pipe = pipe.worker_deadline(std::time::Duration::from_secs(secs.max(1)));
    }
    if !telemetry_config.is_off() {
        pipe = pipe.telemetry(Arc::new(RunTelemetry::new(telemetry_config)?));
    }

    if let Some(dir) = checkpoint_dir {
        // Resume needs a durable output file to reconcile against:
        // in-memory results would vanish with the crash being guarded
        // against.
        let Some(out_path) = a.flag("out") else {
            return Err(CliError::Usage(
                "--checkpoint-dir requires --out FILE (resume appends to it)".into(),
            ));
        };
        if count_only {
            return Err(CliError::Usage(
                "--checkpoint-dir conflicts with --count-only".into(),
            ));
        }
        let mut ckpt = match checkpoint_secs {
            Some(secs) => CheckpointConfig::every_secs(dir, secs),
            None => CheckpointConfig::every_level(dir),
        };
        if let Some(bytes) = disk_budget {
            ckpt = ckpt.disk_budget(bytes);
        }
        std::fs::create_dir_all(dir)?;
        RunMeta {
            graph: graph_path.to_string(),
            min_k: config.min_k,
            max_k: config.max_k,
            threads,
            out: Some(out_path.to_string()),
            backend,
            scheduler,
        }
        .save(Path::new(dir))?;
        // Supervised mode: checkpointed runs react to SIGINT/SIGTERM
        // at barriers (the binary installs the handlers) and isolate
        // poison sub-lists into the quarantine sidecar instead of
        // aborting the whole run.
        pipe = pipe
            .checkpoint(ckpt)
            .shutdown(gsb_core::ShutdownToken::global())
            .quarantine(Path::new(dir).join("quarantine.jsonl"));
        let file = std::fs::File::create(out_path)?;
        let mut sink = WriterSink::new(file);
        let report = pipe.try_run(g, &mut sink)?;
        let written = sink.finish()?;
        let mut out = format!("wrote {written} maximal cliques to {out_path}\n");
        let _ = writeln!(
            out,
            "checkpointed {} level(s) in {dir} (cleaned up on completion)",
            report.checkpoints.len()
        );
        append_degradation_note(&mut out, &report);
        append_quarantine_note(&mut out, &report, dir);
        return Ok(out);
    }

    // No checkpointing: any sink works.
    if let Some(out_path) = a.flag("out") {
        if count_only {
            return Err(CliError::Usage("--out and --count-only conflict".into()));
        }
        let file = std::fs::File::create(out_path)?;
        let mut sink = WriterSink::new(file);
        let report = pipe.try_run(g, &mut sink)?;
        let written = sink.finish()?;
        let mut out = format!("wrote {written} maximal cliques to {out_path}\n");
        append_degradation_note(&mut out, &report);
        return Ok(out);
    }
    let mut collect = CollectSink::default();
    let mut count = CountSink::default();
    let report = if count_only {
        pipe.try_run(g, &mut count)?
    } else {
        pipe.try_run(g, &mut collect)?
    };
    let mut out = render_cliques(&collect, &count, count_only);
    append_degradation_note(&mut out, &report);
    Ok(out)
}

pub(super) fn append_degradation_note(out: &mut String, report: &PipelineReport) {
    if let Some(k) = report.degraded_at {
        let bytes = report
            .degraded_stats
            .as_ref()
            .map_or(0, EnumStats::total_bytes_read);
        let _ = writeln!(
            out,
            "memory budget reached at level {k}: finished out of core ({bytes} bytes read back)"
        );
    }
}

/// Quarantined work is never silently dropped: say how much was
/// skipped and where the record of it lives.
pub(super) fn append_quarantine_note(out: &mut String, report: &PipelineReport, dir: &str) {
    let quarantined = report.parallel_stats.as_ref().map_or(0, |s| s.quarantined);
    if quarantined > 0 {
        let _ = writeln!(
            out,
            "warning: {quarantined} sub-list(s) quarantined to {dir}/quarantine.jsonl — \
             output is exact except descendants of those prefixes"
        );
    }
}
