//! `gsb router` — front a sharded, replicated tier of `gsb serve`
//! backends with health-checked failover, circuit breakers, hedged
//! retries, and degraded-exact scatter-gather.

use crate::args::Args;
use crate::CliError;
use gsb_core::ShutdownToken;
use gsb_index::{Router, RouterConfig, Topology};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// `gsb router`
pub fn router(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(
        argv,
        &[
            "addr",
            "threads",
            "deadline-secs",
            "request-deadline-ms",
            "queue-limit",
            "max-header-bytes",
            "probe-interval-ms",
            "breaker-failures",
            "breaker-cooldown-ms",
            "try-timeout-ms",
            "hedge-percentile",
            "hedge-min-ms",
            "retry-seed",
            "trace-seed",
            "metrics-out",
        ],
        &[],
        1,
    )?;
    let topology_path = a.required_positional(0, "TOPOLOGY")?;
    let addr = a.flag("addr").unwrap_or("127.0.0.1:7790");
    let defaults = RouterConfig::default();
    let hedge_percentile: f64 = a.flag_or("hedge-percentile", defaults.hedge_percentile)?;
    if !(0.0..=1.0).contains(&hedge_percentile) {
        return Err(CliError::Usage(
            "--hedge-percentile must be within 0..=1 (0 disables hedging)".into(),
        ));
    }
    let config = RouterConfig {
        threads: a.flag_or("threads", defaults.threads)?.max(1),
        deadline: Duration::from_secs(a.flag_or("deadline-secs", 10u64)?.max(1)),
        request_deadline: Duration::from_millis(a.flag_or("request-deadline-ms", 5000u64)?.max(1)),
        queue_limit: a.flag_or("queue-limit", defaults.queue_limit)?.max(1),
        max_header_bytes: a
            .flag_or("max-header-bytes", defaults.max_header_bytes)?
            .max(64),
        probe_interval: Duration::from_millis(a.flag_or("probe-interval-ms", 250u64)?.max(10)),
        breaker_failures: a
            .flag_or("breaker-failures", defaults.breaker_failures)?
            .max(1),
        breaker_cooldown: Duration::from_millis(a.flag_or("breaker-cooldown-ms", 1000u64)?.max(1)),
        try_timeout: Duration::from_millis(a.flag_or("try-timeout-ms", 1000u64)?.max(1)),
        hedge_percentile,
        hedge_min: Duration::from_millis(a.flag_or("hedge-min-ms", 20u64)?.max(1)),
        retry_seed: a.flag_or("retry-seed", defaults.retry_seed)?,
        trace_seed: a.flag_or("trace-seed", defaults.trace_seed)?,
        metrics_out: a.flag("metrics-out").map(PathBuf::from),
    };

    let topology = Topology::load(Path::new(topology_path)).map_err(CliError::Store)?;
    let shards = topology.shards.len();
    let replicas: usize = topology.shards.iter().map(|s| s.replicas.len()).sum();
    let cliques = topology.total_cliques();
    let metrics_out = config.metrics_out.clone();
    let front = Router::bind(topology, addr, config)?;
    let bound = front.local_addr()?;
    // Stderr, eagerly: the operator (and the CI smoke test) needs the
    // address before the first query, while stdout stays machine-clean.
    eprintln!(
        "gsb router: listening on http://{bound} ({shards} shards, {replicas} replicas, {cliques} cliques)"
    );
    eprintln!(
        "gsb router: endpoints: /health /ready /stats /get/ID /containing/V /size/LO/HI /max /overlap/V/W /metrics /metrics-json"
    );

    let shutdown = ShutdownToken::global();
    let report = front.run(&shutdown)?;
    if let Some(path) = &metrics_out {
        eprintln!("gsb router: metrics written to {}", path.display());
    }
    if report.retries > 0 || report.hedges > 0 || report.degraded_answers > 0 || report.shed > 0 {
        eprintln!(
            "gsb router: retried {} tries, hedged {} ({} wins), degraded {} answers, shed {}",
            report.retries, report.hedges, report.hedge_wins, report.degraded_answers, report.shed
        );
    }
    match shutdown.signal() {
        Some(signal) => Err(CliError::Drained {
            signal,
            connections: report.connections,
            requests: report.requests,
        }),
        None => Ok(format!(
            "routed {} requests over {} connections\n",
            report.requests, report.connections
        )),
    }
}
