//! `gsb resume` — continue a checkpointed `cliques` run after a crash.

use super::cliques::append_degradation_note;
use super::load;
use crate::args::Args;
use crate::CliError;
use gsb_bitset::{BitSet, HybridSet, WahBitSet};
use gsb_core::checkpoint::{
    latest_checkpoint, load_stop_cause, CheckpointConfig, RunMeta, RunProgress,
};
use gsb_core::{BackendChoice, CliquePipeline, ShutdownToken, WriterSink};
use gsb_telemetry::{RunTelemetry, TelemetryConfig};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// `gsb resume` — continue a checkpointed `cliques` run after a crash.
pub fn resume(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(
        argv,
        &["threads", "worker-deadline-secs", "metrics-out"],
        &["progress"],
        1,
    )?;
    let dir = a.required_positional(0, "CHECKPOINT_DIR")?;
    // Read the stop cause before the pipeline touches the directory
    // (resuming rewrites run.meta state on the next interruption).
    let stop_cause = load_stop_cause(Path::new(dir));
    let meta = RunMeta::load(Path::new(dir)).map_err(|_| {
        CliError::Runtime(format!(
            "no run.meta in {dir} — nothing to resume (directory never checkpointed, \
             or the run completed and cleaned up)"
        ))
    })?;
    let g = load(&meta.graph)?;
    // Probe with the representation the run was checkpointed in; a
    // dense probe of a WAH checkpoint would be a backend mismatch.
    let k_ckpt = match meta.backend {
        BackendChoice::Dense => latest_checkpoint::<BitSet>(Path::new(dir), g.n())?.map(|(k, _)| k),
        BackendChoice::Wah => {
            latest_checkpoint::<WahBitSet>(Path::new(dir), g.n())?.map(|(k, _)| k)
        }
        BackendChoice::Hybrid => {
            latest_checkpoint::<HybridSet>(Path::new(dir), g.n())?.map(|(k, _)| k)
        }
    };
    let Some(k_ckpt) = k_ckpt else {
        return Err(CliError::Runtime(format!(
            "no usable checkpoint in {dir} (the run may have completed)"
        )));
    };
    let out_path = meta.out.clone().ok_or_else(|| {
        CliError::Runtime("run.meta records no output file; cannot reconcile".into())
    })?;
    // Reconcile the output file with the checkpoint cut: the resumed
    // run re-emits every clique of size > k_ckpt, so keep only
    // well-formed lines at or below it (this also drops a line torn by
    // the crash mid-write).
    let kept = truncate_output(&out_path, k_ckpt)?;
    let file = std::fs::OpenOptions::new().append(true).open(&out_path)?;
    let mut sink = WriterSink::new(file);
    let threads = a
        .flag_opt::<usize>("threads")?
        .unwrap_or(meta.threads)
        .max(1);
    let mut pipe = CliquePipeline::new()
        .min_size(meta.min_k.max(1))
        .threads(threads)
        .backend(meta.backend)
        .scheduler(meta.scheduler)
        .skip_exact_bound()
        .checkpoint(CheckpointConfig::every_level(dir))
        .shutdown(ShutdownToken::global())
        .quarantine(Path::new(dir).join("quarantine.jsonl"));
    if let Some(mx) = meta.max_k {
        pipe = pipe.max_size(mx);
    }
    if let Some(secs) = a.flag_opt::<u64>("worker-deadline-secs")? {
        pipe = pipe.worker_deadline(std::time::Duration::from_secs(secs.max(1)));
    }
    // Cumulative telemetry persisted at the last checkpoint barrier:
    // report how far the interrupted run had gotten, and let the
    // pipeline seed its counters from it so exported totals continue.
    let prior = RunProgress::load(Path::new(dir)).ok();
    let telemetry_config = TelemetryConfig {
        metrics_out: a.flag("metrics-out").map(PathBuf::from),
        progress: a.switch("progress"),
    };
    if !telemetry_config.is_off() {
        pipe = pipe.telemetry(Arc::new(RunTelemetry::new(telemetry_config)?));
    }
    let report = pipe.resume(&g, &mut sink)?;
    let appended = sink.finish()?;
    let mut out = String::new();
    match stop_cause {
        Some(cause) => {
            let _ = writeln!(out, "previous run stopped: {cause}");
        }
        None => {
            let _ = writeln!(
                out,
                "previous run stopped: crash or hard kill (no stop cause on record)"
            );
        }
    }
    if let Some(p) = prior {
        let _ = writeln!(
            out,
            "prior progress: {} cliques across {} level(s) in {:.1}s before the interruption",
            p.cliques_emitted,
            p.levels_done,
            p.wall_ms as f64 / 1e3
        );
    }
    let _ = writeln!(
        out,
        "resumed {} from its level-{k_ckpt} checkpoint: kept {kept} cliques (size <= {k_ckpt}), \
         appended {appended} more to {out_path}",
        meta.graph
    );
    append_degradation_note(&mut out, &report);
    Ok(out)
}

/// Keep only well-formed `size\tv1 v2 ...` lines with `size <= max_k`;
/// atomically replace the file. Returns how many lines were kept.
fn truncate_output(path: &str, max_k: usize) -> Result<usize, CliError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        // The crash may have happened before the file was created.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(CliError::Io(e)),
    };
    let mut kept = String::with_capacity(text.len());
    let mut kept_lines = 0usize;
    for line in text.lines() {
        let Some((size, rest)) = line.split_once('\t') else {
            continue;
        };
        let Ok(k) = size.parse::<usize>() else {
            continue;
        };
        if k > max_k || rest.split_whitespace().count() != k {
            continue;
        }
        kept.push_str(line);
        kept.push('\n');
        kept_lines += 1;
    }
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, kept.as_bytes())?;
    std::fs::rename(&tmp, path)?;
    Ok(kept_lines)
}
