//! `gsb bench-update` — incremental maintenance vs. full rebuild.
//!
//! Self-contained: generates a planted-module graph, builds an
//! updatable index, then times `gsb update` batches of growing size
//! (1, 4, 16, 64 edge toggles) against the cost of re-enumerating and
//! re-indexing the patched graph from scratch. The point of the delta
//! chain is that a single-edge edit touches one neighborhood instead
//! of the whole graph — the bench asserts that claim (≥10× for
//! single-edge edits at full size) and commits the numbers to a JSON
//! file (default `results/BENCH_update.json`) whose *schema* is diffed
//! in CI; values are hardware-dependent, the shape is not.

use crate::args::Args;
use crate::CliError;
use gsb_core::{CliqueEnumerator, CliqueSink, EnumConfig};
use gsb_graph::generators::{planted, Module};
use gsb_graph::BitGraph;
use gsb_index::{EditScript, IndexWriter};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

const MIN_K: usize = 3;
const BATCHES: [usize; 4] = [1, 4, 16, 64];

/// `gsb bench-update`
pub fn bench_update(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &["out", "seed"], &["smoke"], 0)?;
    let out_path = PathBuf::from(a.flag("out").unwrap_or("results/BENCH_update.json"));
    let seed: u64 = a.flag_or("seed", 21)?;
    let smoke = a.switch("smoke");

    // The levelwise-scale target from the paper's workload: n=400 with
    // planted modules so the clique population is non-trivial. Smoke
    // keeps CI fast; the speedup floor is only enforced at full size
    // where the asymptotic gap actually shows.
    let (n, trials, required) = if smoke { (120, 2, 2.0) } else { (400, 3, 10.0) };
    // p=0.30 puts the full-size graph deep in the levelwise regime
    // (~280k maximal cliques at n=400): the rebuild competitor pays for
    // all of them while a single-edge update touches one neighborhood
    // plus a fixed durability floor (three fsynced appends + manifest).
    let g = planted(
        n,
        if smoke { 0.25 } else { 0.30 },
        &[Module::clique(13), Module::clique(11), Module::clique(9)],
        seed,
    );
    let work = std::env::temp_dir().join(format!("gsb-bench-update-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work)?;
    let base_dir = work.join("base");
    let base_us = time_rebuild(&base_dir, &g)?;
    let base_cliques = gsb_index::CliqueIndex::open(&base_dir)
        .map_err(CliError::Store)?
        .len();

    let mut rng = Rng::new(seed ^ 0xB37C);
    let mut rows = Vec::new();
    for (bi, &edits) in BATCHES.iter().enumerate() {
        let script = toggle_script(&g, edits, &mut rng);
        // Best-of-`trials` update time, each against a fresh copy of
        // the base index (update mutates the directory in place).
        let mut best_update = u64::MAX;
        let mut outcome = None;
        for t in 0..trials {
            let dir = work.join(format!("upd-{bi}-{t}"));
            copy_dir(&base_dir, &dir)?;
            let t0 = Instant::now();
            let o = gsb_index::update(&dir, &script, None).map_err(CliError::Store)?;
            best_update = best_update.min(t0.elapsed().as_micros() as u64);
            outcome = Some(o);
        }
        let o = outcome.expect("at least one trial");
        // The competitor: enumerate + index the patched graph from
        // scratch, timed on the same machine moments later.
        let mut patched = g.clone();
        for &(u, v) in &script.remove {
            patched.remove_edge(u, v);
        }
        for &(u, v) in &script.add {
            patched.add_edge(u, v);
        }
        let mut best_rebuild = u64::MAX;
        for t in 0..trials {
            let dir = work.join(format!("reb-{bi}-{t}"));
            best_rebuild = best_rebuild.min(time_rebuild(&dir, &patched)?);
        }
        let speedup = best_rebuild as f64 / best_update.max(1) as f64;
        rows.push(Row {
            edits,
            update_us: best_update,
            rebuild_us: best_rebuild,
            speedup,
            new_cliques: o.new_cliques,
            tombstones: o.new_tombstones,
        });
    }
    let _ = std::fs::remove_dir_all(&work);

    let single = rows[0].speedup;
    let batch_json: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"gsb_bench_update\",\n  \"smoke\": {smoke},\n  \"seed\": {seed},\n  \"n\": {n},\n  \"min_k\": {MIN_K},\n  \"base_cliques\": {base_cliques},\n  \"base_build_us\": {base_us},\n  \"batches\": [\n    {}\n  ],\n  \"single_edge_speedup\": {single:.2},\n  \"required_speedup\": {required:.1}\n}}\n",
        batch_json.join(",\n    "),
    );
    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out_path, &json)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-update ({}): n={n}, {base_cliques} base cliques ({base_us}us to build)",
        if smoke { "smoke" } else { "full" }
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "  {:>3} edit(s): update {:>8}us vs rebuild {:>8}us — {:.1}x ({} new, {} tombstoned)",
            r.edits, r.update_us, r.rebuild_us, r.speedup, r.new_cliques, r.tombstones
        );
    }
    let _ = writeln!(out, "results written to {}", out_path.display());
    if single < required {
        return Err(CliError::Runtime(format!(
            "single-edge update speedup {single:.1}x is below the required {required:.0}x"
        )));
    }
    Ok(out)
}

struct Row {
    edits: usize,
    update_us: u64,
    rebuild_us: u64,
    speedup: f64,
    new_cliques: u64,
    tombstones: u64,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "{{\"edits\":{},\"update_us\":{},\"rebuild_us\":{},\"speedup\":{:.2},\"new_cliques\":{},\"tombstones\":{}}}",
            self.edits, self.update_us, self.rebuild_us, self.speedup, self.new_cliques, self.tombstones
        )
    }
}

/// Enumerate `g` from scratch into a fresh updatable index at `dir`,
/// returning the wall time in microseconds.
fn time_rebuild(dir: &Path, g: &BitGraph) -> Result<u64, CliError> {
    let _ = std::fs::remove_dir_all(dir);
    let t0 = Instant::now();
    let mut w = IndexWriter::create(dir, g.n())
        .map_err(CliError::Store)?
        .min_size(MIN_K as u32)
        .snapshot(g)
        .map_err(CliError::Store)?;
    let mut cliques = Vec::new();
    {
        let mut sink = gsb_core::CollectSink::default();
        CliqueEnumerator::new(EnumConfig {
            min_k: MIN_K,
            max_k: None,
            record_costs: false,
        })
        .enumerate(g, &mut sink);
        cliques.append(&mut sink.cliques);
    }
    cliques.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    for c in &cliques {
        w.maximal(c);
    }
    w.finish().map_err(CliError::Store)?;
    Ok(t0.elapsed().as_micros() as u64)
}

/// `edits` edge toggles (remove if present, add if absent), tracked on
/// a scratch copy so every toggle in the batch is effective.
fn toggle_script(g: &BitGraph, edits: usize, rng: &mut Rng) -> EditScript {
    let mut scratch = g.clone();
    let mut script = EditScript::default();
    while script.remove.len() + script.add.len() < edits {
        let u = rng.below(g.n());
        let v = rng.below(g.n());
        if u == v {
            continue;
        }
        let (u, v) = (u.min(v), u.max(v));
        if scratch.has_edge(u, v) {
            scratch.remove_edge(u, v);
            script.remove.push((u, v));
        } else {
            scratch.add_edge(u, v);
            script.add.push((u, v));
        }
    }
    script
}

fn copy_dir(from: &Path, to: &Path) -> Result<(), CliError> {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to)?;
    for entry in std::fs::read_dir(from)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            std::fs::copy(entry.path(), to.join(entry.file_name()))?;
        }
    }
    Ok(())
}

/// Deterministic xorshift64* — the bench owns its randomness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}
