//! `gsb maxclique` / `gsb vc` / `gsb fvs` — the exact and FPT solvers.

use super::load;
use crate::args::Args;
use crate::CliError;

/// `gsb maxclique`
pub fn maxclique(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &[], &["via-vc"], 1)?;
    let path = a.required_positional(0, "FILE")?;
    let g = load(path)?;
    let clique: Vec<usize> = if a.switch("via-vc") {
        gsb_fpt::maximum_clique_via_vc(&g)
    } else {
        gsb_core::maximum_clique(&g)
            .into_iter()
            .map(|v| v as usize)
            .collect()
    };
    let text: Vec<String> = clique.iter().map(usize::to_string).collect();
    Ok(format!(
        "maximum clique size {}: {}\n",
        clique.len(),
        text.join(" ")
    ))
}

/// `gsb vc`
pub fn vertex_cover(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &["k"], &[], 1)?;
    let path = a.required_positional(0, "FILE")?;
    let g = load(path)?;
    match a.flag_opt::<usize>("k")? {
        Some(k) => match gsb_fpt::vertex_cover_decision(&g, k) {
            Some(cover) => {
                let text: Vec<String> = cover.iter().map(usize::to_string).collect();
                Ok(format!(
                    "YES: cover of size {} <= {k}: {}\n",
                    cover.len(),
                    text.join(" ")
                ))
            }
            None => Ok(format!("NO: no vertex cover of size <= {k}\n")),
        },
        None => {
            let cover = gsb_fpt::minimum_vertex_cover(&g);
            let text: Vec<String> = cover.iter().map(usize::to_string).collect();
            Ok(format!(
                "minimum vertex cover size {}: {}\n",
                cover.len(),
                text.join(" ")
            ))
        }
    }
}

/// `gsb fvs`
pub fn fvs(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &[], &[], 1)?;
    let path = a.required_positional(0, "FILE")?;
    let g = load(path)?;
    let set = gsb_fpt::feedback_vertex_set(&g);
    let text: Vec<String> = set.iter().map(usize::to_string).collect();
    Ok(format!(
        "minimum feedback vertex set size {}: {}\n",
        set.len(),
        text.join(" ")
    ))
}
