//! `gsb bench-serve` — closed-loop load generator for the query server.
//!
//! Self-contained: generates a planted-module graph, builds a
//! throwaway index, starts an in-process [`Server`], and drives it
//! with closed-loop client threads through a real socket. Two
//! scenarios run back to back:
//!
//! * **steady** — a modest client pool against a generously
//!   provisioned server: the happy-path QPS/latency baseline.
//! * **overload** — a larger pool against a deliberately tiny
//!   admission queue and per-endpoint rate limit: what matters here is
//!   that the server *sheds typed* (429/503 with `Retry-After`)
//!   instead of stretching latency, and that accepted requests stay
//!   fast.
//! * **scrape** (with `--scrape`) — the steady load again, but with
//!   the access log + slow-query log on and dedicated clients
//!   hammering `/metrics` and `/metrics-json`: measures what the
//!   observability stack costs (query p99 vs. the bare steady run)
//!   and that scrapes stay 200 under load.
//! * **router_steady / router_failover** (with `--router`) — the same
//!   query mix against a `gsb router` fronting 2 shards × 2 replicas
//!   (split with [`split_index`], every backend an in-process
//!   [`Server`]). The steady run baselines the routed path; the
//!   failover run kills one replica mid-load and commits what the tier
//!   did about it — failover latency percentiles, retry/hedge counts,
//!   and that answers stayed exact (zero degraded) because the shard's
//!   second replica survived.
//!
//! Results (QPS, latency percentiles, shed rate) are committed to a
//! JSON file (default `results/BENCH_serve.json`) whose *schema* is
//! diffed in CI — values are hardware-dependent, the shape is not.

use crate::args::Args;
use crate::CliError;
use gsb_core::{CliqueEnumerator, EnumConfig, ShutdownToken};
use gsb_graph::generators::{planted, Module};
use gsb_index::{
    split_index, CliqueIndex, IndexWriter, Router, RouterConfig, ServeConfig, ServeReport, Server,
    ShardSpec, Topology,
};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `gsb bench-serve`
pub fn bench_serve(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &["out", "seed"], &["smoke", "scrape", "router"], 0)?;
    let out_path = PathBuf::from(a.flag("out").unwrap_or("results/BENCH_serve.json"));
    let seed: u64 = a.flag_or("seed", 13)?;
    let smoke = a.switch("smoke");
    let with_scrape = a.switch("scrape");
    let with_router = a.switch("router");

    // A graph big enough for non-trivial postings, small enough that
    // the bench is self-contained and fast.
    let (n, duration) = if smoke {
        (60, Duration::from_millis(300))
    } else {
        (200, Duration::from_secs(2))
    };
    let g = planted(n, 0.06, &[Module::clique(9), Module::clique(6)], seed);
    let dir = std::env::temp_dir().join(format!("gsb-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let enumerator = CliqueEnumerator::new(EnumConfig::default());
    let mut writer = IndexWriter::create(&dir, g.n()).map_err(CliError::Store)?;
    enumerator.enumerate(&g, &mut writer);
    writer.finish().map_err(CliError::Store)?;

    let steady = run_scenario(
        &dir,
        ServeConfig {
            threads: 4,
            queue_limit: 256,
            rate_limit: None,
            ..ServeConfig::default()
        },
        4,
        0,
        duration,
        n as u32,
    )?;
    let overload = run_scenario(
        &dir,
        ServeConfig {
            threads: 2,
            queue_limit: 4,
            rate_limit: Some(if smoke { 400.0 } else { 800.0 }),
            rate_burst: 16,
            request_deadline: Duration::from_millis(1500),
            ..ServeConfig::default()
        },
        16,
        0,
        duration,
        n as u32,
    )?;
    // The scrape scenario repeats the steady query load with the full
    // observability stack on — access log, slow-query log, and a pool
    // of clients hammering /metrics + /metrics-json concurrently — so
    // the committed JSON records what watching the server costs.
    let scrape = if with_scrape {
        let access = dir.join("bench-access.jsonl");
        let s = run_scenario(
            &dir,
            ServeConfig {
                threads: 4,
                queue_limit: 256,
                rate_limit: None,
                access_log: Some(access.clone()),
                slow_query_ms: Some(250),
                ..ServeConfig::default()
            },
            4,
            2,
            duration,
            n as u32,
        )?;
        Some(s)
    } else {
        None
    };
    let router_runs = if with_router {
        let shards_dir = dir.join("shards");
        let summaries = split_index(&dir, &shards_dir, 2).map_err(CliError::Store)?;
        let steady = run_router_scenario(&summaries, 4, duration, n as u32, false)?;
        let failover = run_router_scenario(&summaries, 4, duration, n as u32, true)?;
        Some((steady, failover))
    } else {
        None
    };
    let _ = std::fs::remove_dir_all(&dir);

    let scrape_json = match &scrape {
        Some(s) => {
            // p99 under scrape+logging load relative to the bare steady
            // run: the acceptance gate is "observability costs <5%".
            let regression = s.p99_us as f64 / steady.p99_us.max(1) as f64;
            format!(
                ",\n    \"scrape\": {}",
                s.to_json_with(&format!("\"p99_vs_steady\":{regression:.4}"))
            )
        }
        None => String::new(),
    };
    let router_json = match &router_runs {
        Some((rs, rf)) => format!(
            ",\n    \"router_steady\": {},\n    \"router_failover\": {}",
            rs.to_json(),
            rf.to_json()
        ),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"gsb_bench_serve\",\n  \"smoke\": {smoke},\n  \"seed\": {seed},\n  \"scenarios\": {{\n    \"steady\": {},\n    \"overload\": {}{}{}\n  }}\n}}\n",
        steady.to_json(),
        overload.to_json(),
        scrape_json,
        router_json,
    );
    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out_path, &json)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-serve ({})",
        if smoke { "smoke" } else { "full" }
    );
    let mut scenarios = vec![("steady", &steady), ("overload", &overload)];
    if let Some(s) = &scrape {
        scenarios.push(("scrape", s));
    }
    for (name, s) in scenarios {
        let _ = writeln!(
            out,
            "  {name}: {} requests, {:.0} qps, p50 {}us p95 {}us p99 {}us, ok {}, rate-limited {}, shed {} ({:.1}% shed rate)",
            s.requests,
            s.qps,
            s.p50_us,
            s.p95_us,
            s.p99_us,
            s.ok,
            s.rate_limited,
            s.shed,
            100.0 * s.shed_rate,
        );
        if s.scrape_requests > 0 {
            let _ = writeln!(
                out,
                "          /metrics scrapes: {} ({} ok), p50 {}us p99 {}us; query p99 {:.2}x steady",
                s.scrape_requests,
                s.scrape_ok,
                s.scrape_p50_us,
                s.scrape_p99_us,
                s.p99_us as f64 / steady.p99_us.max(1) as f64,
            );
        }
    }
    if let Some((rs, rf)) = &router_runs {
        for (name, s) in [("router_steady", rs), ("router_failover", rf)] {
            let _ = writeln!(
                out,
                "  {name}: {} requests, {:.0} qps, p50 {}us p95 {}us p99 {}us, ok {}, degraded {}, errors {}; retries {}, hedges {} ({} wins)",
                s.requests,
                s.qps,
                s.p50_us,
                s.p95_us,
                s.p99_us,
                s.ok,
                s.degraded_ok,
                s.errors,
                s.retries,
                s.hedges,
                s.hedge_wins,
            );
        }
    }
    let _ = writeln!(out, "results written to {}", out_path.display());
    Ok(out)
}

/// Aggregated outcome of one routed-tier scenario.
struct RouterScenario {
    clients: usize,
    requests: u64,
    ok: u64,
    degraded_ok: u64,
    shed: u64,
    errors: u64,
    qps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
    killed_replica: bool,
    retries: u64,
    hedges: u64,
    hedge_wins: u64,
    degraded_answers: u64,
    router_requests: u64,
}

impl RouterScenario {
    fn to_json(&self) -> String {
        format!(
            "{{\"clients\":{},\"requests\":{},\"ok\":{},\"degraded_ok\":{},\"shed\":{},\"errors\":{},\"qps\":{:.2},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{},\"killed_replica\":{},\"retries\":{},\"hedges\":{},\"hedge_wins\":{},\"degraded_answers\":{},\"router_requests\":{}}}",
            self.clients,
            self.requests,
            self.ok,
            self.degraded_ok,
            self.shed,
            self.errors,
            self.qps,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
            self.killed_replica,
            self.retries,
            self.hedges,
            self.hedge_wins,
            self.degraded_answers,
            self.router_requests,
        )
    }
}

/// Start a 2-shards × 2-replicas tier plus a router in-process, drive
/// the usual query mix through the router, and (for the failover run)
/// gracefully kill one replica of shard 0 halfway through — the tier
/// must keep answering exactly through the surviving replica.
fn run_router_scenario(
    summaries: &[gsb_index::ShardSummary],
    clients: usize,
    duration: Duration,
    n: u32,
    kill_one: bool,
) -> Result<RouterScenario, CliError> {
    const REPLICAS: usize = 2;
    let mut backends = Vec::new(); // (shutdown, join handle)
    let mut shards = Vec::new();
    for s in summaries {
        let index = Arc::new(CliqueIndex::open(&s.dir).map_err(CliError::Store)?);
        let mut replicas = Vec::new();
        for _ in 0..REPLICAS {
            let server = Server::bind(
                Arc::clone(&index),
                "127.0.0.1:0",
                ServeConfig {
                    threads: 2,
                    queue_limit: 256,
                    ..ServeConfig::default()
                },
            )?;
            replicas.push(server.local_addr()?.to_string());
            let shutdown = ShutdownToken::new();
            let handle = {
                let shutdown = shutdown.clone();
                std::thread::spawn(move || server.run(&shutdown))
            };
            backends.push((shutdown, handle));
        }
        shards.push(ShardSpec {
            id_lo: s.id_lo,
            id_hi: s.id_hi,
            size_lo: s.size_lo,
            size_hi: s.size_hi,
            replicas,
        });
    }
    let router = Router::bind(
        Topology { shards },
        "127.0.0.1:0",
        RouterConfig {
            threads: 4,
            request_deadline: Duration::from_secs(2),
            try_timeout: Duration::from_millis(400),
            probe_interval: Duration::from_millis(50),
            breaker_cooldown: Duration::from_millis(200),
            ..RouterConfig::default()
        },
    )?;
    let addr = router.local_addr()?;
    let router_shutdown = ShutdownToken::new();
    let router_thread = {
        let shutdown = router_shutdown.clone();
        std::thread::spawn(move || router.run(&shutdown))
    };

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || router_client_loop(addr, c as u32, n, &stop))
        })
        .collect();
    if kill_one {
        // Halfway through, one replica of shard 0 goes away; the load
        // keeps running so the percentiles include the failover.
        std::thread::sleep(duration / 2);
        backends[0].0.request(15);
        std::thread::sleep(duration / 2);
    } else {
        std::thread::sleep(duration);
    }
    stop.store(true, Ordering::Release);

    let mut requests = 0u64;
    let mut ok = 0u64;
    let mut degraded_ok = 0u64;
    let mut shed = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for w in workers {
        let c = w
            .join()
            .map_err(|_| CliError::Runtime("bench-serve router client panicked".into()))?;
        requests += c.requests;
        ok += c.ok;
        degraded_ok += c.rate_limited; // router clients tally degraded here
        shed += c.shed;
        errors += c.errors;
        latencies.extend(c.ok_latencies_us);
    }
    let wall = started.elapsed();
    router_shutdown.request(15);
    let report = router_thread
        .join()
        .map_err(|_| CliError::Runtime("bench-serve router thread panicked".into()))??;
    for (shutdown, handle) in backends {
        shutdown.request(15);
        let _ = handle
            .join()
            .map_err(|_| CliError::Runtime("bench-serve backend thread panicked".into()))?;
    }

    latencies.sort_unstable();
    Ok(RouterScenario {
        clients,
        requests,
        ok,
        degraded_ok,
        shed,
        errors,
        qps: ok as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: pct(&latencies, 0.50),
        p95_us: pct(&latencies, 0.95),
        p99_us: pct(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        killed_replica: kill_one,
        retries: report.retries,
        hedges: report.hedges,
        hedge_wins: report.hedge_wins,
        degraded_answers: report.degraded_answers,
        router_requests: report.requests,
    })
}

/// The steady query mix through the router, with degraded detection:
/// a 200 whose headers carry `X-Gsb-Degraded` is tallied separately
/// (in the `rate_limited` slot, unused on the routed path) so the
/// failover scenario can prove answers stayed exact.
fn router_client_loop(
    addr: SocketAddr,
    client_id: u32,
    n: u32,
    stop: &AtomicBool,
) -> ClientOutcome {
    let mut out = ClientOutcome {
        requests: 0,
        ok: 0,
        rate_limited: 0,
        shed: 0,
        errors: 0,
        ok_latencies_us: Vec::new(),
    };
    let mut round = 0u32;
    while !stop.load(Ordering::Acquire) {
        let v = (client_id * 7 + round * 3) % n;
        let w = (client_id * 11 + round * 5) % n;
        let path = match round % 6 {
            0 => "/health".to_string(),
            1 => "/stats".to_string(),
            2 => "/max".to_string(),
            3 => format!("/containing/{v}"),
            4 => "/size/3/6?limit=8".to_string(),
            _ => format!("/overlap/{v}/{w}"),
        };
        round = round.wrapping_add(1);
        out.requests += 1;
        let begun = Instant::now();
        match get_response(addr, &path) {
            Ok((200, head)) => {
                if head.contains("X-Gsb-Degraded") {
                    out.rate_limited += 1;
                } else {
                    out.ok += 1;
                    out.ok_latencies_us.push(begun.elapsed().as_micros() as u64);
                }
            }
            Ok((503, _)) | Ok((408, _)) => out.shed += 1,
            Ok(_) => out.errors += 1,
            Err(_) => out.errors += 1,
        }
    }
    out
}

/// One blocking GET; returns the status and the raw response head.
fn get_response(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("malformed status line"))?;
    let head = response
        .split_once("\r\n\r\n")
        .map(|(h, _)| h.to_string())
        .unwrap_or(response);
    Ok((status, head))
}

/// Aggregated outcome of one load scenario.
struct Scenario {
    clients: usize,
    requests: u64,
    ok: u64,
    rate_limited: u64,
    shed: u64,
    errors: u64,
    qps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
    shed_rate: f64,
    scrape_requests: u64,
    scrape_ok: u64,
    scrape_p50_us: u64,
    scrape_p99_us: u64,
    report: ServeReport,
}

impl Scenario {
    fn to_json(&self) -> String {
        self.to_json_with("")
    }

    /// Serialize, splicing `extra` (pre-rendered `"key":value` pairs)
    /// before the closing brace.
    fn to_json_with(&self, extra: &str) -> String {
        let mut json = format!(
            "{{\"clients\":{},\"requests\":{},\"ok\":{},\"rate_limited\":{},\"shed\":{},\"errors\":{},\"qps\":{:.2},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{},\"shed_rate\":{:.4},\"server_requests\":{},\"server_shed\":{},\"server_rate_limited\":{}",
            self.clients,
            self.requests,
            self.ok,
            self.rate_limited,
            self.shed,
            self.errors,
            self.qps,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
            self.shed_rate,
            self.report.requests,
            self.report.shed,
            self.report.rate_limited,
        );
        if self.scrape_requests > 0 {
            let _ = write!(
                json,
                ",\"scrape_requests\":{},\"scrape_ok\":{},\"scrape_p50_us\":{},\"scrape_p99_us\":{}",
                self.scrape_requests, self.scrape_ok, self.scrape_p50_us, self.scrape_p99_us,
            );
        }
        if !extra.is_empty() {
            let _ = write!(json, ",{extra}");
        }
        json.push('}');
        json
    }
}

fn run_scenario(
    index_dir: &Path,
    config: ServeConfig,
    clients: usize,
    scrape_clients: usize,
    duration: Duration,
    n: u32,
) -> Result<Scenario, CliError> {
    let index = Arc::new(CliqueIndex::open(index_dir).map_err(CliError::Store)?);
    let shutdown = ShutdownToken::new();
    let server = Server::bind(index, "127.0.0.1:0", config)?;
    let addr = server.local_addr()?;
    let server_thread = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&shutdown))
    };

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || client_loop(addr, c as u32, n, &stop))
        })
        .collect();
    let scrapers: Vec<_> = (0..scrape_clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || scrape_loop(addr, c as u32, &stop))
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Release);

    let mut requests = 0u64;
    let mut ok = 0u64;
    let mut rate_limited = 0u64;
    let mut shed = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for w in workers {
        let c = w
            .join()
            .map_err(|_| CliError::Runtime("bench-serve client thread panicked".into()))?;
        requests += c.requests;
        ok += c.ok;
        rate_limited += c.rate_limited;
        shed += c.shed;
        errors += c.errors;
        latencies.extend(c.ok_latencies_us);
    }
    let mut scrape_requests = 0u64;
    let mut scrape_ok = 0u64;
    let mut scrape_latencies: Vec<u64> = Vec::new();
    for s in scrapers {
        let c = s
            .join()
            .map_err(|_| CliError::Runtime("bench-serve scrape thread panicked".into()))?;
        scrape_requests += c.requests;
        scrape_ok += c.ok;
        scrape_latencies.extend(c.ok_latencies_us);
    }
    let wall = started.elapsed();
    shutdown.request(15);
    let report = server_thread
        .join()
        .map_err(|_| CliError::Runtime("bench-serve server thread panicked".into()))??;

    latencies.sort_unstable();
    scrape_latencies.sort_unstable();
    let answered = ok.max(1);
    Ok(Scenario {
        clients,
        requests,
        ok,
        rate_limited,
        shed,
        errors,
        qps: ok as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: pct(&latencies, 0.50),
        p95_us: pct(&latencies, 0.95),
        p99_us: pct(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        shed_rate: (shed + rate_limited) as f64 / (answered + shed + rate_limited) as f64,
        scrape_requests,
        scrape_ok,
        scrape_p50_us: pct(&scrape_latencies, 0.50),
        scrape_p99_us: pct(&scrape_latencies, 0.99),
        report,
    })
}

/// Per-client tallies from one closed loop.
struct ClientOutcome {
    requests: u64,
    ok: u64,
    rate_limited: u64,
    shed: u64,
    errors: u64,
    ok_latencies_us: Vec<u64>,
}

/// Closed loop: one request at a time, next sent only after the
/// previous response fully arrived — the classic closed-loop load
/// model, so offered load adapts to what the server admits.
fn client_loop(addr: SocketAddr, client_id: u32, n: u32, stop: &AtomicBool) -> ClientOutcome {
    let mut out = ClientOutcome {
        requests: 0,
        ok: 0,
        rate_limited: 0,
        shed: 0,
        errors: 0,
        ok_latencies_us: Vec::new(),
    };
    let mut round = 0u32;
    while !stop.load(Ordering::Acquire) {
        let v = (client_id * 7 + round * 3) % n;
        let w = (client_id * 11 + round * 5) % n;
        let path = match round % 6 {
            0 => "/health".to_string(),
            1 => "/stats".to_string(),
            2 => "/max".to_string(),
            3 => format!("/containing/{v}"),
            4 => "/size/3/6?limit=8".to_string(),
            _ => format!("/overlap/{v}/{w}"),
        };
        round = round.wrapping_add(1);
        out.requests += 1;
        let begun = Instant::now();
        match get_status(addr, &path) {
            Ok(200) => {
                out.ok += 1;
                out.ok_latencies_us.push(begun.elapsed().as_micros() as u64);
            }
            Ok(429) => out.rate_limited += 1,
            Ok(503) | Ok(408) => out.shed += 1,
            Ok(_) => out.errors += 1,
            // Connect refused/reset under overload counts as shed-like
            // backpressure from the kernel backlog.
            Err(_) => out.errors += 1,
        }
    }
    out
}

/// Closed loop against the observability endpoints only: /metrics and
/// /metrics-json alternating. These are admission-exempt, so every
/// scrape should answer 200 even while the query pool saturates the
/// worker queue — a scrape that fails mid-overload is exactly the
/// monitoring outage the exemption exists to prevent.
fn scrape_loop(addr: SocketAddr, client_id: u32, stop: &AtomicBool) -> ClientOutcome {
    let mut out = ClientOutcome {
        requests: 0,
        ok: 0,
        rate_limited: 0,
        shed: 0,
        errors: 0,
        ok_latencies_us: Vec::new(),
    };
    let mut round = client_id;
    while !stop.load(Ordering::Acquire) {
        let path = if round & 1 == 0 {
            "/metrics"
        } else {
            "/metrics-json"
        };
        round = round.wrapping_add(1);
        out.requests += 1;
        let begun = Instant::now();
        match get_status(addr, path) {
            Ok(200) => {
                out.ok += 1;
                out.ok_latencies_us.push(begun.elapsed().as_micros() as u64);
            }
            Ok(429) => out.rate_limited += 1,
            Ok(503) | Ok(408) => out.shed += 1,
            Ok(_) | Err(_) => out.errors += 1,
        }
        // Real scrapers poll on an interval; a short pause keeps the
        // scrape pool from behaving like a second query pool.
        std::thread::sleep(Duration::from_millis(2));
    }
    out
}

/// One blocking GET; returns the response status. The whole response is
/// read (Connection: close), so closed-loop pacing is honest.
fn get_status(addr: SocketAddr, path: &str) -> std::io::Result<u16> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("malformed status line"))
}

fn pct(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let i = ((sorted_us.len() as f64 - 1.0) * q).round() as usize;
    sorted_us[i.min(sorted_us.len() - 1)]
}
