//! `gsb scrub` — offline integrity walk of an index directory.
//!
//! Walks every CRC frame of the clique store, every postings record,
//! the directory, and the manifest (including its self-CRC), then
//! cross-checks the layers against each other — the postings are fully
//! recomputed from the decoded cliques. Exit 0 means every byte
//! verified; any corruption lists its findings and exits 1, so the
//! command slots directly into cron jobs and CI. `--json` switches the
//! findings to one JSON object per line plus a summary object, for
//! fleet tooling that wants to aggregate scrub results.

use crate::args::Args;
use crate::CliError;
use gsb_index::ScrubReport;
use gsb_telemetry::json::ObjectWriter;
use std::fmt::Write as _;
use std::path::Path;

/// `gsb scrub`
pub fn scrub(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &[], &["json"], 1)?;
    let dir = a.required_positional(0, "INDEX_DIR")?;
    let report = gsb_index::scrub(Path::new(dir));
    if a.switch("json") {
        return scrub_json(dir, &report);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scrub {}: {} blocks, {} cliques, {} postings records checked",
        dir, report.blocks_checked, report.cliques_checked, report.postings_checked
    );
    if report.delta_generations_checked > 0 {
        let _ = writeln!(
            out,
            "delta chain: {} generation(s), {} tombstone(s) checked",
            report.delta_generations_checked, report.tombstones_checked
        );
    }
    if report.is_clean() {
        let _ = writeln!(out, "index is clean");
        return Ok(out);
    }
    const SHOW: usize = 20;
    for finding in report.findings.iter().take(SHOW) {
        let _ = writeln!(out, "CORRUPT {finding}");
    }
    if report.findings.len() > SHOW {
        let _ = writeln!(out, "... and {} more", report.findings.len() - SHOW);
    }
    // The findings are the report; the error makes the exit code 1.
    eprint!("{out}");
    Err(CliError::Runtime(format!(
        "index {} failed scrub with {} finding(s)",
        dir,
        report.findings.len()
    )))
}

/// Machine-readable output: one `{"finding":...}` object per defect
/// (every defect, no truncation), then one `{"scrub":...}` summary
/// line. The exit code still distinguishes clean (0) from corrupt (1).
fn scrub_json(dir: &str, report: &ScrubReport) -> Result<String, CliError> {
    let mut out = String::new();
    for finding in &report.findings {
        let mut w = ObjectWriter::new();
        w.str_field("finding", &finding.site);
        w.str_field("error", &finding.error.to_string());
        let _ = writeln!(out, "{}", w.finish());
    }
    let mut w = ObjectWriter::new();
    w.str_field("scrub", dir);
    w.u64_field("blocks_checked", report.blocks_checked);
    w.u64_field("cliques_checked", report.cliques_checked);
    w.u64_field("postings_checked", report.postings_checked);
    w.u64_field(
        "delta_generations_checked",
        report.delta_generations_checked,
    );
    w.u64_field("tombstones_checked", report.tombstones_checked);
    w.u64_field("findings", report.findings.len() as u64);
    w.bool_field("clean", report.is_clean());
    let _ = writeln!(out, "{}", w.finish());
    if report.is_clean() {
        return Ok(out);
    }
    // Findings must reach stdout even though corruption exits 1 — the
    // machine-readable report is the product, the code is the verdict.
    print!("{out}");
    Err(CliError::Runtime(format!(
        "index {} failed scrub with {} finding(s)",
        dir,
        report.findings.len()
    )))
}
