//! `gsb scrub` — offline integrity walk of an index directory.
//!
//! Walks every CRC frame of the clique store, every postings record,
//! the directory, and the manifest (including its self-CRC), then
//! cross-checks the layers against each other — the postings are fully
//! recomputed from the decoded cliques. Exit 0 means every byte
//! verified; any corruption lists its findings and exits 1, so the
//! command slots directly into cron jobs and CI.

use crate::args::Args;
use crate::CliError;
use std::fmt::Write as _;
use std::path::Path;

/// `gsb scrub`
pub fn scrub(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &[], &[], 1)?;
    let dir = a.required_positional(0, "INDEX_DIR")?;
    let report = gsb_index::scrub(Path::new(dir));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scrub {}: {} blocks, {} cliques, {} postings records checked",
        dir, report.blocks_checked, report.cliques_checked, report.postings_checked
    );
    if report.is_clean() {
        let _ = writeln!(out, "index is clean");
        return Ok(out);
    }
    const SHOW: usize = 20;
    for finding in report.findings.iter().take(SHOW) {
        let _ = writeln!(out, "CORRUPT {finding}");
    }
    if report.findings.len() > SHOW {
        let _ = writeln!(out, "... and {} more", report.findings.len() - SHOW);
    }
    // The findings are the report; the error makes the exit code 1.
    eprint!("{out}");
    Err(CliError::Runtime(format!(
        "index {} failed scrub with {} finding(s)",
        dir,
        report.findings.len()
    )))
}
