//! `gsb report` — render a telemetry run log.

use crate::args::Args;
use crate::CliError;
use gsb_telemetry::{parse_report, render_report};

/// `gsb report` — render a `--metrics-out` JSONL run log as the
/// per-level summary and Fig. 8-style worker-imbalance tables.
pub fn report(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &[], &[], 1)?;
    let path = a.required_positional(0, "RUN_JSONL")?;
    let text = std::fs::read_to_string(path)?;
    let parsed = parse_report(&text)
        .map_err(|e| CliError::Runtime(format!("{path} is not a valid run log: {e}")))?;
    Ok(render_report(&parsed))
}
