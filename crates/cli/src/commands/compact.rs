//! `gsb compact` — fold an index's delta chain back into a clean base.
//!
//! Rebuilds the four-file index from the live clique set in a
//! `compact.tmp/` staging directory, then swaps it in atomically
//! (manifest rename last). A crash at any point leaves either the old
//! view or a completed staging build; re-running `gsb compact` finishes
//! the interrupted swap instead of rebuilding. The result is
//! byte-identical to `gsb index` run fresh on the updated graph.

use crate::args::Args;
use crate::CliError;
use std::fmt::Write as _;
use std::path::Path;

/// `gsb compact`
pub fn compact(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &["block-target"], &[], 1)?;
    let dir = a.required_positional(0, "INDEX_DIR")?;
    let block_target: Option<usize> = a.flag_opt("block-target")?;

    let o = gsb_index::compact(Path::new(dir), block_target).map_err(CliError::Store)?;

    let mut out = String::new();
    if !o.compacted {
        let _ = writeln!(
            out,
            "compact {dir}: no delta chain — already compact (generation {})",
            o.generation
        );
        return Ok(out);
    }
    if o.resumed {
        let _ = writeln!(
            out,
            "compact {dir}: finished an interrupted swap (no rebuild needed)"
        );
    }
    let _ = writeln!(
        out,
        "compacted {dir} at generation {}: {} clique(s), {} vertices, chain folded",
        o.generation, o.cliques, o.n
    );
    Ok(out)
}
