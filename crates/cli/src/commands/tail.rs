//! `gsb tail` — offline analyzer for the server's JSONL access log:
//! a RED-style summary (rate, errors, duration percentiles per
//! endpoint), the shed/degraded cause table, and the top-N slowest
//! traces with their per-stage breakdown.

use crate::args::Args;
use crate::CliError;
use gsb_telemetry::access::AccessRecord;
use gsb_telemetry::report::{fmt_bytes, fmt_ns, TextTable};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// `gsb tail ACCESS_LOG [--top N]`
pub fn tail(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &["top"], &[], 1)?;
    let path = a.required_positional(0, "ACCESS_LOG")?;
    let top: usize = a.flag_or("top", 10)?;
    let text = std::fs::read_to_string(Path::new(path))?;
    render_tail(&text, top)
}

/// Exact nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct EndpointStats {
    requests: u64,
    errors: u64,
    bytes: u64,
    durations_ns: Vec<u64>,
}

/// Parse the log text and render the report. A final line torn by a
/// crash (or an in-flight write under `tail -f`) is tolerated: it is
/// counted as truncated, not an error. Malformed lines *before* the
/// last one mean the file is not an access log.
fn render_tail(text: &str, top: usize) -> Result<String, CliError> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut records: Vec<AccessRecord> = Vec::with_capacity(lines.len());
    let mut truncated = false;
    for (i, line) in lines.iter().enumerate() {
        match AccessRecord::parse(line) {
            Some(rec) => records.push(rec),
            None if i + 1 == lines.len() => truncated = true,
            None => {
                return Err(CliError::Runtime(format!(
                    "line {} is not an access-log record: {:?}",
                    i + 1,
                    &line[..line.len().min(80)]
                )))
            }
        }
    }
    if records.is_empty() {
        return Ok("access log is empty\n".to_string());
    }

    let mut out = String::new();
    let first_ms = records.iter().map(|r| r.ts_ms).min().unwrap_or(0);
    let last_ms = records.iter().map(|r| r.ts_ms).max().unwrap_or(0);
    let span_s = ((last_ms - first_ms) as f64 / 1000.0).max(0.001);
    let _ = writeln!(
        out,
        "{} requests over {:.1}s{}",
        records.len(),
        span_s,
        if truncated {
            " (final line truncated mid-write — ignored)"
        } else {
            ""
        }
    );
    out.push('\n');

    // RED summary: Rate / Errors / Duration per endpoint. Errors are
    // 4xx+5xx — for a read-only query service a 429/503 shed is an
    // error from the caller's point of view.
    let mut per: BTreeMap<String, EndpointStats> = BTreeMap::new();
    for rec in &records {
        let entry = per.entry(rec.endpoint.clone()).or_insert(EndpointStats {
            requests: 0,
            errors: 0,
            bytes: 0,
            durations_ns: Vec::new(),
        });
        entry.requests += 1;
        if rec.status >= 400 {
            entry.errors += 1;
        }
        entry.bytes += rec.bytes;
        entry.durations_ns.push(rec.total_ns);
    }
    out.push_str("RED summary\n");
    let mut table = TextTable::new(&[
        "endpoint", "requests", "rate/s", "errors", "err%", "p50", "p95", "p99", "max", "bytes",
    ]);
    for (endpoint, stats) in &mut per {
        stats.durations_ns.sort_unstable();
        let d = &stats.durations_ns;
        table.row(vec![
            endpoint.clone(),
            stats.requests.to_string(),
            format!("{:.1}", stats.requests as f64 / span_s),
            stats.errors.to_string(),
            format!("{:.1}", 100.0 * stats.errors as f64 / stats.requests as f64),
            fmt_ns(percentile(d, 50.0)),
            fmt_ns(percentile(d, 95.0)),
            fmt_ns(percentile(d, 99.0)),
            fmt_ns(*d.last().unwrap_or(&0)),
            fmt_bytes(stats.bytes),
        ]);
    }
    table.render(&mut out);

    // Shed/degraded causes: every non-empty `cause` with its counts.
    let mut causes: BTreeMap<(String, u16), u64> = BTreeMap::new();
    for rec in &records {
        if !rec.cause.is_empty() {
            *causes.entry((rec.cause.clone(), rec.status)).or_insert(0) += 1;
        }
    }
    if !causes.is_empty() {
        out.push_str("\nShed / degraded causes\n");
        let mut table = TextTable::new(&["cause", "status", "count"]);
        for ((cause, status), count) in &causes {
            table.row(vec![cause.clone(), status.to_string(), count.to_string()]);
        }
        table.render(&mut out);
    }

    // Top-N slow traces, with the span stages in recorded order so the
    // dominant stage is readable at a glance.
    let mut slowest: Vec<&AccessRecord> = records.iter().collect();
    slowest.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    slowest.truncate(top.max(1));
    let _ = writeln!(out, "\nTop {} slow traces", slowest.len());
    let mut table = TextTable::new(&["trace", "endpoint", "status", "total", "stages"]);
    for rec in &slowest {
        let stages: Vec<String> = rec
            .stages
            .iter()
            .map(|(name, ns)| format!("{name}={}", fmt_ns(*ns)))
            .collect();
        table.row(vec![
            rec.trace.clone(),
            rec.endpoint.clone(),
            rec.status.to_string(),
            fmt_ns(rec.total_ns),
            stages.join(" "),
        ]);
    }
    table.render(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_telemetry::access::AccessRecord;

    fn record(
        ts_ms: u64,
        trace: &str,
        endpoint: &str,
        status: u16,
        cause: &str,
        total_ns: u64,
    ) -> String {
        AccessRecord {
            ts_ms,
            trace: trace.into(),
            endpoint: endpoint.into(),
            status,
            cause: cause.into(),
            bytes: 100,
            total_ns,
            stages: vec![
                ("queue".into(), total_ns / 4),
                ("blocks".into(), total_ns / 2),
            ],
        }
        .to_json_line()
    }

    #[test]
    fn tail_renders_red_summary_causes_and_slow_traces() {
        let mut log = String::new();
        for i in 0..20u64 {
            log.push_str(&record(
                1_000 + i * 100,
                &format!("{i:016x}"),
                "containing",
                200,
                "",
                (i + 1) * 1_000_000,
            ));
            log.push('\n');
        }
        log.push_str(&record(
            3_000,
            "aaaa000000000000",
            "stats",
            503,
            "queue_full",
            50_000,
        ));
        log.push('\n');
        let out = render_tail(&log, 3).unwrap();
        assert!(out.contains("21 requests"), "{out}");
        assert!(out.contains("RED summary"), "{out}");
        assert!(out.contains("containing"), "{out}");
        assert!(out.contains("queue_full"), "{out}");
        assert!(out.contains("Top 3 slow traces"), "{out}");
        // The slowest trace (20ms, id 13 hex) leads the slow table.
        assert!(out.contains("000000000000013"), "{out}");
        assert!(out.contains("queue="), "{out}");
    }

    #[test]
    fn tail_tolerates_a_truncated_final_line_only() {
        let mut log = record(1_000, "t1", "max", 200, "", 5_000);
        log.push('\n');
        log.push_str("{\"ts_ms\":2000,\"trace\":\"t2\",\"endp"); // torn mid-write
        let out = render_tail(&log, 5).unwrap();
        assert!(out.contains("1 requests"), "{out}");
        assert!(out.contains("truncated"), "{out}");

        // Garbage before the end is a hard error.
        let bad = format!("not json\n{}\n", record(1_000, "t", "max", 200, "", 1));
        let err = render_tail(&bad, 5).unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)), "{err}");
    }

    #[test]
    fn tail_empty_log_and_percentiles() {
        assert!(render_tail("", 5).unwrap().contains("empty"));
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
    }
}
