//! `gsb update` — apply an edge-edit batch to an index directory
//! in place, re-enumerating only the affected neighborhoods.
//!
//! The edit files use the same whitespace `u v` edge-list format as
//! `gsb index` inputs (`#` comments, one edge per line); removals are
//! applied before additions, each in file order. The new cliques and
//! tombstones land as an appended delta generation, and the manifest
//! generation bump is atomic — a `gsb serve --reload-poll` process
//! watching the directory picks the new view up live.

use crate::args::Args;
use crate::CliError;
use gsb_graph::edits::load_edits;
use gsb_index::EditScript;
use std::fmt::Write as _;
use std::path::Path;

/// `gsb update`
pub fn update(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &["add-edges", "remove-edges", "block-target"], &[], 1)?;
    let dir = a.required_positional(0, "INDEX_DIR")?;
    let block_target: Option<usize> = a.flag_opt("block-target")?;

    let mut script = EditScript::default();
    if let Some(path) = a.flag("remove-edges") {
        script.remove = load_edits(Path::new(path))?;
    }
    if let Some(path) = a.flag("add-edges") {
        script.add = load_edits(Path::new(path))?;
    }
    if script.remove.is_empty() && script.add.is_empty() {
        return Err(CliError::Usage(
            "gsb update needs --add-edges FILE and/or --remove-edges FILE".into(),
        ));
    }

    let o = gsb_index::update(Path::new(dir), &script, block_target).map_err(CliError::Store)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "update {dir}: {} removal(s) applied ({} skipped), {} addition(s) applied ({} skipped)",
        o.removes_applied, o.removes_skipped, o.adds_applied, o.adds_skipped
    );
    if !o.committed {
        let _ = writeln!(
            out,
            "every edit was a no-op — nothing written, index unchanged (generation {})",
            o.generation
        );
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "generation {}: +{} clique(s), {} tombstoned; {} live of {} total, {} vertices",
        o.generation, o.new_cliques, o.new_tombstones, o.live, o.total, o.n
    );
    Ok(out)
}
