//! Subcommand implementations, one module per command. Each command
//! takes the post-subcommand argv and returns the report text; the
//! dispatcher in [`crate::run`] stays a thin match over these
//! re-exports.

mod bench_serve;
mod bench_update;
mod cliques;
mod compact;
mod convert;
mod exact;
mod generate;
mod index;
mod motif;
mod query;
mod report;
mod resume;
mod router;
mod scrub;
mod serve;
mod shard;
mod stats;
mod tail;
mod update;

pub use bench_serve::bench_serve;
pub use bench_update::bench_update;
pub use cliques::cliques;
pub use compact::compact;
pub use convert::convert;
pub use exact::{fvs, maxclique, vertex_cover};
pub use generate::generate;
pub use index::index;
pub use motif::motif;
pub use query::query;
pub use report::report;
pub use resume::resume;
pub use router::router;
pub use scrub::scrub;
pub use serve::serve;
pub use shard::shard;
pub use stats::stats;
pub use tail::tail;
pub use update::update;

use crate::CliError;
use gsb_core::sink::{CollectSink, CountSink};
use gsb_graph::{io as gio, BitGraph};
use std::fmt::Write as _;
use std::path::Path;

pub(crate) fn load(path: &str) -> Result<BitGraph, CliError> {
    Ok(gio::load(Path::new(path))?)
}

pub(crate) fn save(g: &BitGraph, path: &str) -> Result<(), CliError> {
    let file = std::fs::File::create(path)?;
    match Path::new(path).extension().and_then(|e| e.to_str()) {
        Some("clq") | Some("dimacs") => gio::write_dimacs(g, file)?,
        _ => gio::write_edge_list(g, file)?,
    }
    Ok(())
}

pub(crate) fn render_cliques(collect: &CollectSink, count: &CountSink, count_only: bool) -> String {
    let mut out = String::new();
    if count_only {
        let _ = writeln!(out, "{} maximal cliques", count.count);
    } else {
        for c in &collect.cliques {
            let text: Vec<String> = c.iter().map(u32::to_string).collect();
            let _ = writeln!(out, "{}\t{}", c.len(), text.join(" "));
        }
        let _ = writeln!(out, "# {} maximal cliques", collect.cliques.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CliError;
    use gsb_core::checkpoint::{CheckpointConfig, CheckpointManager, RunMeta, RunProgress};
    use gsb_core::{BackendChoice, CliqueEnumerator, EnumConfig, EnumStats};
    use std::path::Path;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("gsb-cli-test-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn generate_stats_cliques_roundtrip() {
        let path = tmp("g1.txt");
        let report = generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "40",
            "--p",
            "0.02",
            "--modules",
            "6,5",
            "--seed",
            "3",
            "--out",
            &path,
        ]))
        .unwrap();
        assert!(report.contains("40 vertices"));

        let s = stats(&argv(&[&path])).unwrap();
        assert!(s.contains("vertices:    40"));
        assert!(s.contains("clique upper bound"));

        let c = cliques(&argv(&[&path, "--min", "4"])).unwrap();
        assert!(c.contains("maximal cliques"));
        // every line is "size\tvertices"
        for line in c.lines().filter(|l| !l.starts_with('#')) {
            let (size, rest) = line.split_once('\t').expect("tabbed");
            let k: usize = size.parse().unwrap();
            assert_eq!(rest.split_whitespace().count(), k);
            assert!(k >= 4);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cliques_count_only_and_threads_agree() {
        let path = tmp("g2.txt");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "36",
            "--modules",
            "7",
            "--out",
            &path,
        ]))
        .unwrap();
        let seq = cliques(&argv(&[&path, "--count-only"])).unwrap();
        let par = cliques(&argv(&[&path, "--count-only", "--threads", "3"])).unwrap();
        assert_eq!(seq, par);
        let spill = cliques(&argv(&[&path, "--count-only", "--spill-budget", "0"])).unwrap();
        assert!(spill.starts_with(&seq.lines().next().unwrap().to_string()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cliques_order_and_out_flags() {
        let path = tmp("g6.txt");
        let out = tmp("g6.cliques");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "30",
            "--modules",
            "6,5",
            "--out",
            &path,
        ]))
        .unwrap();
        let plain = cliques(&argv(&[&path, "--min", "4"])).unwrap();
        for order in ["natural", "degeneracy", "degree"] {
            let ordered = cliques(&argv(&[&path, "--min", "4", "--order", order])).unwrap();
            // same clique set (line sets match after sorting)
            let mut a: Vec<&str> = plain.lines().filter(|l| !l.starts_with('#')).collect();
            let mut b: Vec<&str> = ordered.lines().filter(|l| !l.starts_with('#')).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "--order {order}");
        }
        assert!(cliques(&argv(&[&path, "--order", "bogus"])).is_err());
        // streaming output
        let report = cliques(&argv(&[&path, "--min", "4", "--out", &out])).unwrap();
        assert!(report.contains("maximal cliques"));
        let streamed = std::fs::read_to_string(&out).unwrap();
        let n_lines = streamed.lines().count();
        let n_plain = plain.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(n_lines, n_plain);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn cliques_backend_flag_matches_dense() {
        let path = tmp("g14.txt");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "34",
            "--modules",
            "7,5",
            "--seed",
            "17",
            "--out",
            &path,
        ]))
        .unwrap();
        let dense = cliques(&argv(&[&path, "--min", "3"])).unwrap();
        let mut want: Vec<&str> = dense.lines().filter(|l| !l.starts_with('#')).collect();
        want.sort();
        for backend in ["dense", "wah", "hybrid"] {
            for threads in ["1", "3"] {
                let alt = cliques(&argv(&[
                    &path,
                    "--min",
                    "3",
                    "--backend",
                    backend,
                    "--threads",
                    threads,
                ]))
                .unwrap();
                let mut got: Vec<&str> = alt.lines().filter(|l| !l.starts_with('#')).collect();
                got.sort();
                assert_eq!(got, want, "--backend {backend} --threads {threads}");
            }
        }
        // unknown names and conflicts are usage errors
        let err = cliques(&argv(&[&path, "--backend", "lzma"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("unknown backend"), "{err}");
        let err = cliques(&argv(&[&path, "--backend", "wah", "--order", "degree"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let err = cliques(&argv(&[&path, "--backend", "wah", "--spill-budget", "0"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn maxclique_both_routes() {
        let path = tmp("g3.txt");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "30",
            "--modules",
            "6",
            "--out",
            &path,
        ]))
        .unwrap();
        let direct = maxclique(&argv(&[&path])).unwrap();
        let viavc = maxclique(&argv(&[&path, "--via-vc"])).unwrap();
        let size = |s: &str| {
            s.split("size ")
                .nth(1)
                .unwrap()
                .split(':')
                .next()
                .unwrap()
                .parse::<usize>()
                .unwrap()
        };
        assert_eq!(size(&direct), size(&viavc));
        assert!(size(&direct) >= 6);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn vc_and_fvs_run() {
        let path = tmp("g4.txt");
        generate(&argv(&[
            "--kind", "gnp", "--n", "14", "--p", "0.3", "--out", &path,
        ]))
        .unwrap();
        let vc_min = vertex_cover(&argv(&[&path])).unwrap();
        assert!(vc_min.contains("minimum vertex cover size"));
        let vc_yes = vertex_cover(&argv(&[&path, "--k", "14"])).unwrap();
        assert!(vc_yes.starts_with("YES"));
        let vc_no = vertex_cover(&argv(&[&path, "--k", "0"])).unwrap();
        assert!(vc_no.starts_with("NO"));
        let f = fvs(&argv(&[&path])).unwrap();
        assert!(f.contains("feedback vertex set"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn motif_subcommand_end_to_end() {
        let path = tmp("seqs.txt");
        // three sequences sharing an exact 8-mer
        std::fs::write(
            &path,
            "AAAAAGATTACAGGTTTT\nCCCCGATTACAGGCCCC\n# comment\nTTGATTACAGGTTAAAA\n",
        )
        .unwrap();
        let report = motif(&argv(&[&path, "--l", "8", "--d", "0", "--q", "3"])).unwrap();
        assert!(report.contains("GATTACAG"), "{report}");
        assert!(motif(&argv(&[&path])).is_err()); // --l required
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn convert_edge_list_to_dimacs() {
        let a_path = tmp("g5.txt");
        let b_path = tmp("g5.clq");
        generate(&argv(&[
            "--kind", "gnp", "--n", "10", "--p", "0.4", "--out", &a_path,
        ]))
        .unwrap();
        let report = convert(&argv(&[&a_path, &b_path])).unwrap();
        assert!(report.contains("converted"));
        let g1 = load(&a_path).unwrap();
        let g2 = load(&b_path).unwrap();
        assert_eq!(g1, g2);
        let _ = std::fs::remove_file(&a_path);
        let _ = std::fs::remove_file(&b_path);
    }

    #[test]
    fn checkpoint_flags_are_validated() {
        let path = tmp("g8.txt");
        generate(&argv(&[
            "--kind", "gnp", "--n", "12", "--p", "0.3", "--out", &path,
        ]))
        .unwrap();
        // --checkpoint-dir without --out
        let err = cliques(&argv(&[&path, "--checkpoint-dir", "/tmp/x"])).unwrap_err();
        assert!(err.to_string().contains("--out"), "{err}");
        // --checkpoint-secs without --checkpoint-dir
        let err = cliques(&argv(&[&path, "--checkpoint-secs", "5"])).unwrap_err();
        assert!(err.to_string().contains("--checkpoint-dir"), "{err}");
        // conflicts with the one-shot spill/order paths
        let err = cliques(&argv(&[
            &path,
            "--memory-budget",
            "1000",
            "--order",
            "degree",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert_eq!(err.exit_code(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpointed_run_matches_plain_and_cleans_up() {
        let path = tmp("g9.txt");
        let dir = tmp("g9-ckpt");
        let out = tmp("g9.out");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "32",
            "--modules",
            "7,5",
            "--seed",
            "11",
            "--out",
            &path,
        ]))
        .unwrap();
        let plain = cliques(&argv(&[&path, "--min", "3"])).unwrap();
        let report = cliques(&argv(&[
            &path,
            "--min",
            "3",
            "--checkpoint-dir",
            &dir,
            "--out",
            &out,
        ]))
        .unwrap();
        assert!(report.contains("checkpointed"), "{report}");
        let mut a: Vec<&str> = plain.lines().filter(|l| !l.starts_with('#')).collect();
        let written = std::fs::read_to_string(&out).unwrap();
        let mut b: Vec<&str> = written.lines().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // success cleaned the checkpoint dir: nothing to resume
        let err = resume(&argv(&[&dir])).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_completes_a_crashed_run_byte_identically() {
        let path = tmp("g10.txt");
        let dir = tmp("g10-ckpt");
        let out = tmp("g10.out");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "34",
            "--modules",
            "8,6",
            "--seed",
            "29",
            "--out",
            &path,
        ]))
        .unwrap();
        let expected = cliques(&argv(&[&path, "--min", "3"])).unwrap();

        // Manufacture the crashed state: step the enumerator to level 4,
        // persist a real checkpoint + run.meta, and write the output
        // file as the dying run left it — the cliques emitted so far
        // plus a line torn mid-write.
        let g = load(&path).unwrap();
        let seq = CliqueEnumerator::new(EnumConfig::default());
        let mut pre = gsb_core::sink::CollectSink::default();
        let mut stats = EnumStats::default();
        let mut level = seq.init_level(&g, &mut pre, &mut stats);
        while level.k < 4 && !level.sublists.is_empty() {
            let (next, _) = seq.step(&g, &level, &mut pre);
            level = next;
        }
        let k_ckpt = level.k;
        let mgr = CheckpointManager::new(CheckpointConfig::every_level(&dir)).unwrap();
        {
            let mut mgr = mgr;
            mgr.force(&level).unwrap();
            // crash: dropped without finish(), files stay
        }
        RunMeta {
            graph: path.clone(),
            min_k: 3,
            max_k: None,
            threads: 1,
            out: Some(out.clone()),
            backend: BackendChoice::Dense,
            ..Default::default()
        }
        .save(Path::new(&dir))
        .unwrap();
        let pre_count = pre.cliques.iter().filter(|c| c.len() <= k_ckpt).count() as u64;
        RunProgress {
            cliques_emitted: pre_count,
            levels_done: k_ckpt as u64 - 2,
            wall_ms: 1500,
        }
        .save(Path::new(&dir))
        .unwrap();
        let mut crashed = String::new();
        for c in pre.cliques.iter().filter(|c| c.len() <= k_ckpt) {
            let verts: Vec<String> = c.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(crashed, "{}\t{}", c.len(), verts.join(" "));
        }
        crashed.push_str("6\t1 2"); // torn by the crash: no newline, wrong arity
        std::fs::write(&out, &crashed).unwrap();

        let report = resume(&argv(&[&dir])).unwrap();
        assert!(
            report.contains(&format!("level-{k_ckpt} checkpoint")),
            "{report}"
        );
        assert!(
            report.contains(&format!("prior progress: {pre_count} cliques")),
            "{report}"
        );
        assert!(report.contains("1.5s before the interruption"), "{report}");
        let resumed = std::fs::read_to_string(&out).unwrap();
        let mut got: Vec<&str> = resumed.lines().collect();
        let mut want: Vec<&str> = expected.lines().filter(|l| !l.starts_with('#')).collect();
        got.sort();
        want.sort();
        assert_eq!(got.len(), want.len(), "clique counts differ");
        assert_eq!(got, want);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_uses_the_backend_recorded_in_run_meta() {
        use gsb_bitset::WahBitSet;
        use gsb_core::InMemoryLevel;

        let path = tmp("g15.txt");
        let dir = tmp("g15-ckpt");
        let out = tmp("g15.out");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "34",
            "--modules",
            "8,6",
            "--seed",
            "31",
            "--out",
            &path,
        ]))
        .unwrap();
        let expected = cliques(&argv(&[&path, "--min", "3"])).unwrap();

        // Crash a WAH-backed run at the level-4 barrier: the checkpoint
        // on disk is in the compressed representation, and run.meta
        // records backend=wah.
        let g = load(&path).unwrap();
        let seq = CliqueEnumerator::<WahBitSet, InMemoryLevel<WahBitSet>>::with_backend(
            EnumConfig::default(),
            (),
        );
        let mut pre = gsb_core::sink::CollectSink::default();
        let mut stats = EnumStats::default();
        let mut level = seq.init_level(&g, &mut pre, &mut stats);
        while level.k < 4 && !level.sublists.is_empty() {
            let (next, _) = seq.step(&g, &level, &mut pre);
            level = next;
        }
        let k_ckpt = level.k;
        let mut mgr = CheckpointManager::new(CheckpointConfig::every_level(&dir)).unwrap();
        mgr.force(&level).unwrap();
        drop(mgr); // crash: no finish(), files stay
        RunMeta {
            graph: path.clone(),
            min_k: 3,
            max_k: None,
            threads: 1,
            out: Some(out.clone()),
            backend: BackendChoice::Wah,
            ..Default::default()
        }
        .save(Path::new(&dir))
        .unwrap();
        let meta_text = std::fs::read_to_string(Path::new(&dir).join("run.meta")).unwrap();
        assert!(meta_text.contains("backend=wah"), "{meta_text}");
        let mut crashed = String::new();
        for c in pre.cliques.iter().filter(|c| c.len() <= k_ckpt) {
            let verts: Vec<String> = c.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(crashed, "{}\t{}", c.len(), verts.join(" "));
        }
        std::fs::write(&out, &crashed).unwrap();

        let report = resume(&argv(&[&dir])).unwrap();
        assert!(
            report.contains(&format!("level-{k_ckpt} checkpoint")),
            "{report}"
        );
        let resumed = std::fs::read_to_string(&out).unwrap();
        let mut got: Vec<&str> = resumed.lines().collect();
        let mut want: Vec<&str> = expected.lines().filter(|l| !l.starts_with('#')).collect();
        got.sort();
        want.sort();
        assert_eq!(got, want);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_out_produces_schema_valid_monotone_records() {
        let path = tmp("g11.txt");
        let jsonl = tmp("g11.jsonl");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "36",
            "--modules",
            "8,6",
            "--seed",
            "7",
            "--out",
            &path,
        ]))
        .unwrap();
        let plain = cliques(&argv(&[&path, "--min", "3", "--count-only"])).unwrap();
        let with_metrics = cliques(&argv(&[
            &path,
            "--min",
            "3",
            "--threads",
            "3",
            "--count-only",
            "--metrics-out",
            &jsonl,
        ]))
        .unwrap();
        // telemetry must not change the enumeration result
        assert_eq!(plain, with_metrics);

        let text = std::fs::read_to_string(&jsonl).unwrap();
        let parsed = gsb_telemetry::parse_report(&text).expect("valid run log");
        assert!(!parsed.truncated);
        assert!(!parsed.levels.is_empty(), "no level records");
        for w in parsed.levels.windows(2) {
            assert!(w[1].k > w[0].k, "level k not monotone: {w:?}");
            assert!(w[1].maximal_total >= w[0].maximal_total);
        }
        for level in &parsed.levels {
            assert!(level.sublists > 0, "empty sub-list count: {level:?}");
            assert!(!level.busy_ns.is_empty(), "no per-worker busy time");
        }
        let summary = parsed.summary.as_ref().expect("summary record");
        let total: u64 = plain.split_whitespace().next().unwrap().parse().unwrap();
        assert_eq!(summary.maximal_total, total);
        assert!(summary.maximal_total > 0);

        // and the rendered report round-trips from the same file
        let rendered = report(&argv(&[&jsonl])).unwrap();
        assert!(rendered.contains("Per-level summary"), "{rendered}");
        assert!(rendered.contains("Worker imbalance"), "{rendered}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&jsonl);
    }

    #[test]
    fn report_tolerates_a_crash_truncated_run_log() {
        let path = tmp("g13.txt");
        let jsonl = tmp("g13.jsonl");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "30",
            "--modules",
            "7",
            "--seed",
            "2",
            "--out",
            &path,
        ]))
        .unwrap();
        cliques(&argv(&[&path, "--count-only", "--metrics-out", &jsonl])).unwrap();
        // Simulate dying mid-write: chop the file inside its last line.
        let text = std::fs::read_to_string(&jsonl).unwrap();
        let cut = text.trim_end().len() - 10;
        std::fs::write(&jsonl, &text[..cut]).unwrap();
        let rendered = report(&argv(&[&jsonl])).unwrap();
        assert!(rendered.contains("truncated"), "{rendered}");
        assert!(rendered.contains("Per-level summary"), "{rendered}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&jsonl);
    }

    #[test]
    fn report_rejects_garbage_and_metrics_conflicts_are_usage_errors() {
        let bad = tmp("bad.jsonl");
        std::fs::write(&bad, "not json at all\nstill not\n").unwrap();
        let err = report(&argv(&[&bad])).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        let _ = std::fs::remove_file(&bad);

        let path = tmp("g12.txt");
        generate(&argv(&[
            "--kind", "gnp", "--n", "12", "--p", "0.3", "--out", &path,
        ]))
        .unwrap();
        let err = cliques(&argv(&[&path, "--progress", "--order", "degree"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dispatch_and_usage() {
        assert!(crate::run(&argv(&["help"])).unwrap().contains("USAGE"));
        assert!(crate::run(&argv(&[])).is_err());
        assert!(crate::run(&argv(&["bogus"])).is_err());
        let err = crate::run(&argv(&["generate", "--kind", "nope", "--out", "x"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown --kind"));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = stats(&argv(&["/definitely/not/here"])).unwrap_err();
        assert!(matches!(err, CliError::Parse(_) | CliError::Io(_)));
    }

    #[test]
    fn index_then_query_round_trip() {
        let path = tmp("g16.txt");
        let dir = tmp("g16-index");
        let text = tmp("g16.cliques");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "40",
            "--modules",
            "7,5",
            "--seed",
            "23",
            "--out",
            &path,
        ]))
        .unwrap();
        let plain = cliques(&argv(&[&path, "--min", "3"])).unwrap();
        let mut want: Vec<&str> = plain.lines().filter(|l| !l.starts_with('#')).collect();
        want.sort();

        // Index with a text tee: the text copy must equal the plain run.
        let report = index(&argv(&[
            &path,
            "--min",
            "3",
            "--out",
            &dir,
            "--text-out",
            &text,
        ]))
        .unwrap();
        assert!(
            report.contains(&format!("indexed {} maximal cliques", want.len())),
            "{report}"
        );
        let teed = std::fs::read_to_string(&text).unwrap();
        let mut got: Vec<&str> = teed.lines().collect();
        got.sort();
        assert_eq!(got, want, "--text-out tee differs from plain run");

        // Size-range query over everything reproduces the clique set.
        let all = query(&argv(&[&dir, "--size-min", "0", "--limit", "100000"])).unwrap();
        let mut from_index: Vec<String> = all
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| l.split_once('\t').unwrap().1.to_string())
            .collect();
        from_index.sort();
        assert_eq!(from_index, want, "query --size-min 0 differs");

        // max agrees with the largest plain-run clique.
        let max_report = query(&argv(&[&dir, "--max"])).unwrap();
        let best = want
            .iter()
            .map(|l| l.split_once('\t').unwrap().0.parse::<usize>().unwrap())
            .max()
            .unwrap();
        assert!(max_report.contains(&format!("size {best}")), "{max_report}");

        // containing/overlap agree with a grep over the text output.
        let v = 0u32;
        let contains_v = want
            .iter()
            .filter(|l| {
                l.split_once('\t')
                    .unwrap()
                    .1
                    .split_whitespace()
                    .any(|x| x == v.to_string())
            })
            .count();
        let c_report = query(&argv(&[&dir, "--containing", "0", "--ids-only"])).unwrap();
        assert!(
            c_report.contains(&format!(": {contains_v} total")),
            "{c_report}"
        );

        // stats --index renders the same totals.
        let s = stats(&argv(&["--index", &dir])).unwrap();
        assert!(
            s.contains(&format!("cliques:        {}", want.len())),
            "{s}"
        );
        assert!(s.contains(&format!("largest clique: {best}")), "{s}");
        assert!(s.contains("size histogram"), "{s}");

        // usage errors
        assert!(query(&argv(&[&dir])).is_err());
        assert!(query(&argv(&[&dir, "--max", "--containing", "1"])).is_err());
        assert!(query(&argv(&[&dir, "--overlap", "five,6"])).is_err());
        assert!(index(&argv(&[&path])).is_err()); // --out required
        assert!(stats(&argv(&[&path, "--index", &dir])).is_err());

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_on_missing_index_is_a_storage_error() {
        let err = query(&argv(&["/definitely/not/an/index", "--max"])).unwrap_err();
        assert!(matches!(err, CliError::Store(_)), "{err}");
        assert_eq!(err.exit_code(), 1);
        let err = serve(&argv(&["/definitely/not/an/index"])).unwrap_err();
        assert!(matches!(err, CliError::Store(_)), "{err}");
    }

    #[test]
    fn scrub_clean_then_detects_corruption() {
        let path = tmp("g17.txt");
        let dir = tmp("g17-index");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "36",
            "--modules",
            "7,5",
            "--seed",
            "41",
            "--out",
            &path,
        ]))
        .unwrap();
        index(&argv(&[&path, "--min", "3", "--out", &dir])).unwrap();

        let clean = scrub(&argv(&[&dir])).unwrap();
        assert!(clean.contains("index is clean"), "{clean}");

        // Flip one byte inside the clique store payload region.
        let store = Path::new(&dir).join("cliques.gsi");
        let mut bytes = std::fs::read(&store).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 0x10;
        std::fs::write(&store, &bytes).unwrap();

        let err = scrub(&argv(&[&dir])).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("failed scrub"), "{err}");

        // Missing directory is a finding with exit 1, not a panic.
        let err = scrub(&argv(&["/definitely/not/an/index"])).unwrap_err();
        assert_eq!(err.exit_code(), 1);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_serve_smoke_writes_schema_stable_json() {
        let out = tmp("bench_serve.json");
        let report = bench_serve(&argv(&["--smoke", "--router", "--out", &out])).unwrap();
        assert!(report.contains("steady:"), "{report}");
        assert!(report.contains("overload:"), "{report}");
        assert!(report.contains("router_steady:"), "{report}");
        assert!(report.contains("router_failover:"), "{report}");
        let text = std::fs::read_to_string(&out).unwrap();
        let parsed = gsb_telemetry::json::parse(&text).expect("bench JSON parses");
        let scenarios = parsed.get("scenarios").expect("scenarios object");
        for name in ["steady", "overload"] {
            let s = scenarios.get(name).unwrap_or_else(|| panic!("{name}"));
            assert!(s.u64_or_zero("requests") > 0, "{name} issued requests");
            for key in ["ok", "qps", "p50_us", "p95_us", "p99_us", "shed_rate"] {
                assert!(s.get(key).is_some(), "{name} missing {key}");
            }
        }
        for name in ["router_steady", "router_failover"] {
            let s = scenarios.get(name).unwrap_or_else(|| panic!("{name}"));
            assert!(s.u64_or_zero("requests") > 0, "{name} issued requests");
            for key in [
                "ok",
                "degraded_ok",
                "qps",
                "p50_us",
                "p99_us",
                "retries",
                "hedges",
                "hedge_wins",
                "degraded_answers",
            ] {
                assert!(s.get(key).is_some(), "{name} missing {key}");
            }
            // Both shards kept at least one live replica throughout, so
            // every answer must have been exact: degraded means the
            // router gave up on a shard that was still servable.
            assert_eq!(s.u64_or_zero("degraded_ok"), 0, "{name} degraded answers");
        }
        let failover = scenarios.get("router_failover").unwrap();
        assert_eq!(
            failover.get("killed_replica").and_then(|v| v.as_bool()),
            Some(true)
        );
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn shard_split_then_router_topology_round_trip() {
        let path = tmp("g18.txt");
        let dir = tmp("g18-index");
        let out = tmp("g18-shards");
        let topo = tmp("g18.topology");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "36",
            "--modules",
            "7,5",
            "--seed",
            "43",
            "--out",
            &path,
        ]))
        .unwrap();
        index(&argv(&[&path, "--min", "3", "--out", &dir])).unwrap();

        let report = shard(&argv(&[
            &dir,
            "--out",
            &out,
            "--shards",
            "2",
            "--topology-out",
            &topo,
            "--replicas",
            "127.0.0.1:7701,127.0.0.1:7702/127.0.0.1:7703,127.0.0.1:7704",
        ]))
        .unwrap();
        assert!(report.contains("split"), "{report}");
        assert!(report.contains("shard 1:"), "{report}");
        let text = std::fs::read_to_string(&topo).unwrap();
        let topology = gsb_index::Topology::from_text(&text).expect("topology parses");
        assert_eq!(topology.shards.len(), 2);
        assert_eq!(topology.shards[0].replicas.len(), 2);

        // Each shard directory is an ordinary servable index.
        for k in 0..2 {
            let sub = gsb_index::CliqueIndex::open(Path::new(&format!("{out}/shard{k}"))).unwrap();
            assert!(sub.len() > 0);
        }

        // usage errors
        assert!(shard(&argv(&[&dir])).is_err()); // --out required
        let err = shard(&argv(&[&dir, "--out", &out, "--topology-out", &topo])).unwrap_err();
        assert!(err.to_string().contains("--replicas"), "{err}");
        let err = shard(&argv(&[
            &dir,
            "--out",
            &out,
            "--shards",
            "2",
            "--topology-out",
            &topo,
            "--replicas",
            "127.0.0.1:1",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("shard group"), "{err}");

        // router usage errors: bad percentile, missing topology
        let err = router(&argv(&[&topo, "--hedge-percentile", "1.5"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let err = router(&argv(&["/definitely/not/a/topology"])).unwrap_err();
        assert!(matches!(err, CliError::Store(_)), "{err}");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&topo);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn scrub_json_emits_findings_and_summary() {
        let path = tmp("g19.txt");
        let dir = tmp("g19-index");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "36",
            "--modules",
            "7,5",
            "--seed",
            "47",
            "--out",
            &path,
        ]))
        .unwrap();
        index(&argv(&[&path, "--min", "3", "--out", &dir])).unwrap();

        // Clean: a single summary object, clean=true, exit 0.
        let clean = scrub(&argv(&[&dir, "--json"])).unwrap();
        let lines: Vec<&str> = clean.lines().collect();
        assert_eq!(lines.len(), 1, "{clean}");
        let summary = gsb_telemetry::json::parse(lines[0]).expect("summary parses");
        assert_eq!(summary.get("clean").and_then(|v| v.as_bool()), Some(true));
        assert!(summary.u64_or_zero("blocks_checked") > 0);
        assert_eq!(summary.u64_or_zero("findings"), 0);

        // Corrupt: one JSON object per finding, summary says dirty,
        // exit code 1.
        let store = Path::new(&dir).join("cliques.gsi");
        let mut bytes = std::fs::read(&store).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 0x10;
        std::fs::write(&store, &bytes).unwrap();
        let err = scrub(&argv(&[&dir, "--json"])).unwrap_err();
        assert_eq!(err.exit_code(), 1);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The dynamic-maintenance CLI surface end to end: update a built
    /// index, query/stats/scrub the chained view, compact it clean,
    /// and hit the refusal paths (frozen --max index, no-op batch,
    /// missing edit flags).
    #[test]
    fn update_then_compact_round_trip() {
        let path = tmp("g20.txt");
        let dir = tmp("g20-index");
        generate(&argv(&[
            "--kind",
            "planted",
            "--n",
            "40",
            "--modules",
            "7,5",
            "--seed",
            "29",
            "--out",
            &path,
        ]))
        .unwrap();
        index(&argv(&[&path, "--min", "3", "--out", &dir])).unwrap();

        // Build an edit batch from the actual graph: remove one real
        // edge, add one absent edge, and grow the graph by a vertex.
        let mut g = load(&path).unwrap();
        let (mut rm, mut add) = (None, None);
        'outer: for u in 0..g.n() {
            for v in (u + 1)..g.n() {
                if rm.is_none() && g.has_edge(u, v) {
                    rm = Some((u, v));
                } else if add.is_none() && !g.has_edge(u, v) {
                    add = Some((u, v));
                }
                if rm.is_some() && add.is_some() {
                    break 'outer;
                }
            }
        }
        let (ru, rv) = rm.unwrap();
        let (au, av) = add.unwrap();
        let rm_file = tmp("g20.rm");
        let add_file = tmp("g20.add");
        std::fs::write(&rm_file, format!("{ru} {rv}\n")).unwrap();
        std::fs::write(&add_file, format!("{au} {av}\n0 40 # grow\n")).unwrap();

        let report = update(&argv(&[
            &dir,
            "--remove-edges",
            &rm_file,
            "--add-edges",
            &add_file,
        ]))
        .unwrap();
        assert!(report.contains("1 removal(s) applied"), "{report}");
        assert!(report.contains("2 addition(s) applied"), "{report}");
        assert!(report.contains("generation 1:"), "{report}");

        // The chained index answers exactly what a fresh enumeration
        // of the patched graph produces.
        g = load(&path).unwrap();
        g = {
            let mut grown = g.grown(41);
            grown.remove_edge(ru, rv);
            grown.add_edge(au, av);
            grown.add_edge(0, 40);
            grown
        };
        let patched_path = tmp("g20-patched.txt");
        save(&g, &patched_path).unwrap();
        let plain = cliques(&argv(&[&patched_path, "--min", "3"])).unwrap();
        let mut want: Vec<&str> = plain.lines().filter(|l| !l.starts_with('#')).collect();
        want.sort();
        let all = query(&argv(&[&dir, "--size-min", "0", "--limit", "100000"])).unwrap();
        let mut got: Vec<String> = all
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| l.split_once('\t').unwrap().1.to_string())
            .collect();
        got.sort();
        assert_eq!(got, want, "chained query differs from fresh enumeration");

        // stats sees the chain, scrub walks it clean.
        let s = stats(&argv(&["--index", &dir])).unwrap();
        assert!(s.contains("delta chain:    1 generation(s)"), "{s}");
        let sc = scrub(&argv(&[&dir])).unwrap();
        assert!(sc.contains("index is clean"), "{sc}");
        assert!(sc.contains("delta chain: 1 generation(s)"), "{sc}");

        // A no-op batch (removing the already-removed edge) commits
        // nothing.
        let noop = update(&argv(&[&dir, "--remove-edges", &rm_file])).unwrap();
        assert!(noop.contains("no-op"), "{noop}");

        // Compact folds the chain; queries are unchanged and a second
        // compact is a no-op.
        let c = compact(&argv(&[&dir])).unwrap();
        assert!(c.contains("compacted"), "{c}");
        let all2 = query(&argv(&[&dir, "--size-min", "0", "--limit", "100000"])).unwrap();
        let mut got2: Vec<String> = all2
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| l.split_once('\t').unwrap().1.to_string())
            .collect();
        got2.sort();
        assert_eq!(got2, want, "compaction changed query answers");
        let s2 = stats(&argv(&["--index", &dir])).unwrap();
        assert!(!s2.contains("delta chain"), "{s2}");
        let c2 = compact(&argv(&[&dir])).unwrap();
        assert!(c2.contains("already compact"), "{c2}");

        // Frozen (--max) indexes refuse updates; an update without
        // edit files is a usage error.
        let frozen = tmp("g20-frozen");
        index(&argv(&[
            &path, "--min", "3", "--max", "5", "--out", &frozen,
        ]))
        .unwrap();
        let err = update(&argv(&[&frozen, "--add-edges", &add_file])).unwrap_err();
        assert!(matches!(err, CliError::Store(_)), "{err}");
        assert!(update(&argv(&[&dir])).is_err());

        for f in [&path, &patched_path, &rm_file, &add_file] {
            let _ = std::fs::remove_file(f);
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&frozen);
    }

    /// `gsb bench-update` smoke: the committed JSON has the diffed
    /// schema and the single-edge speedup clears the smoke floor.
    #[test]
    fn bench_update_smoke_writes_schema() {
        let out = tmp("bench-update.json");
        let report = bench_update(&argv(&["--smoke", "--out", &out])).unwrap();
        assert!(report.contains("bench-update (smoke)"), "{report}");
        let json = std::fs::read_to_string(&out).unwrap();
        for key in [
            "\"bench\": \"gsb_bench_update\"",
            "\"batches\"",
            "\"edits\":1",
            "\"edits\":64",
            "\"single_edge_speedup\"",
            "\"required_speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn drained_error_shape() {
        let e = CliError::Drained {
            signal: 2,
            connections: 41,
            requests: 40,
        };
        assert_eq!(e.exit_code(), 130);
        let text = e.to_string();
        assert!(text.contains("drained 41 connection(s)"), "{text}");
        assert!(text.contains("40 request(s)"), "{text}");
        // SIGTERM maps to the conventional 143.
        let e = CliError::Drained {
            signal: 15,
            connections: 1,
            requests: 1,
        };
        assert_eq!(e.exit_code(), 143);
    }
}
