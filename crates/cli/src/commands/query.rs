//! `gsb query` — answer clique queries from a `gsb index` directory,
//! read-only, without re-running any enumeration.

use crate::args::Args;
use crate::CliError;
use gsb_core::Clique;
use gsb_index::CliqueIndex;
use std::fmt::Write as _;
use std::path::Path;

/// `gsb query`
pub fn query(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(
        argv,
        &["containing", "size-min", "size-max", "overlap", "limit"],
        &["max", "ids-only"],
        1,
    )?;
    let dir = a.required_positional(0, "INDEX_DIR")?;
    let limit: usize = a.flag_or("limit", 1000)?;
    let ids_only = a.switch("ids-only");
    let index = CliqueIndex::open(Path::new(dir)).map_err(CliError::Store)?;

    let containing: Option<u32> = a.flag_opt("containing")?;
    let size_min: Option<u32> = a.flag_opt("size-min")?;
    let size_max: Option<u32> = a.flag_opt("size-max")?;
    let overlap = a.flag("overlap");
    let want_max = a.switch("max");

    let modes = [
        containing.is_some(),
        size_min.is_some() || size_max.is_some(),
        overlap.is_some(),
        want_max,
    ];
    if modes.iter().filter(|m| **m).count() != 1 {
        return Err(CliError::Usage(
            "gsb query needs exactly one of --containing V, --size-min/--size-max, \
             --overlap V,W, or --max"
                .into(),
        ));
    }

    if let Some(v) = containing {
        let ids = index.containing(v).map_err(CliError::Store)?;
        return render(
            &index,
            &format!("cliques containing {v}"),
            ids,
            limit,
            ids_only,
        );
    }
    if let Some(pair) = overlap {
        let Some((v, w)) = pair.split_once(',') else {
            return Err(CliError::Usage("--overlap takes V,W (two vertices)".into()));
        };
        let (v, w) = match (v.trim().parse::<u32>(), w.trim().parse::<u32>()) {
            (Ok(v), Ok(w)) => (v, w),
            _ => return Err(CliError::Usage("--overlap takes numeric vertices".into())),
        };
        let ids = index.overlap(v, w).map_err(CliError::Store)?;
        return render(
            &index,
            &format!("cliques containing both {v} and {w}"),
            ids,
            limit,
            ids_only,
        );
    }
    if want_max {
        let mut out = String::new();
        match index.max_clique().map_err(CliError::Store)? {
            Some(c) => {
                let _ = writeln!(out, "maximum clique (size {}):", c.len());
                let _ = writeln!(out, "{}", render_clique(&c));
            }
            None => {
                let _ = writeln!(out, "index is empty — no maximum clique");
            }
        }
        return Ok(out);
    }
    let lo = size_min.unwrap_or(0);
    let hi = size_max.unwrap_or(index.max_size());
    if lo > hi {
        return Err(CliError::Usage(format!(
            "--size-min {lo} exceeds --size-max {hi}"
        )));
    }
    // tombstone-aware: dead ids of a chained index are filtered out
    let ids: Vec<u64> = index.ids_of_size(lo, hi);
    render(
        &index,
        &format!("cliques of size {lo}..={hi}"),
        ids,
        limit,
        ids_only,
    )
}

fn render(
    index: &CliqueIndex,
    what: &str,
    ids: Vec<u64>,
    limit: usize,
    ids_only: bool,
) -> Result<String, CliError> {
    let mut out = String::new();
    let shown = ids.len().min(limit);
    let _ = writeln!(out, "{}: {} total", what, ids.len());
    if ids_only {
        for id in &ids[..shown] {
            let _ = writeln!(out, "{id}");
        }
    } else {
        let cliques = index
            .materialize(ids[..shown].iter().copied())
            .map_err(CliError::Store)?;
        for (id, c) in ids[..shown].iter().zip(&cliques) {
            let _ = writeln!(out, "#{id}\t{}", render_clique(c));
        }
    }
    if shown < ids.len() {
        let _ = writeln!(out, "… {} more (raise --limit)", ids.len() - shown);
    }
    Ok(out)
}

fn render_clique(c: &Clique) -> String {
    let text: Vec<String> = c.iter().map(u32::to_string).collect();
    format!("{}\t{}", c.len(), text.join(" "))
}
