//! `gsb generate` — synthesize benchmark graphs.

use super::save;
use crate::args::Args;
use crate::CliError;
use gsb_graph::generators::{correlation_like, gnp, planted, CorrelationProfile, Module};

/// `gsb generate`
pub fn generate(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(
        argv,
        &[
            "kind", "n", "p", "density", "modules", "seed", "out", "overlap",
        ],
        &[],
        0,
    )?;
    let kind = a.flag("kind").unwrap_or("gnp").to_string();
    let n: usize = a.flag_or("n", 100)?;
    let seed: u64 = a.flag_or("seed", 0)?;
    let out = a
        .flag("out")
        .ok_or(crate::args::ArgError::Required("--out".into()))?
        .to_string();
    let g = match kind.as_str() {
        "gnp" => {
            let p: f64 = a.flag_or("p", 0.01)?;
            gnp(n, p, seed)
        }
        "planted" => {
            let p: f64 = a.flag_or("p", 0.01)?;
            let sizes: Vec<usize> = a.flag_list("modules")?;
            let modules: Vec<Module> = sizes.into_iter().map(Module::clique).collect();
            planted(n, p, &modules, seed)
        }
        "correlation" => {
            let density: f64 = a.flag_or("density", 0.002)?;
            let mut profile = CorrelationProfile::myogenic_like(n);
            profile.density = density;
            if let Some(overlap) = a.flag_opt::<f64>("overlap")? {
                profile.overlap = overlap;
            }
            correlation_like(&profile, seed)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --kind {other:?} (gnp | planted | correlation)"
            )))
        }
    };
    save(&g, &out)?;
    Ok(format!(
        "wrote {} ({} vertices, {} edges, density {:.4}%)\n",
        out,
        g.n(),
        g.m(),
        100.0 * g.density()
    ))
}
