//! `gsb stats` — profile a graph file.

use super::load;
use crate::args::Args;
use crate::CliError;
use std::fmt::Write as _;

/// `gsb stats`
pub fn stats(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &[], &[], 1)?;
    let path = a.required_positional(0, "FILE")?;
    let g = load(path)?;
    let p = gsb_graph::stats::profile(&g);
    let mut out = String::new();
    let _ = writeln!(out, "file:        {path}");
    let _ = writeln!(out, "vertices:    {}", p.n);
    let _ = writeln!(out, "edges:       {}", p.m);
    let _ = writeln!(out, "density:     {:.4}%", 100.0 * p.density);
    let _ = writeln!(
        out,
        "degree:      min {} / mean {:.2} / max {}",
        p.min_degree, p.mean_degree, p.max_degree
    );
    let _ = writeln!(out, "isolated:    {}", p.isolated);
    let _ = writeln!(out, "triangles:   {}", p.triangles);
    let _ = writeln!(out, "clustering:  {:.4}", p.clustering);
    let _ = writeln!(
        out,
        "clique upper bound (degeneracy/coloring): {}",
        gsb_graph::reduce::clique_upper_bound(&g)
    );
    Ok(out)
}
