//! `gsb stats` — profile a graph file, or (with `--index`) a persistent
//! clique index directory.

use super::load;
use crate::args::Args;
use crate::CliError;
use gsb_core::sink::HistogramSink;
use std::fmt::Write as _;
use std::path::Path;

/// `gsb stats`
pub fn stats(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &["index"], &[], 1)?;
    if let Some(dir) = a.flag("index") {
        if a.positional(0).is_some() {
            return Err(CliError::Usage(
                "gsb stats takes either FILE or --index DIR, not both".into(),
            ));
        }
        return index_stats(dir);
    }
    let path = a.required_positional(0, "FILE")?;
    let g = load(path)?;
    let p = gsb_graph::stats::profile(&g);
    let mut out = String::new();
    let _ = writeln!(out, "file:        {path}");
    let _ = writeln!(out, "vertices:    {}", p.n);
    let _ = writeln!(out, "edges:       {}", p.m);
    let _ = writeln!(out, "density:     {:.4}%", 100.0 * p.density);
    let _ = writeln!(
        out,
        "degree:      min {} / mean {:.2} / max {}",
        p.min_degree, p.mean_degree, p.max_degree
    );
    let _ = writeln!(out, "isolated:    {}", p.isolated);
    let _ = writeln!(out, "triangles:   {}", p.triangles);
    let _ = writeln!(out, "clustering:  {:.4}", p.clustering);
    let _ = writeln!(
        out,
        "clique upper bound (degeneracy/coloring): {}",
        gsb_graph::reduce::clique_upper_bound(&g)
    );
    Ok(out)
}

/// `gsb stats --index DIR`: the index profile, with the size histogram
/// rebuilt into the same [`HistogramSink`] the live enumeration uses —
/// one rendering path for both "what did this run produce" views.
fn index_stats(dir: &str) -> Result<String, CliError> {
    let index = gsb_index::CliqueIndex::open(Path::new(dir)).map_err(CliError::Store)?;
    let s = index.stats();
    let mut histogram = HistogramSink::default();
    if let Some((max, _)) = s.size_histogram.last() {
        histogram.sizes.resize(*max as usize + 1, 0);
    }
    for (size, count) in &s.size_histogram {
        histogram.sizes[*size as usize] = *count as usize;
    }

    let mut out = String::new();
    let _ = writeln!(out, "index:          {dir}");
    let _ = writeln!(out, "vertices:       {}", s.n);
    let _ = writeln!(out, "cliques:        {}", s.cliques);
    let _ = writeln!(out, "largest clique: {}", s.max_clique);
    let _ = writeln!(out, "store blocks:   {}", s.blocks);
    let _ = writeln!(out, "store bytes:    {}", s.store_bytes);
    let _ = writeln!(out, "postings bytes: {}", s.postings_bytes);
    if s.delta_generations > 0 {
        let _ = writeln!(out, "delta chain:    {} generation(s)", s.delta_generations);
        let _ = writeln!(
            out,
            "live cliques:   {} ({} tombstoned, {:.1}% live)",
            s.live,
            s.tombstones,
            if s.cliques > 0 {
                100.0 * s.live as f64 / s.cliques as f64
            } else {
                100.0
            }
        );
        let _ = writeln!(out, "                (run `gsb compact` to fold the chain)");
    }
    // the histogram counts live cliques — total ids only when chain-free
    debug_assert_eq!(histogram.total() as u64, s.live);
    debug_assert_eq!(histogram.max_size() as u32, s.max_clique);
    if histogram.total() > 0 {
        let _ = writeln!(out, "size histogram:");
        let widest = histogram.sizes.iter().copied().max().unwrap_or(1).max(1);
        for (size, count) in histogram.sizes.iter().enumerate() {
            if *count == 0 {
                continue;
            }
            let bar = "#".repeat((count * 40).div_ceil(widest));
            let _ = writeln!(out, "  {size:>4}  {count:>10}  {bar}");
        }
    }
    if let Some(clique) = index.max_clique().map_err(CliError::Store)? {
        let text: Vec<String> = clique.iter().map(u32::to_string).collect();
        let _ = writeln!(out, "maximum clique: {}", text.join(" "));
    }
    Ok(out)
}
