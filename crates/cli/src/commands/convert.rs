//! `gsb convert` — translate between graph file formats by extension.

use super::{load, save};
use crate::args::Args;
use crate::CliError;

/// `gsb convert`
pub fn convert(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &[], &[], 2)?;
    let input = a.required_positional(0, "IN")?;
    let output = a.required_positional(1, "OUT")?;
    let g = load(input)?;
    save(&g, output)?;
    Ok(format!(
        "converted {input} -> {output} ({} vertices, {} edges)\n",
        g.n(),
        g.m()
    ))
}
