//! `gsb shard` — split one committed index into contiguous-id shard
//! directories a replicated `gsb serve` tier can serve, optionally
//! emitting the matching `gsb router` topology file.

use crate::args::Args;
use crate::CliError;
use gsb_index::{split_index, ShardSpec, Topology};
use std::fmt::Write as _;
use std::path::Path;

/// `gsb shard`
pub fn shard(argv: &[String]) -> Result<String, CliError> {
    let a = Args::parse(argv, &["out", "shards", "topology-out", "replicas"], &[], 1)?;
    let src = a.required_positional(0, "INDEX_DIR")?;
    let out = a
        .flag("out")
        .ok_or_else(|| CliError::Usage("gsb shard requires --out DIR".into()))?;
    let shards: usize = a.flag_or("shards", 2)?;
    let topology_out = a.flag("topology-out");
    let replicas = a.flag("replicas");
    if topology_out.is_some() && replicas.is_none() {
        return Err(CliError::Usage(
            "--topology-out needs --replicas (per-shard address lists, \
             comma-separated within a shard, slash-separated between shards: \
             h1:p1,h1:p2/h2:p1,h2:p2)"
                .into(),
        ));
    }

    let summaries = split_index(Path::new(src), Path::new(out), shards).map_err(CliError::Store)?;
    let mut report = String::new();
    let _ = writeln!(report, "split {} into {} shards under {}", src, shards, out);
    for s in &summaries {
        let _ = writeln!(
            report,
            "  shard {}: ids {}..{} sizes {}..{} at {}",
            s.shard,
            s.id_lo,
            s.id_hi,
            s.size_lo,
            s.size_hi,
            s.dir.display()
        );
    }

    if let (Some(path), Some(replicas)) = (topology_out, replicas) {
        let groups: Vec<&str> = replicas.split('/').collect();
        if groups.len() != summaries.len() {
            return Err(CliError::Usage(format!(
                "--replicas lists {} shard group(s) but --shards is {}",
                groups.len(),
                summaries.len()
            )));
        }
        let topology = Topology {
            shards: summaries
                .iter()
                .zip(&groups)
                .map(|(s, group)| ShardSpec {
                    id_lo: s.id_lo,
                    id_hi: s.id_hi,
                    size_lo: s.size_lo,
                    size_hi: s.size_hi,
                    replicas: group.split(',').map(str::to_string).collect(),
                })
                .collect(),
        };
        // Round-trip through the parser so a bad --replicas address is
        // caught here, not when the router starts.
        let text = topology.to_text();
        Topology::from_text(&text).map_err(CliError::Store)?;
        std::fs::write(path, &text)?;
        let _ = writeln!(report, "topology written to {path}");
    }
    Ok(report)
}
