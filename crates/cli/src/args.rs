//! A small, dependency-free argument parser: positionals plus
//! `--flag value` / `--switch` options, with typed accessors and
//! unknown-flag rejection.

use std::collections::BTreeMap;
use std::fmt;

/// Errors produced while parsing or validating arguments.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared that the command does not define.
    Unknown(String),
    /// A flag that needs a value was given none.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// The flag (or positional name).
        flag: String,
        /// The offending text.
        value: String,
        /// Parser message.
        message: String,
    },
    /// A required positional or flag was absent.
    Required(String),
    /// Too many positional arguments.
    ExtraPositional(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Unknown(flag) => write!(f, "unknown flag {flag}"),
            ArgError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            ArgError::BadValue {
                flag,
                value,
                message,
            } => write!(f, "bad value {value:?} for {flag}: {message}"),
            ArgError::Required(name) => write!(f, "missing required {name}"),
            ArgError::ExtraPositional(v) => write!(f, "unexpected argument {v:?}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed arguments for one subcommand.
#[derive(Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse `argv` (after the subcommand name). `value_flags` lists
    /// flags that consume a value; `switch_flags` are boolean. Flags
    /// are written `--name`.
    pub fn parse(
        argv: &[String],
        value_flags: &[&str],
        switch_flags: &[&str],
        max_positionals: usize,
    ) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                // allow --flag=value
                if let Some((n, v)) = name.split_once('=') {
                    if value_flags.contains(&n) {
                        out.flags.insert(n.to_string(), v.to_string());
                        continue;
                    }
                    return Err(ArgError::Unknown(format!("--{n}")));
                }
                if value_flags.contains(&name) {
                    match it.next() {
                        Some(v) => {
                            out.flags.insert(name.to_string(), v.clone());
                        }
                        None => return Err(ArgError::MissingValue(format!("--{name}"))),
                    }
                } else if switch_flags.contains(&name) {
                    out.switches.push(name.to_string());
                } else {
                    return Err(ArgError::Unknown(format!("--{name}")));
                }
            } else {
                if out.positionals.len() == max_positionals {
                    return Err(ArgError::ExtraPositional(a.clone()));
                }
                out.positionals.push(a.clone());
            }
        }
        Ok(out)
    }

    /// The i-th positional, if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// The i-th positional or an error naming it.
    pub fn required_positional(&self, i: usize, name: &str) -> Result<&str, ArgError> {
        self.positional(i)
            .ok_or_else(|| ArgError::Required(name.to_string()))
    }

    /// Is a boolean switch present?
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A flag's raw value.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A typed flag with a default.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.flag(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e: T::Err| ArgError::BadValue {
                flag: format!("--{name}"),
                value: raw.to_string(),
                message: e.to_string(),
            }),
        }
    }

    /// A typed optional flag.
    pub fn flag_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.flag(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e: T::Err| ArgError::BadValue {
                    flag: format!("--{name}"),
                    value: raw.to_string(),
                    message: e.to_string(),
                }),
        }
    }

    /// A comma-separated list flag (e.g. `--modules 9,7,5`).
    pub fn flag_list<T: std::str::FromStr>(&self, name: &str) -> Result<Vec<T>, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.flag(name) {
            None => Ok(Vec::new()),
            Some(raw) => raw
                .split(',')
                .map(|piece| {
                    piece
                        .trim()
                        .parse()
                        .map_err(|e: T::Err| ArgError::BadValue {
                            flag: format!("--{name}"),
                            value: piece.to_string(),
                            message: e.to_string(),
                        })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positional_and_flags() {
        let a = Args::parse(
            &argv(&["input.txt", "--min", "4", "--quiet"]),
            &["min"],
            &["quiet"],
            1,
        )
        .unwrap();
        assert_eq!(a.positional(0), Some("input.txt"));
        assert_eq!(a.flag_or("min", 0usize).unwrap(), 4);
        assert!(a.switch("quiet"));
        assert!(!a.switch("verbose"));
    }

    #[test]
    fn equals_syntax() {
        let a = Args::parse(&argv(&["--min=7"]), &["min"], &[], 0).unwrap();
        assert_eq!(a.flag_or("min", 0usize).unwrap(), 7);
    }

    #[test]
    fn rejects_unknown_and_extra() {
        assert_eq!(
            Args::parse(&argv(&["--bogus"]), &[], &[], 0).unwrap_err(),
            ArgError::Unknown("--bogus".into())
        );
        assert_eq!(
            Args::parse(&argv(&["a", "b"]), &[], &[], 1).unwrap_err(),
            ArgError::ExtraPositional("b".into())
        );
        assert_eq!(
            Args::parse(&argv(&["--min"]), &["min"], &[], 0).unwrap_err(),
            ArgError::MissingValue("--min".into())
        );
    }

    #[test]
    fn typed_errors() {
        let a = Args::parse(&argv(&["--min", "abc"]), &["min"], &[], 0).unwrap();
        let err = a.flag_or("min", 0usize).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
        assert!(err.to_string().contains("--min"));
    }

    #[test]
    fn list_flag() {
        let a = Args::parse(&argv(&["--modules", "9, 7,5"]), &["modules"], &[], 0).unwrap();
        assert_eq!(a.flag_list::<usize>("modules").unwrap(), vec![9, 7, 5]);
        let none = Args::parse(&argv(&[]), &["modules"], &[], 0).unwrap();
        assert!(none.flag_list::<usize>("modules").unwrap().is_empty());
    }

    #[test]
    fn required_positional_errors() {
        let a = Args::parse(&argv(&[]), &[], &[], 1).unwrap();
        assert_eq!(
            a.required_positional(0, "INPUT").unwrap_err(),
            ArgError::Required("INPUT".into())
        );
    }
}
