//! `gsb` binary entry point: parse argv, dispatch, print or fail.
//!
//! For supervised invocations (`resume`, or `cliques` with a
//! checkpoint directory) SIGINT/SIGTERM handlers are installed that
//! flip the process-global shutdown flag; the pipeline polls it at
//! level barriers, writes a final checkpoint, and the process exits
//! with the conventional `128 + signal` code. Other subcommands keep
//! the default kill-me-now behavior — they hold no durable state worth
//! a graceful wind-down.

/// SIGINT/SIGTERM → the global shutdown flag, via a direct `signal(2)`
/// FFI declaration (the workspace deliberately has no libc-style
/// dependency). Storing into an atomic is async-signal-safe.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(sig: i32) {
        gsb_core::supervise::global_signal_flag().store(sig.max(1) as usize, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Graceful shutdown only makes sense when there is durable state to
/// hand over (`resume`, or `cliques` running with a checkpoint dir) or
/// in-flight work to drain (`serve` answering accepted connections).
fn wants_supervision(argv: &[String]) -> bool {
    match argv.first().map(String::as_str) {
        Some("resume") | Some("serve") => true,
        Some("cliques") => argv.iter().any(|a| a == "--checkpoint-dir"),
        _ => false,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    #[cfg(unix)]
    if wants_supervision(&argv) {
        signals::install();
    }
    #[cfg(not(unix))]
    let _ = wants_supervision(&argv);
    match gsb_cli::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
