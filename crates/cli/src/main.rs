//! `gsb` binary entry point: parse argv, dispatch, print or fail.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match gsb_cli::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
