//! Pathway alignment: conserved linear pathways across two networks.
//!
//! The paper's §1: "one can discover uncharacterized functional
//! modules, by looking for conserved protein interaction pathways using
//! pathway alignment \[22\] based on optimization techniques such as
//! dynamic programming" — \[22\] is PathBLAST, which scores alignments of
//! linear pathways where matched nodes earn a similarity score and
//! insertions pay a gap penalty. Generic over the node type: the
//! caller supplies the similarity function (sequence homology, EC
//! number match, correlation, …).

/// One aligned column: indices into the two pathways (`None` = gap).
pub type PathwayColumn = (Option<usize>, Option<usize>);

/// Result of aligning two pathways.
#[derive(Clone, Debug, PartialEq)]
pub struct PathwayAlignment {
    /// Aligned columns in pathway order.
    pub columns: Vec<PathwayColumn>,
    /// Total score (similarity of matched nodes minus gap penalties).
    pub score: f64,
}

impl PathwayAlignment {
    /// Matched index pairs only.
    pub fn matches(&self) -> Vec<(usize, usize)> {
        self.columns
            .iter()
            .filter_map(|&(a, b)| Some((a?, b?)))
            .collect()
    }
}

/// Global alignment of two node sequences under a similarity function
/// and a (negative) per-gap penalty.
pub fn align_pathways<T>(
    a: &[T],
    b: &[T],
    similarity: impl Fn(&T, &T) -> f64,
    gap: f64,
) -> PathwayAlignment {
    let (m, n) = (a.len(), b.len());
    let width = n + 1;
    let mut score = vec![0.0f64; (m + 1) * width];
    let mut step = vec![0u8; (m + 1) * width]; // 0 stop, 1 diag, 2 up, 3 left
    for j in 1..=n {
        score[j] = gap * j as f64;
        step[j] = 3;
    }
    for i in 1..=m {
        score[i * width] = gap * i as f64;
        step[i * width] = 2;
    }
    for i in 1..=m {
        for j in 1..=n {
            let diag = score[(i - 1) * width + j - 1] + similarity(&a[i - 1], &b[j - 1]);
            let up = score[(i - 1) * width + j] + gap;
            let left = score[i * width + j - 1] + gap;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 1u8)
            } else if up >= left {
                (up, 2)
            } else {
                (left, 3)
            };
            score[i * width + j] = best;
            step[i * width + j] = dir;
        }
    }
    let (mut i, mut j) = (m, n);
    let mut columns = Vec::new();
    while step[i * width + j] != 0 {
        match step[i * width + j] {
            1 => {
                i -= 1;
                j -= 1;
                columns.push((Some(i), Some(j)));
            }
            2 => {
                i -= 1;
                columns.push((Some(i), None));
            }
            _ => {
                j -= 1;
                columns.push((None, Some(j)));
            }
        }
    }
    columns.reverse();
    PathwayAlignment {
        columns,
        score: score[m * width + n],
    }
}

/// Convenience similarity for labeled nodes: `hit` when labels are
/// equal, `miss` otherwise.
pub fn label_similarity(hit: f64, miss: f64) -> impl Fn(&&str, &&str) -> f64 {
    move |a: &&str, b: &&str| if a == b { hit } else { miss }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_pathways_fully_match() {
        let glycolysis = ["HK", "PGI", "PFK", "ALD", "GAPDH"];
        let al = align_pathways(&glycolysis, &glycolysis, label_similarity(2.0, -1.0), -1.0);
        assert_eq!(al.matches().len(), 5);
        assert!((al.score - 10.0).abs() < 1e-12);
    }

    #[test]
    fn insertion_costs_one_gap() {
        // second organism has an extra enzyme spliced into the chain
        let a = ["HK", "PGI", "PFK", "ALD"];
        let b = ["HK", "PGI", "TPI", "PFK", "ALD"];
        let al = align_pathways(&a, &b, label_similarity(2.0, -2.0), -1.0);
        assert_eq!(al.matches().len(), 4);
        let gaps = al
            .columns
            .iter()
            .filter(|&&(x, y)| x.is_none() || y.is_none())
            .count();
        assert_eq!(gaps, 1);
        assert!((al.score - (8.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn diverged_enzymes_align_by_position() {
        let a = ["HK", "PGI", "PFK"];
        let b = ["HK", "GPI", "PFK"]; // homolog with a different label
                                      // similarity function that knows PGI ~ GPI
        let sim = |x: &&str, y: &&str| {
            if x == y || (*x == "PGI" && *y == "GPI") {
                2.0
            } else {
                -2.0
            }
        };
        let al = align_pathways(&a, &b, sim, -1.0);
        assert_eq!(al.matches(), vec![(0, 0), (1, 1), (2, 2)]);
        assert!((al.score - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pathways() {
        let a: [&str; 0] = [];
        let b = ["HK"];
        let al = align_pathways(&a, &b, label_similarity(1.0, -1.0), -0.5);
        assert_eq!(al.columns, vec![(None, Some(0))]);
        assert!((al.score + 0.5).abs() < 1e-12);
        let both: PathwayAlignment = align_pathways(&a, &a, label_similarity(1.0, -1.0), -0.5);
        assert!(both.columns.is_empty());
        assert_eq!(both.score, 0.0);
    }

    #[test]
    fn matches_are_monotone() {
        // alignment columns never cross
        let a = ["A", "B", "C", "D", "E"];
        let b = ["X", "B", "C", "Y", "E"];
        let al = align_pathways(&a, &b, label_similarity(2.0, -1.0), -1.0);
        let m = al.matches();
        for w in m.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }
}
