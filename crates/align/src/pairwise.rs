//! Pairwise alignment: Needleman–Wunsch (global) and Smith–Waterman
//! (local), full-matrix dynamic programming with traceback.
//!
//! The space-for-time trade the paper's §4 highlights: an (m+1)×(n+1)
//! score matrix held fully in memory so the optimal path can be walked
//! back — genome-scale instances of exactly this shape are what demand
//! "memory intensive management techniques".

use crate::score::Scoring;

/// Gap character used in alignment rows.
pub const GAP: u8 = b'-';

/// A pairwise alignment: two equal-length rows with `-` for gaps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alignment {
    /// Aligned first sequence.
    pub a: Vec<u8>,
    /// Aligned second sequence.
    pub b: Vec<u8>,
    /// Optimal score.
    pub score: i32,
}

impl Alignment {
    /// Fraction of columns where both rows carry the same (non-gap)
    /// symbol.
    pub fn identity(&self) -> f64 {
        if self.a.is_empty() {
            return 1.0;
        }
        let same = self
            .a
            .iter()
            .zip(&self.b)
            .filter(|&(&x, &y)| x == y && x != GAP)
            .count();
        same as f64 / self.a.len() as f64
    }

    /// Render as two lines (test/debug helper).
    pub fn render(&self) -> String {
        format!(
            "{}\n{}",
            String::from_utf8_lossy(&self.a),
            String::from_utf8_lossy(&self.b)
        )
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Step {
    Stop,
    Diag,
    Up,   // gap in b (consume a)
    Left, // gap in a (consume b)
}

/// Global (Needleman–Wunsch) alignment of two byte sequences.
pub fn global_align(a: &[u8], b: &[u8], scoring: &Scoring) -> Alignment {
    let (m, n) = (a.len(), b.len());
    let width = n + 1;
    let mut score = vec![0i32; (m + 1) * width];
    let mut step = vec![Step::Stop; (m + 1) * width];
    for j in 1..=n {
        score[j] = scoring.gap * j as i32;
        step[j] = Step::Left;
    }
    for i in 1..=m {
        score[i * width] = scoring.gap * i as i32;
        step[i * width] = Step::Up;
    }
    for i in 1..=m {
        for j in 1..=n {
            let diag = score[(i - 1) * width + j - 1] + scoring.pair(a[i - 1], b[j - 1]);
            let up = score[(i - 1) * width + j] + scoring.gap;
            let left = score[i * width + j - 1] + scoring.gap;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, Step::Diag)
            } else if up >= left {
                (up, Step::Up)
            } else {
                (left, Step::Left)
            };
            score[i * width + j] = best;
            step[i * width + j] = dir;
        }
    }
    let mut out = traceback(a, b, &step, width, m, n);
    out.score = score[m * width + n];
    out
}

/// Local (Smith–Waterman) alignment: the best-scoring pair of
/// substrings (score ≥ 0 by construction).
pub fn local_align(a: &[u8], b: &[u8], scoring: &Scoring) -> Alignment {
    let (m, n) = (a.len(), b.len());
    let width = n + 1;
    let mut score = vec![0i32; (m + 1) * width];
    let mut step = vec![Step::Stop; (m + 1) * width];
    let mut best = (0i32, 0usize, 0usize);
    for i in 1..=m {
        for j in 1..=n {
            let diag = score[(i - 1) * width + j - 1] + scoring.pair(a[i - 1], b[j - 1]);
            let up = score[(i - 1) * width + j] + scoring.gap;
            let left = score[i * width + j - 1] + scoring.gap;
            let (mut s, mut dir) = if diag >= up && diag >= left {
                (diag, Step::Diag)
            } else if up >= left {
                (up, Step::Up)
            } else {
                (left, Step::Left)
            };
            if s <= 0 {
                s = 0;
                dir = Step::Stop;
            }
            score[i * width + j] = s;
            step[i * width + j] = dir;
            if s > best.0 {
                best = (s, i, j);
            }
        }
    }
    let (s, bi, bj) = best;
    let mut out = traceback(a, b, &step, width, bi, bj);
    out.score = s;
    out
}

fn traceback(
    a: &[u8],
    b: &[u8],
    step: &[Step],
    width: usize,
    mut i: usize,
    mut j: usize,
) -> Alignment {
    let mut ra = Vec::new();
    let mut rb = Vec::new();
    loop {
        match step[i * width + j] {
            Step::Stop => break,
            Step::Diag => {
                i -= 1;
                j -= 1;
                ra.push(a[i]);
                rb.push(b[j]);
            }
            Step::Up => {
                i -= 1;
                ra.push(a[i]);
                rb.push(GAP);
            }
            Step::Left => {
                j -= 1;
                ra.push(GAP);
                rb.push(b[j]);
            }
        }
    }
    ra.reverse();
    rb.reverse();
    Alignment {
        a: ra,
        b: rb,
        score: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Scoring {
        Scoring::default()
    }

    #[test]
    fn identical_sequences_align_perfectly() {
        let al = global_align(b"GATTACA", b"GATTACA", &s());
        assert_eq!(al.score, 7);
        assert_eq!(al.a, al.b);
        assert_eq!(al.identity(), 1.0);
    }

    #[test]
    fn textbook_needleman_wunsch() {
        // classic example: GATTACA vs GCATGCU with +1/-1/-1
        let scoring = Scoring {
            match_score: 1,
            mismatch: -1,
            gap: -1,
        };
        let al = global_align(b"GATTACA", b"GCATGCU", &scoring);
        assert_eq!(al.score, 0); // the canonical answer
        assert_eq!(al.a.len(), al.b.len());
    }

    #[test]
    fn gaps_inserted_where_needed() {
        let al = global_align(b"ACGT", b"AGT", &s());
        assert_eq!(al.a, b"ACGT".to_vec());
        assert_eq!(al.b, b"A-GT".to_vec());
        assert_eq!(al.score, 3 - 2);
    }

    #[test]
    fn empty_sequences() {
        let al = global_align(b"", b"AC", &s());
        assert_eq!(al.a, b"--".to_vec());
        assert_eq!(al.b, b"AC".to_vec());
        assert_eq!(al.score, -4);
        let al = global_align(b"", b"", &s());
        assert!(al.a.is_empty());
        assert_eq!(al.score, 0);
    }

    #[test]
    fn local_finds_embedded_match() {
        // shared core "CCCCC" inside unrelated flanks
        let al = local_align(b"AAAACCCCCTTTT", b"GGGGCCCCCAAAA", &s());
        assert_eq!(al.a, b"CCCCC".to_vec());
        assert_eq!(al.b, b"CCCCC".to_vec());
        assert_eq!(al.score, 5);
    }

    #[test]
    fn local_score_never_negative() {
        let al = local_align(b"AAAA", b"TTTT", &s());
        assert_eq!(al.score, 0);
        assert!(al.a.is_empty());
    }

    #[test]
    fn global_symmetric_score() {
        let x = b"ACGTACGGT";
        let y = b"ACTTAGGT";
        let ab = global_align(x, y, &s());
        let ba = global_align(y, x, &s());
        assert_eq!(ab.score, ba.score);
    }
}
