//! # gsb-align — dynamic-programming alignment substrate
//!
//! Two of the SC'05 paper's named applications are alignment problems:
//!
//! * "the construction of ClustalXP \[29\] for high-performance multiple
//!   sequence alignment" — the framework's HPC sibling, reproduced here
//!   as the classic progressive-alignment stack: pairwise
//!   Needleman–Wunsch / Smith–Waterman, a distance matrix
//!   (embarrassingly parallel, rayon), a UPGMA guide tree, and
//!   profile–profile progressive alignment;
//! * "one can discover uncharacterized functional modules, by looking
//!   for conserved protein interaction pathways using pathway alignment
//!   \[22\] based on optimization techniques such as dynamic programming"
//!   (§1) — PathBLAST-style alignment of two linear pathways with
//!   node-similarity scoring and gap penalties.
//!
//! The paper's §4 closes on exactly this: "we should not overlook
//! dynamic programming ... with dynamic programming we generally trade
//! space for time" — these kernels are the trade being discussed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod pairwise;
pub mod pathway;
pub mod progressive;
pub mod score;
pub mod tree;

pub use pairwise::{global_align, local_align, Alignment};
pub use pathway::{align_pathways, PathwayAlignment};
pub use progressive::{progressive_msa, Msa};
pub use score::Scoring;
