//! Scoring schemes for alignment.

/// Linear-gap scoring for sequence alignment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scoring {
    /// Score for aligning two equal symbols.
    pub match_score: i32,
    /// Score for aligning two different symbols.
    pub mismatch: i32,
    /// Score per gap symbol (should be negative).
    pub gap: i32,
}

impl Default for Scoring {
    /// The classic teaching scheme: +1 / −1 / −2.
    fn default() -> Self {
        Scoring {
            match_score: 1,
            mismatch: -1,
            gap: -2,
        }
    }
}

impl Scoring {
    /// DNA-ish scheme used by many tools: +2 / −1 / −2.
    pub fn dna() -> Self {
        Scoring {
            match_score: 2,
            mismatch: -1,
            gap: -2,
        }
    }

    /// Score of aligning symbols `a` and `b`.
    #[inline]
    pub fn pair(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.match_score
        } else {
            self.mismatch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_scores() {
        let s = Scoring::default();
        assert_eq!(s.pair(b'A', b'A'), 1);
        assert_eq!(s.pair(b'A', b'C'), -1);
        let d = Scoring::dna();
        assert_eq!(d.pair(b'G', b'G'), 2);
    }
}
