//! Progressive multiple sequence alignment (the ClustalW/ClustalXP
//! recipe): pairwise distances → UPGMA guide tree → profile–profile
//! Needleman–Wunsch up the tree.

use crate::distance::distance_matrix;
use crate::pairwise::GAP;
use crate::score::Scoring;
use crate::tree::{upgma, GuideTree};

/// A multiple sequence alignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Msa {
    /// Aligned rows (equal lengths, `-` for gaps), in `order`.
    pub rows: Vec<Vec<u8>>,
    /// `order[r]` = original index of row `r`.
    pub order: Vec<usize>,
}

impl Msa {
    /// Alignment width (columns).
    pub fn width(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// The aligned row of original sequence `i`.
    pub fn row_for(&self, i: usize) -> &[u8] {
        let r = self
            .order
            .iter()
            .position(|&o| o == i)
            .expect("sequence index in alignment");
        &self.rows[r]
    }

    /// Strip gaps from a row, recovering the input sequence.
    pub fn ungapped(&self, i: usize) -> Vec<u8> {
        self.row_for(i)
            .iter()
            .copied()
            .filter(|&c| c != GAP)
            .collect()
    }

    /// Sum-of-pairs score over all columns and row pairs (gap–gap
    /// scores 0, gap–symbol scores the gap penalty).
    pub fn sum_of_pairs(&self, scoring: &Scoring) -> i64 {
        let mut total = 0i64;
        for col in 0..self.width() {
            for a in 0..self.rows.len() {
                for b in a + 1..self.rows.len() {
                    let (x, y) = (self.rows[a][col], self.rows[b][col]);
                    total += match (x == GAP, y == GAP) {
                        (true, true) => 0,
                        (true, false) | (false, true) => scoring.gap as i64,
                        (false, false) => scoring.pair(x, y) as i64,
                    };
                }
            }
        }
        total
    }
}

/// Column-vs-column expected score between two profiles.
fn column_score(pa: &[Vec<u8>], ca: usize, pb: &[Vec<u8>], cb: usize, scoring: &Scoring) -> f64 {
    let mut total = 0.0;
    for row_a in pa {
        for row_b in pb {
            let (x, y) = (row_a[ca], row_b[cb]);
            total += match (x == GAP, y == GAP) {
                (true, true) => 0.0,
                (true, false) | (false, true) => scoring.gap as f64,
                (false, false) => scoring.pair(x, y) as f64,
            };
        }
    }
    total / (pa.len() * pb.len()) as f64
}

/// Needleman–Wunsch over profile columns; returns the merged rows
/// (profile A's rows first).
fn align_profiles(pa: Vec<Vec<u8>>, pb: Vec<Vec<u8>>, scoring: &Scoring) -> Vec<Vec<u8>> {
    let (m, n) = (pa[0].len(), pb[0].len());
    let width = n + 1;
    let gapf = scoring.gap as f64;
    let mut score = vec![0.0f64; (m + 1) * width];
    let mut step = vec![0u8; (m + 1) * width]; // 0 stop, 1 diag, 2 up, 3 left
    for j in 1..=n {
        score[j] = gapf * j as f64;
        step[j] = 3;
    }
    for i in 1..=m {
        score[i * width] = gapf * i as f64;
        step[i * width] = 2;
    }
    for i in 1..=m {
        for j in 1..=n {
            let diag =
                score[(i - 1) * width + j - 1] + column_score(&pa, i - 1, &pb, j - 1, scoring);
            let up = score[(i - 1) * width + j] + gapf;
            let left = score[i * width + j - 1] + gapf;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 1)
            } else if up >= left {
                (up, 2)
            } else {
                (left, 3)
            };
            score[i * width + j] = best;
            step[i * width + j] = dir;
        }
    }
    // traceback into column index sequences
    let (mut i, mut j) = (m, n);
    let mut ops: Vec<u8> = Vec::new();
    while step[i * width + j] != 0 {
        let s = step[i * width + j];
        ops.push(s);
        match s {
            1 => {
                i -= 1;
                j -= 1;
            }
            2 => i -= 1,
            _ => j -= 1,
        }
    }
    ops.reverse();
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); pa.len() + pb.len()];
    let (mut ia, mut ib) = (0usize, 0usize);
    for op in ops {
        match op {
            1 => {
                for (r, row) in pa.iter().enumerate() {
                    out[r].push(row[ia]);
                }
                for (r, row) in pb.iter().enumerate() {
                    out[pa.len() + r].push(row[ib]);
                }
                ia += 1;
                ib += 1;
            }
            2 => {
                for (r, row) in pa.iter().enumerate() {
                    out[r].push(row[ia]);
                }
                for slot in out[pa.len()..].iter_mut() {
                    slot.push(GAP);
                }
                ia += 1;
            }
            _ => {
                for slot in out[..pa.len()].iter_mut() {
                    slot.push(GAP);
                }
                for (r, row) in pb.iter().enumerate() {
                    out[pa.len() + r].push(row[ib]);
                }
                ib += 1;
            }
        }
    }
    out
}

fn align_tree(tree: &GuideTree, seqs: &[Vec<u8>], scoring: &Scoring) -> (Vec<Vec<u8>>, Vec<usize>) {
    match tree {
        GuideTree::Leaf(i) => (vec![seqs[*i].clone()], vec![*i]),
        GuideTree::Node { left, right, .. } => {
            let (pa, oa) = align_tree(left, seqs, scoring);
            let (pb, ob) = align_tree(right, seqs, scoring);
            let merged = align_profiles(pa, pb, scoring);
            let mut order = oa;
            order.extend(ob);
            (merged, order)
        }
    }
}

/// Progressive MSA of `seqs` (at least one, each possibly empty).
pub fn progressive_msa(seqs: &[Vec<u8>], scoring: &Scoring) -> Msa {
    assert!(!seqs.is_empty(), "need at least one sequence");
    if seqs.len() == 1 {
        return Msa {
            rows: vec![seqs[0].clone()],
            order: vec![0],
        };
    }
    let dist = distance_matrix(seqs, scoring);
    let tree = upgma(&dist);
    let (rows, order) = align_tree(&tree, seqs, scoring);
    Msa { rows, order }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(xs: &[&str]) -> Vec<Vec<u8>> {
        xs.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn identical_inputs_align_without_gaps() {
        let msa = progressive_msa(&seqs(&["ACGT", "ACGT", "ACGT"]), &Scoring::default());
        assert_eq!(msa.width(), 4);
        for i in 0..3 {
            assert_eq!(msa.row_for(i), b"ACGT");
        }
    }

    #[test]
    fn rows_equal_length_and_ungap_to_inputs() {
        let input = seqs(&["ACGTTACG", "ACGTACG", "CGTTACG", "ACGTTAG"]);
        let msa = progressive_msa(&input, &Scoring::default());
        let w = msa.width();
        for row in &msa.rows {
            assert_eq!(row.len(), w);
        }
        for (i, original) in input.iter().enumerate() {
            assert_eq!(&msa.ungapped(i), original, "sequence {i}");
        }
    }

    #[test]
    fn single_deletion_yields_one_gap_column() {
        let input = seqs(&["ACGTACGT", "ACGACGT"]); // T deleted
        let msa = progressive_msa(&input, &Scoring::default());
        assert_eq!(msa.width(), 8);
        let gaps: usize = msa
            .rows
            .iter()
            .map(|r| r.iter().filter(|&&c| c == GAP).count())
            .sum();
        assert_eq!(gaps, 1);
    }

    #[test]
    fn sum_of_pairs_prefers_the_real_alignment() {
        let input = seqs(&["ACGTACGT", "ACGACGT", "ACGTACG"]);
        let msa = progressive_msa(&input, &Scoring::default());
        let sp = msa.sum_of_pairs(&Scoring::default());
        // a strawman alignment: left-justify and pad with gaps
        let w = input.iter().map(Vec::len).max().unwrap();
        let padded = Msa {
            rows: input
                .iter()
                .map(|s| {
                    let mut r = s.clone();
                    r.resize(w, GAP);
                    r
                })
                .collect(),
            order: vec![0, 1, 2],
        };
        assert!(sp >= padded.sum_of_pairs(&Scoring::default()));
    }

    #[test]
    fn single_sequence() {
        let msa = progressive_msa(&seqs(&["HELLO"]), &Scoring::default());
        assert_eq!(msa.rows, vec![b"HELLO".to_vec()]);
        assert_eq!(msa.ungapped(0), b"HELLO".to_vec());
    }

    #[test]
    fn empty_sequences_survive() {
        let msa = progressive_msa(&seqs(&["", "AC"]), &Scoring::default());
        assert_eq!(msa.width(), 2);
        assert_eq!(msa.ungapped(0), b"".to_vec());
        assert_eq!(msa.ungapped(1), b"AC".to_vec());
    }
}
