//! UPGMA guide trees for progressive alignment.

use crate::distance::DistanceMatrix;

/// A rooted binary guide tree over sequence indices.
#[derive(Clone, Debug, PartialEq)]
pub enum GuideTree {
    /// A single input sequence.
    Leaf(usize),
    /// Merge of two subtrees at the given UPGMA height.
    Node {
        /// Left subtree.
        left: Box<GuideTree>,
        /// Right subtree.
        right: Box<GuideTree>,
        /// Merge height (half the inter-cluster distance).
        height: f64,
    },
}

impl GuideTree {
    /// Leaf indices in left-to-right order — the order sequences enter
    /// the progressive alignment.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<usize>) {
        match self {
            GuideTree::Leaf(i) => out.push(*i),
            GuideTree::Node { left, right, .. } => {
                left.collect(out);
                right.collect(out);
            }
        }
    }
}

/// UPGMA: repeatedly merge the two closest clusters, averaging
/// distances weighted by cluster size.
pub fn upgma(dist: &DistanceMatrix) -> GuideTree {
    let n = dist.n();
    assert!(n > 0, "need at least one sequence");
    let mut clusters: Vec<Option<(GuideTree, usize)>> =
        (0..n).map(|i| Some((GuideTree::Leaf(i), 1))).collect();
    // working distance table (indexed like the input, grows logically
    // as clusters merge into the lower slot)
    let mut d = vec![vec![0.0f64; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = dist.get(i, j);
        }
    }
    let mut alive: Vec<usize> = (0..n).collect();
    while alive.len() > 1 {
        // closest pair among alive clusters
        let (mut bi, mut bj, mut best) = (alive[0], alive[1], f64::INFINITY);
        for (x, &i) in alive.iter().enumerate() {
            for &j in &alive[x + 1..] {
                if d[i][j] < best {
                    best = d[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        let (left, ls) = clusters[bi].take().expect("alive");
        let (right, rs) = clusters[bj].take().expect("alive");
        // UPGMA average distances to every other cluster
        for &k in &alive {
            if k != bi && k != bj {
                let nd = (d[bi][k] * ls as f64 + d[bj][k] * rs as f64) / (ls + rs) as f64;
                d[bi][k] = nd;
                d[k][bi] = nd;
            }
        }
        clusters[bi] = Some((
            GuideTree::Node {
                left: Box::new(left),
                right: Box::new(right),
                height: best / 2.0,
            },
            ls + rs,
        ));
        alive.retain(|&k| k != bj);
    }
    clusters[alive[0]].take().expect("root").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance_matrix;
    use crate::score::Scoring;

    #[test]
    fn single_leaf() {
        let seqs = vec![b"AC".to_vec()];
        let t = upgma(&distance_matrix(&seqs, &Scoring::default()));
        assert_eq!(t, GuideTree::Leaf(0));
    }

    #[test]
    fn closest_pair_merges_first() {
        // 0 and 1 nearly identical; 2 far away
        let seqs = vec![
            b"ACGTACGT".to_vec(),
            b"ACGTACGA".to_vec(),
            b"TTTTGGGG".to_vec(),
        ];
        let t = upgma(&distance_matrix(&seqs, &Scoring::default()));
        // leaves order: the {0,1} cluster forms a subtree
        match &t {
            GuideTree::Node { left, right, .. } => {
                let (sub, lone) = if matches!(**left, GuideTree::Leaf(_)) {
                    (right, left)
                } else {
                    (left, right)
                };
                assert!(matches!(**lone, GuideTree::Leaf(2)));
                let mut pair = sub.leaves();
                pair.sort_unstable();
                assert_eq!(pair, vec![0, 1]);
            }
            GuideTree::Leaf(_) => panic!("expected a node"),
        }
    }

    #[test]
    fn leaves_cover_all_inputs() {
        let seqs: Vec<Vec<u8>> = (0..6)
            .map(|i| format!("SEQ{i}AAAA{i}").into_bytes())
            .collect();
        let t = upgma(&distance_matrix(&seqs, &Scoring::default()));
        let mut l = t.leaves();
        l.sort_unstable();
        assert_eq!(l, vec![0, 1, 2, 3, 4, 5]);
    }
}
