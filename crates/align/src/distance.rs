//! Pairwise distance matrices — the all-pairs stage ClustalXP
//! parallelizes (it is embarrassingly parallel, like the correlation
//! matrix in `gsb-expr`; rayon here, a cluster there).

use crate::pairwise::global_align;
use crate::score::Scoring;
use rayon::prelude::*;

/// Symmetric distance matrix, full storage (small k: one row per
/// sequence).
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Number of sequences.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance between sequences `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    fn set(&mut self, i: usize, j: usize, d: f64) {
        self.data[i * self.n + j] = d;
        self.data[j * self.n + i] = d;
    }
}

/// Alignment-identity distance: `1 − identity(global alignment)`.
/// Parallel over pairs.
pub fn distance_matrix(seqs: &[Vec<u8>], scoring: &Scoring) -> DistanceMatrix {
    let n = seqs.len();
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect();
    let dists: Vec<((usize, usize), f64)> = pairs
        .par_iter()
        .map(|&(i, j)| {
            let al = global_align(&seqs[i], &seqs[j], scoring);
            ((i, j), 1.0 - al.identity())
        })
        .collect();
    let mut m = DistanceMatrix {
        n,
        data: vec![0.0; n * n],
    };
    for ((i, j), d) in dists {
        m.set(i, j, d);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_distance_zero() {
        let seqs = vec![b"ACGT".to_vec(), b"ACGT".to_vec(), b"TTTT".to_vec()];
        let m = distance_matrix(&seqs, &Scoring::default());
        assert_eq!(m.get(0, 1), 0.0);
        assert!(m.get(0, 2) > 0.5);
        assert_eq!(m.get(2, 0), m.get(0, 2)); // symmetric
        assert_eq!(m.get(1, 1), 0.0); // diagonal
    }

    #[test]
    fn closer_sequences_are_closer() {
        let seqs = vec![
            b"ACGTACGT".to_vec(),
            b"ACGTACGA".to_vec(), // 1 substitution
            b"TGCATGCA".to_vec(), // unrelated
        ];
        let m = distance_matrix(&seqs, &Scoring::default());
        assert!(m.get(0, 1) < m.get(0, 2));
    }
}
