//! Property tests for the alignment kernels.

use gsb_align::pairwise::{global_align, local_align, GAP};
use gsb_align::progressive::progressive_msa;
use gsb_align::score::Scoring;
use proptest::prelude::*;

fn dna() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 0..24)
}

proptest! {
    #[test]
    fn global_rows_reconstruct_inputs(a in dna(), b in dna()) {
        let al = global_align(&a, &b, &Scoring::default());
        prop_assert_eq!(al.a.len(), al.b.len());
        let ra: Vec<u8> = al.a.iter().copied().filter(|&c| c != GAP).collect();
        let rb: Vec<u8> = al.b.iter().copied().filter(|&c| c != GAP).collect();
        prop_assert_eq!(ra, a);
        prop_assert_eq!(rb, b);
        // no column is gap-gap
        prop_assert!(al.a.iter().zip(&al.b).all(|(&x, &y)| x != GAP || y != GAP));
    }

    #[test]
    fn global_score_matches_columns(a in dna(), b in dna()) {
        let s = Scoring::default();
        let al = global_align(&a, &b, &s);
        let recomputed: i32 = al
            .a
            .iter()
            .zip(&al.b)
            .map(|(&x, &y)| {
                if x == GAP || y == GAP {
                    s.gap
                } else {
                    s.pair(x, y)
                }
            })
            .sum();
        prop_assert_eq!(al.score, recomputed);
    }

    #[test]
    fn global_score_symmetric(a in dna(), b in dna()) {
        let s = Scoring::default();
        prop_assert_eq!(global_align(&a, &b, &s).score, global_align(&b, &a, &s).score);
    }

    #[test]
    fn self_alignment_is_perfect(a in dna()) {
        let s = Scoring::default();
        let al = global_align(&a, &a, &s);
        prop_assert_eq!(al.score, a.len() as i32 * s.match_score);
        prop_assert_eq!(al.identity(), 1.0);
    }

    #[test]
    fn local_dominates_and_is_nonnegative(a in dna(), b in dna()) {
        let s = Scoring::default();
        let local = local_align(&a, &b, &s);
        prop_assert!(local.score >= 0);
        prop_assert!(local.score >= global_align(&a, &b, &s).score);
    }

    #[test]
    fn msa_preserves_sequences(seqs in prop::collection::vec(dna(), 1..5)) {
        let msa = progressive_msa(&seqs, &Scoring::default());
        let w = msa.width();
        for row in &msa.rows {
            prop_assert_eq!(row.len(), w);
        }
        for (i, original) in seqs.iter().enumerate() {
            prop_assert_eq!(&msa.ungapped(i), original);
        }
    }
}
