//! Centralized load-balancing policy, as pure functions over task costs.
//!
//! The paper (§2.3): the scheduler "identifies the heavy-loaded threads,
//! and light-loaded threads will help the heaviest-loaded thread ... if
//! the difference between two threads is greater than a certain
//! threshold, a load transfer decision is made. In our algorithm the
//! threshold is determined based on the graph size, the total amount of
//! current load, and differences of their loads from the average load."
//!
//! The policy here makes those suppressed details concrete and testable:
//! the transfer threshold is `max(rel_slack × total / workers, min_abs)`,
//! and transfers move whole tasks from the heaviest to the lightest
//! worker until the spread drops below the threshold (or no single task
//! move can improve it).

/// Tunable balancing policy.
#[derive(Clone, Copy, Debug)]
pub struct BalancePolicy {
    /// Spread tolerance as a fraction of the per-worker average load.
    pub rel_slack: f64,
    /// Absolute floor under which imbalance is never acted on (models
    /// the paper's graph-size-dependent component: moving tiny tasks
    /// costs more in scheduling than it saves).
    pub min_abs: u64,
}

impl Default for BalancePolicy {
    fn default() -> Self {
        BalancePolicy {
            rel_slack: 0.10,
            min_abs: 1,
        }
    }
}

impl BalancePolicy {
    /// The transfer threshold for a given total load and worker count.
    pub fn threshold(&self, total: u64, workers: usize) -> u64 {
        let avg = total as f64 / workers.max(1) as f64;
        ((avg * self.rel_slack) as u64).max(self.min_abs)
    }
}

/// Greedy LPT (longest processing time first) initial partition: sort
/// tasks by descending cost, place each on the currently lightest
/// worker. Returns per-worker lists of task indices.
pub fn partition_greedy(costs: &[u64], workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));
    let mut loads = vec![0u64; workers];
    let mut assign: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for idx in order {
        let w = (0..workers).min_by_key(|&w| (loads[w], w)).unwrap();
        loads[w] += costs[idx];
        assign[w].push(idx);
    }
    assign
}

/// Move tasks from heavy to light workers until the load spread drops
/// below the policy threshold (or no single move can improve it).
/// Mutates the real task queues directly — `cost` prices each task —
/// and returns the number of tasks moved, which callers fold into the
/// unified moved-work count of [`LevelStats::transfers`]
/// (crate::stats::LevelStats::transfers).
pub fn rebalance<T>(
    queues: &mut [Vec<T>],
    cost: impl Fn(&T) -> u64,
    policy: &BalancePolicy,
) -> usize {
    let workers = queues.len();
    if workers < 2 {
        return 0;
    }
    let total: u64 = queues.iter().flat_map(|q| q.iter().map(&cost)).sum();
    let threshold = policy.threshold(total, workers);
    let mut moved = 0usize;
    // Bounded passes: each move strictly decreases the heaviest load or
    // we stop, so the loop terminates; the cap is a hard backstop.
    for _ in 0..queues.iter().map(Vec::len).sum::<usize>().max(1) {
        let loads: Vec<u64> = queues.iter().map(|q| q.iter().map(&cost).sum()).collect();
        let heavy = (0..workers).max_by_key(|&w| (loads[w], w)).unwrap();
        let light = (0..workers).min_by_key(|&w| (loads[w], w)).unwrap();
        let gap = loads[heavy] - loads[light];
        if gap <= threshold || queues[heavy].len() <= 1 {
            break;
        }
        // Move the task whose cost best halves the gap without
        // overshooting into reverse imbalance.
        let target = gap / 2;
        let best = queues[heavy]
            .iter()
            .map(&cost)
            .enumerate()
            .filter(|&(_, c)| c <= gap) // moving more than the gap flips it
            .min_by_key(|&(i, c)| (target.abs_diff(c), i))
            .map(|(i, _)| i);
        let Some(i) = best else { break };
        let task = queues[heavy].remove(i);
        queues[light].push(task);
        moved += 1;
    }
    moved
}

/// Makespan (max per-worker load) of a cost partition.
pub fn makespan(queues: &[Vec<u64>]) -> u64 {
    queues
        .iter()
        .map(|q| q.iter().sum::<u64>())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_tasks() {
        let costs = vec![5, 3, 8, 1, 9, 2];
        let parts = partition_greedy(&costs, 3);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn partition_is_balanced_for_equal_tasks() {
        let costs = vec![4u64; 12];
        let parts = partition_greedy(&costs, 4);
        assert!(parts.iter().all(|p| p.len() == 3));
    }

    #[test]
    fn lpt_beats_naive_on_skewed_costs() {
        let costs = vec![10, 10, 10, 1, 1, 1, 1, 1, 1];
        let parts = partition_greedy(&costs, 3);
        let queues: Vec<Vec<u64>> = parts
            .iter()
            .map(|p| p.iter().map(|&i| costs[i]).collect())
            .collect();
        assert_eq!(makespan(&queues), 12); // 10+1+1 each
    }

    #[test]
    fn rebalance_moves_from_heavy_to_light() {
        let mut queues = vec![vec![10u64, 10, 10, 10], vec![1]];
        let policy = BalancePolicy::default();
        let moved = rebalance(&mut queues, |&c| c, &policy);
        assert!(moved > 0);
        let spread = queues.iter().map(|q| q.iter().sum::<u64>()).max().unwrap()
            - queues.iter().map(|q| q.iter().sum::<u64>()).min().unwrap();
        assert!(spread <= 10, "spread {spread} after rebalance");
    }

    #[test]
    fn rebalance_respects_threshold() {
        // spread of 2 on total 20 across 2 workers: threshold = 1 (10%
        // of avg 10) — acts; with rel_slack=0.5 threshold 5 — no action.
        let mut q1 = vec![vec![6u64, 5], vec![5, 4]];
        let lazy = BalancePolicy {
            rel_slack: 0.5,
            min_abs: 1,
        };
        assert_eq!(rebalance(&mut q1, |&c| c, &lazy), 0);
    }

    #[test]
    fn rebalance_never_empties_heavy_to_flip() {
        let mut queues = vec![vec![100u64], vec![]];
        let moved = rebalance(&mut queues, |&c| c, &BalancePolicy::default());
        // single indivisible task: nothing useful to move
        assert_eq!(moved, 0);
        assert_eq!(queues[0], vec![100]);
    }

    #[test]
    fn rebalance_single_worker_noop() {
        let mut queues = vec![vec![1u64, 2, 3]];
        assert_eq!(rebalance(&mut queues, |&c| c, &BalancePolicy::default()), 0);
    }

    #[test]
    fn rebalance_moves_real_tasks() {
        // The balancer operates on the caller's actual task type — no
        // shadow cost queue, no move replay.
        let mut queues = vec![
            vec![("a", 9u64), ("b", 8), ("c", 7)],
            vec![("d", 1)],
            vec![("e", 2)],
        ];
        let before: usize = queues.iter().map(Vec::len).sum();
        let moved = rebalance(&mut queues, |t| t.1, &BalancePolicy::default());
        assert!(moved > 0);
        assert_eq!(queues.iter().map(Vec::len).sum::<usize>(), before);
        let mut all: Vec<&str> = queues.iter().flatten().map(|t| t.0).collect();
        all.sort_unstable();
        assert_eq!(all, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn threshold_floor_applies() {
        let p = BalancePolicy {
            rel_slack: 0.1,
            min_abs: 50,
        };
        assert_eq!(p.threshold(100, 4), 50);
        assert_eq!(p.threshold(100_000, 4), 2500);
    }
}
