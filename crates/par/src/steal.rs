//! Work-stealing task distribution for one steal-scope epoch.
//!
//! The level-synchronous runtime of §2.3 parks every core at a barrier
//! until the heaviest worker of the round finishes; the work-stealing
//! runtime replaces the round with an *epoch*: each worker owns a deque
//! of tasks, pops locally LIFO, and — when its own deque runs dry —
//! steals from the front (FIFO end) of a victim's deque, exactly the
//! owner-LIFO/thief-FIFO discipline of a Chase–Lev deque. The epoch is
//! quiescent when every task has completed; that quiescence point is
//! where the old barrier hooks (checkpoint, memory degradation, halt)
//! re-attach with unchanged semantics.
//!
//! This crate forbids `unsafe`, so the deque is not the lock-free
//! Chase–Lev array: each deque is a `Mutex<VecDeque<T>>` with a relaxed
//! atomic length hint so thieves can scan victims without touching
//! their locks. Tasks here are k-clique sub-lists — hundreds of
//! microseconds to seconds each — so an uncontended mutex lock
//! (~20 ns) is noise; what matters is the *schedule*, and the schedule
//! is identical to the lock-free version's.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One worker's task deque: the owner pushes and pops at the back
/// (LIFO, depth-first, cache-warm), thieves steal from the front (FIFO
/// — the oldest, typically largest task, amortizing the steal).
#[derive(Debug, Default)]
pub struct StealDeque<T> {
    tasks: Mutex<VecDeque<T>>,
    /// Length hint maintained outside the lock so a thief can skip
    /// empty victims without contending on their mutex.
    len: AtomicUsize,
}

impl<T> StealDeque<T> {
    /// An empty deque.
    pub fn new() -> Self {
        StealDeque {
            tasks: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// A deque seeded with `tasks` (front = first to be stolen, back =
    /// first the owner pops).
    pub fn seeded(tasks: impl IntoIterator<Item = T>) -> Self {
        let q: VecDeque<T> = tasks.into_iter().collect();
        let n = q.len();
        StealDeque {
            tasks: Mutex::new(q),
            len: AtomicUsize::new(n),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        // A worker panicking mid-task never holds this lock (pushes and
        // pops are not reentrant with task execution), so a poisoned
        // mutex still guards a consistent queue.
        self.tasks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Owner push: appended at the back, popped next by the owner.
    pub fn push(&self, task: T) {
        self.lock().push_back(task);
        self.len.fetch_add(1, Ordering::Release);
    }

    /// Owner pop: LIFO from the back.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.lock();
        let t = q.pop_back();
        if t.is_some() {
            self.len.fetch_sub(1, Ordering::Release);
        }
        t
    }

    /// Thief pop: FIFO from the front.
    pub fn steal(&self) -> Option<T> {
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.lock();
        let t = q.pop_front();
        if t.is_some() {
            self.len.fetch_sub(1, Ordering::Release);
        }
        t
    }

    /// Current length (a hint: racy by design).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Is the deque (apparently) empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-worker scheduling counters for one epoch — the raw data behind
/// the "steal balance" section of `gsb report` (the steal-scheduler
/// counterpart of Fig. 8's per-processor spread).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Tasks this worker completed (own + stolen).
    pub tasks: u64,
    /// Tasks acquired from another worker's deque.
    pub steals: u64,
    /// Victim scans that found every deque empty while work was still
    /// in flight elsewhere (each costs one yield).
    pub failed_steals: u64,
    /// Nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// Nanoseconds spent waiting for stealable work (the quiescence
    /// tail: everyone idles while the last tasks finish).
    pub idle_ns: u64,
}

impl StealStats {
    /// Fold another worker-epoch's counters into this one.
    pub fn merge(&mut self, other: &StealStats) {
        self.tasks += other.tasks;
        self.steals += other.steals;
        self.failed_steals += other.failed_steals;
        self.busy_ns += other.busy_ns;
        self.idle_ns += other.idle_ns;
    }
}

/// The shared state of one steal-scope epoch: every worker's deque,
/// the count of not-yet-completed tasks (quiescence = zero), and an
/// abort flag that freezes the epoch when supervision declares a
/// worker stuck (live workers drain-stop instead of finishing a round
/// whose result will be discarded).
#[derive(Debug)]
pub struct EpochTasks<T> {
    deques: Vec<StealDeque<T>>,
    remaining: AtomicUsize,
    aborted: AtomicBool,
}

impl<T> EpochTasks<T> {
    /// Build an epoch from one seed queue per worker (queues may be
    /// empty — those workers start by stealing).
    pub fn new(queues: Vec<Vec<T>>) -> Self {
        let remaining = queues.iter().map(Vec::len).sum();
        EpochTasks {
            deques: queues.into_iter().map(StealDeque::seeded).collect(),
            remaining: AtomicUsize::new(remaining),
            aborted: AtomicBool::new(false),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Tasks not yet completed (0 = quiescent).
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Freeze the epoch: workers stop acquiring tasks and return what
    /// they have. Called by the supervisor on a stuck-worker deadline.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    /// Has the epoch been frozen?
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Mark one task complete (call exactly once per task returned by
    /// [`acquire`](Self::acquire), whether it succeeded or was
    /// convicted).
    pub fn complete(&self) {
        self.remaining.fetch_sub(1, Ordering::AcqRel);
    }

    /// Acquire the next task for `worker`: pop the local deque, else
    /// scan the other deques for a steal, else wait until either a
    /// task appears or the epoch quiesces. Returns `None` only at
    /// quiescence or abort. Steal attempts and wait time are charged
    /// to `stats`.
    pub fn acquire(&self, worker: usize, stats: &mut StealStats) -> Option<T> {
        let mut waited: Option<std::time::Instant> = None;
        let acquired = loop {
            if self.is_aborted() {
                break None;
            }
            if let Some(t) = self.deques.get(worker).and_then(StealDeque::pop) {
                break Some(t);
            }
            if self.remaining() == 0 {
                break None;
            }
            // Scan victims starting just past ourselves so thieves
            // spread out instead of all mobbing deque 0.
            let n = self.deques.len();
            let stolen = (1..n)
                .map(|d| (worker + d) % n)
                .find_map(|v| self.deques[v].steal());
            if let Some(t) = stolen {
                stats.steals += 1;
                break Some(t);
            }
            // Nothing stealable but tasks are still in flight (their
            // owners may yet push children, or we are in the
            // quiescence tail). Count the failed scan, charge the wait.
            stats.failed_steals += 1;
            waited.get_or_insert_with(std::time::Instant::now);
            std::thread::yield_now();
        };
        if let Some(t0) = waited {
            stats.idle_ns += t0.elapsed().as_nanos() as u64;
        }
        acquired
    }

    /// Owner push onto `worker`'s deque, growing the epoch by one task
    /// (used when children join the *same* epoch; the levelwise driver
    /// instead defers children to the next epoch's seed queues).
    pub fn push(&self, worker: usize, task: T) {
        if let Some(d) = self.deques.get(worker) {
            self.remaining.fetch_add(1, Ordering::AcqRel);
            d.push(task);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let d = StealDeque::seeded([1, 2, 3]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.steal(), Some(1), "thief takes the oldest");
        assert_eq!(d.pop(), Some(3), "owner takes the newest");
        d.push(9);
        assert_eq!(d.pop(), Some(9));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn acquire_drains_own_deque_before_stealing() {
        let epoch = EpochTasks::new(vec![vec![10, 11], vec![20]]);
        let mut s = StealStats::default();
        assert_eq!(epoch.acquire(0, &mut s), Some(11));
        epoch.complete();
        assert_eq!(epoch.acquire(0, &mut s), Some(10));
        epoch.complete();
        assert_eq!(s.steals, 0);
        // own deque dry: steal from worker 1
        assert_eq!(epoch.acquire(0, &mut s), Some(20));
        epoch.complete();
        assert_eq!(s.steals, 1);
        assert_eq!(epoch.remaining(), 0);
        assert_eq!(epoch.acquire(0, &mut s), None);
    }

    #[test]
    fn abort_freezes_acquisition() {
        let epoch = EpochTasks::new(vec![vec![1, 2, 3]]);
        epoch.abort();
        let mut s = StealStats::default();
        assert_eq!(epoch.acquire(0, &mut s), None);
        assert!(epoch.is_aborted());
    }

    #[test]
    fn same_epoch_push_extends_quiescence() {
        let epoch = EpochTasks::new(vec![vec![1]]);
        let mut s = StealStats::default();
        let t = epoch.acquire(0, &mut s).unwrap();
        epoch.push(0, t + 10);
        epoch.complete();
        assert_eq!(epoch.remaining(), 1);
        assert_eq!(epoch.acquire(0, &mut s), Some(11));
        epoch.complete();
        assert_eq!(epoch.remaining(), 0);
    }

    #[test]
    fn concurrent_workers_complete_every_task_once() {
        // 4 threads over skewed queues: every task observed exactly once.
        let total = 200usize;
        let queues = vec![(0..total).collect::<Vec<_>>(), vec![], vec![], vec![]];
        let epoch = Arc::new(EpochTasks::new(queues));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for w in 0..4 {
            let epoch = Arc::clone(&epoch);
            let seen = Arc::clone(&seen);
            handles.push(std::thread::spawn(move || {
                let mut stats = StealStats::default();
                while let Some(t) = epoch.acquire(w, &mut stats) {
                    seen.lock().unwrap().push(t);
                    epoch.complete();
                    stats.tasks += 1;
                }
                stats
            }));
        }
        let stats: Vec<StealStats> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut seen = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
        assert_eq!(stats.iter().map(|s| s.tasks).sum::<u64>(), total as u64);
        // workers 1..3 started empty: every task they ran was stolen
        for s in &stats[1..] {
            assert_eq!(s.steals, s.tasks);
        }
    }
}
