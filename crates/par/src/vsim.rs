//! Virtual-processor scheduler simulation.
//!
//! The paper's scaling study (Figs. 5–7) ran on a 256-processor SGI
//! Altix. We substitute a deterministic simulator: take the *measured*
//! per-task (per-sub-list) costs of a real sequential run, one list per
//! level, and replay them onto `P` virtual processors under the same
//! level-synchronous discipline — per level, tasks are partitioned,
//! the level's wall time is the makespan, and a synchronization cost
//! `sync_base + sync_per_proc × P` is charged per level (the
//! "network and synchronization latency" that the paper says dominates
//! at 256 processors when per-level work shrinks).
//!
//! This preserves exactly what the figures claim: near-linear speedup
//! while per-level work dwarfs the barrier; degradation once it does
//! not; larger problems (smaller `init_k`) scaling further (Fig. 7).

use crate::balance::partition_greedy;

/// Pay the actual costs for a planned index assignment. Returns the
/// level makespan and the per-processor busy time.
fn replay_assignment(assign: &[Vec<usize>], costs: &[u64], procs: usize) -> (u64, Vec<u64>) {
    let mut busy = vec![0u64; procs];
    for (p, idxs) in assign.iter().enumerate() {
        busy[p] = idxs.iter().map(|&i| costs[i]).sum();
    }
    (busy.iter().copied().max().unwrap_or(0), busy)
}

/// Online greedy list scheduling of one level: the next task in seed
/// order goes to the processor that frees up first (ties broken by
/// index). Returns the level makespan and the per-processor busy time.
fn steal_level(costs: &[u64], procs: usize) -> (u64, Vec<u64>) {
    let mut finish = vec![0u64; procs];
    for &c in costs {
        let p = (0..procs).min_by_key(|&p| (finish[p], p)).unwrap();
        finish[p] += c;
    }
    (finish.iter().copied().max().unwrap_or(0), finish)
}

/// Task partitioning discipline per level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Longest-processing-time greedy using the *estimated* costs
    /// (models the paper's centralized balancer: it plans on whatever
    /// cost model it has, then pays the actual costs).
    Lpt,
    /// Round-robin by task index, blind to cost (models *no* balancing).
    Static,
    /// Online greedy list scheduling: each task goes to the processor
    /// that frees up first, in seed order. This is the classic model of
    /// a work-stealing epoch — an idle worker always acquires the next
    /// available task — and needs no cost estimates at all.
    Steal,
}

/// Simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Fixed per-level scheduler/barrier cost (ns).
    pub sync_base_ns: u64,
    /// Additional per-level cost per processor (ns) — result collection
    /// and signalling grow with P.
    pub sync_per_proc_ns: u64,
    /// Partitioning discipline.
    pub strategy: Strategy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            // Calibrated to commodity-scale barriers: tens of µs fixed
            // cost plus ~2µs per participant.
            sync_base_ns: 50_000,
            sync_per_proc_ns: 2_000,
            strategy: Strategy::Lpt,
        }
    }
}

/// Result of simulating one processor count.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Simulated processors.
    pub procs: usize,
    /// Simulated total wall time (ns), including synchronization.
    pub total_ns: u64,
    /// Per-level makespans (ns), excluding synchronization.
    pub level_makespan_ns: Vec<u64>,
    /// Per-processor total busy time (ns).
    pub per_proc_busy_ns: Vec<u64>,
}

impl SimResult {
    /// Busy fraction: Σ busy / (P × wall).
    pub fn efficiency(&self) -> f64 {
        if self.total_ns == 0 {
            return 1.0;
        }
        let busy: u64 = self.per_proc_busy_ns.iter().sum();
        busy as f64 / (self.procs as f64 * self.total_ns as f64)
    }
}

/// Replays measured per-level task costs onto virtual processors.
///
/// ```
/// use gsb_par::{SimConfig, VirtualScheduler};
/// // two levels of 64 x 1 ms tasks
/// let vs = VirtualScheduler::new(vec![vec![1_000_000; 64]; 2], SimConfig::default());
/// let sweep = vs.sweep(&[1, 8, 64]);
/// assert!(sweep[1].2 > 7.0);   // near-linear at 8 procs
/// assert!(sweep[2].2 > 20.0);  // still strong at 64
/// ```
#[derive(Clone, Debug)]
pub struct VirtualScheduler {
    levels: Vec<Vec<u64>>,
    /// Per-level *estimated* costs the planner sees (same shape as
    /// `levels`). `None` = perfect estimates (plan on actuals).
    estimates: Option<Vec<Vec<u64>>>,
    config: SimConfig,
}

impl VirtualScheduler {
    /// Build from per-level task costs (ns), in level order. The
    /// planner sees the true costs (perfect estimates).
    pub fn new(levels: Vec<Vec<u64>>, config: SimConfig) -> Self {
        VirtualScheduler {
            levels,
            estimates: None,
            config,
        }
    }

    /// Build with separate planning estimates: [`Strategy::Lpt`]
    /// partitions each level on `estimates[k]` but the simulation pays
    /// `levels[k]` — exactly the real barrier scheduler's position,
    /// which plans on `SubList::cost()` guesses. [`Strategy::Steal`]
    /// ignores estimates (it schedules online), so the same scheduler
    /// replays a fair barrier-vs-steal comparison.
    pub fn with_estimates(
        levels: Vec<Vec<u64>>,
        estimates: Vec<Vec<u64>>,
        config: SimConfig,
    ) -> Self {
        VirtualScheduler {
            levels,
            estimates: Some(estimates),
            config,
        }
    }

    /// Total sequential work (ns).
    pub fn sequential_ns(&self) -> u64 {
        self.levels.iter().flat_map(|l| l.iter()).sum()
    }

    /// Simulate a run on `procs` virtual processors.
    pub fn run(&self, procs: usize) -> SimResult {
        let procs = procs.max(1);
        let mut total = 0u64;
        let mut level_makespans = Vec::with_capacity(self.levels.len());
        let mut busy = vec![0u64; procs];
        for (li, costs) in self.levels.iter().enumerate() {
            let (ms, level_busy) = match self.config.strategy {
                Strategy::Steal => steal_level(costs, procs),
                Strategy::Lpt => {
                    let plan = self
                        .estimates
                        .as_ref()
                        .and_then(|e| e.get(li))
                        .map_or(costs.as_slice(), Vec::as_slice);
                    let assign = partition_greedy(plan, procs);
                    replay_assignment(&assign, costs, procs)
                }
                Strategy::Static => {
                    let mut a: Vec<Vec<usize>> = vec![Vec::new(); procs];
                    for (i, _) in costs.iter().enumerate() {
                        a[i % procs].push(i);
                    }
                    replay_assignment(&a, costs, procs)
                }
            };
            level_makespans.push(ms);
            for (p, b) in level_busy.iter().enumerate() {
                busy[p] += b;
            }
            let sync = if procs > 1 {
                self.config.sync_base_ns + self.config.sync_per_proc_ns * procs as u64
            } else {
                0
            };
            total += ms + sync;
        }
        SimResult {
            procs,
            total_ns: total,
            level_makespan_ns: level_makespans,
            per_proc_busy_ns: busy,
        }
    }

    /// Simulate a sweep of processor counts; returns `(P, total_ns,
    /// absolute speedup vs P=1)` rows.
    pub fn sweep(&self, procs: &[usize]) -> Vec<(usize, u64, f64)> {
        let t1 = self.run(1).total_ns.max(1);
        procs
            .iter()
            .map(|&p| {
                let r = self.run(p);
                (p, r.total_ns, t1 as f64 / r.total_ns.max(1) as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_levels(levels: usize, tasks: usize, cost: u64) -> Vec<Vec<u64>> {
        (0..levels).map(|_| vec![cost; tasks]).collect()
    }

    #[test]
    fn one_proc_matches_sequential() {
        let v = VirtualScheduler::new(uniform_levels(4, 10, 1_000_000), SimConfig::default());
        assert_eq!(v.run(1).total_ns, v.sequential_ns());
    }

    #[test]
    fn linear_speedup_with_big_uniform_tasks() {
        // 64 tasks of 10ms per level: barrier cost is negligible, so
        // speedup at 8 procs should be close to 8.
        let v = VirtualScheduler::new(uniform_levels(5, 64, 10_000_000), SimConfig::default());
        let rows = v.sweep(&[1, 8]);
        let s8 = rows[1].2;
        assert!(s8 > 7.5, "speedup {s8}");
    }

    #[test]
    fn speedup_degrades_when_sync_dominates() {
        // tiny tasks: at 256 procs sync swamps the work
        let v = VirtualScheduler::new(uniform_levels(20, 256, 10_000), SimConfig::default());
        let rows = v.sweep(&[64, 256]);
        let (s64, s256) = (rows[0].2, rows[1].2);
        assert!(
            s256 < s64,
            "expected degradation: s64={s64:.1} s256={s256:.1}"
        );
    }

    #[test]
    fn bigger_problems_scale_further() {
        // Fig. 7's claim: with more sequential work, the speedup at a
        // fixed large P increases.
        let small = VirtualScheduler::new(uniform_levels(5, 64, 200_000), SimConfig::default());
        let large = VirtualScheduler::new(uniform_levels(5, 64, 20_000_000), SimConfig::default());
        let s_small = small.sweep(&[256])[0].2;
        let s_large = large.sweep(&[256])[0].2;
        assert!(
            s_large > s_small,
            "s_large={s_large:.1} s_small={s_small:.1}"
        );
    }

    #[test]
    fn lpt_beats_static_on_skew() {
        let mut level = vec![1_000u64; 31];
        level.push(1_000_000);
        let skewed = vec![level; 3];
        let lpt = VirtualScheduler::new(
            skewed.clone(),
            SimConfig {
                strategy: Strategy::Lpt,
                ..SimConfig::default()
            },
        );
        let stat = VirtualScheduler::new(
            skewed,
            SimConfig {
                strategy: Strategy::Static,
                ..SimConfig::default()
            },
        );
        assert!(lpt.run(4).total_ns <= stat.run(4).total_ns);
    }

    #[test]
    fn steal_matches_lpt_on_uniform_tasks() {
        let levels = uniform_levels(3, 32, 1_000_000);
        let lpt = VirtualScheduler::new(
            levels.clone(),
            SimConfig {
                strategy: Strategy::Lpt,
                ..SimConfig::default()
            },
        );
        let steal = VirtualScheduler::new(
            levels,
            SimConfig {
                strategy: Strategy::Steal,
                ..SimConfig::default()
            },
        );
        assert_eq!(lpt.run(8).total_ns, steal.run(8).total_ns);
    }

    #[test]
    fn steal_beats_lpt_on_bad_estimates() {
        // The planner believes every task is equal; in reality one is
        // 100× heavier. LPT-on-estimates packs the heavy task with
        // others, the online scheduler isolates it automatically.
        let mut actual = vec![10_000u64; 32];
        actual[0] = 1_000_000;
        let estimates = vec![vec![10_000u64; 32]; 2];
        let levels = vec![actual; 2];
        let lpt = VirtualScheduler::with_estimates(
            levels.clone(),
            estimates,
            SimConfig {
                strategy: Strategy::Lpt,
                ..SimConfig::default()
            },
        );
        let steal = VirtualScheduler::new(
            levels,
            SimConfig {
                strategy: Strategy::Steal,
                ..SimConfig::default()
            },
        );
        assert!(steal.run(8).total_ns < lpt.run(8).total_ns);
    }

    #[test]
    fn efficiency_bounded() {
        let v = VirtualScheduler::new(uniform_levels(3, 16, 1_000_000), SimConfig::default());
        for p in [1, 2, 4, 32] {
            let e = v.run(p).efficiency();
            assert!((0.0..=1.0 + 1e-9).contains(&e), "efficiency {e}");
        }
    }

    #[test]
    fn empty_levels_cost_only_sync() {
        let v = VirtualScheduler::new(vec![vec![], vec![]], SimConfig::default());
        assert_eq!(v.run(1).total_ns, 0);
        let r = v.run(4);
        assert_eq!(r.total_ns, 2 * (50_000 + 2_000 * 4));
    }
}
