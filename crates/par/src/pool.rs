//! Persistent worker pool with per-worker queues and per-round timing.
//!
//! Workers are long-lived ("multiple threads are forked to perform clique
//! generation simultaneously and independently" — §2.3) and each round
//! delivers one batch per worker, preserving task affinity: a worker
//! keeps operating on its own batch unless the balancer moved work.
//!
//! ## Panic containment
//!
//! A panic inside a job is caught on the worker thread and reported
//! through the round's result channel, so one poisoned sub-list cannot
//! deadlock the barrier or kill a multi-hour run: the round returns
//! [`RoundError`] naming the failed workers, the surviving workers'
//! results are discarded (a round is all-or-nothing), and
//! [`WorkerPool::run_round_checked`] respawns any dead threads before
//! the next round.
//!
//! ## Stuck-worker detection
//!
//! A panic is loud; a wedged thread is silent. The supervised round
//! variants ([`WorkerPool::run_round_supervised`],
//! [`WorkerPool::run_round_isolated`]) hand each job a [`Heartbeat`]
//! the job beats once per work unit (the parallel enumerator beats per
//! sub-list). If a worker's beat count stops advancing for the
//! configured deadline, the round marks it failed
//! ([`WorkerFailure::deadline`]), *abandons* the stuck thread (a fresh
//! worker takes over its queue; the old thread is detached and its late
//! result, if any, is discarded), and the level can continue without
//! it.

use crate::steal::{EpochTasks, StealStats};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Per-worker progress counters for one round. Jobs call
/// [`beat`](Self::beat) at every unit of progress (cheap: one relaxed
/// atomic increment); the supervising round watches the counters and
/// declares a worker stuck when its count stops moving for the
/// deadline.
#[derive(Clone, Debug)]
pub struct Heartbeat {
    beats: Arc<Vec<AtomicU64>>,
}

impl Heartbeat {
    fn new(threads: usize) -> Self {
        Heartbeat {
            beats: Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Record progress for `worker` (out-of-range indices are ignored).
    pub fn beat(&self, worker: usize) {
        if let Some(b) = self.beats.get(worker) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn count(&self, worker: usize) -> u64 {
        self.beats
            .get(worker)
            .map_or(0, |b| b.load(Ordering::Relaxed))
    }
}

/// One worker's failure within a round.
#[derive(Clone, Debug)]
pub struct WorkerFailure {
    /// Index of the worker whose job failed.
    pub worker: usize,
    /// True when the failure was a missed heartbeat deadline (a stuck
    /// thread, abandoned) rather than a caught panic.
    pub deadline: bool,
    /// The panic payload, stringified (`Box<dyn Any>` payloads that are
    /// not strings become `"<non-string panic payload>"`), or the
    /// deadline report for stuck workers.
    pub panic_message: String,
}

/// A round in which at least one worker's job panicked (or its thread
/// died). The round's outputs are discarded wholesale — partial results
/// never reach the caller, so a retried round cannot double-count.
#[derive(Clone, Debug)]
pub struct RoundError {
    /// Every worker that failed this round.
    pub failures: Vec<WorkerFailure>,
}

impl fmt::Display for RoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} worker(s) failed:", self.failures.len())?;
        for failure in &self.failures {
            write!(f, " [worker {}: {}]", failure.worker, failure.panic_message)?;
        }
        Ok(())
    }
}

impl std::error::Error for RoundError {}

/// A task convicted inside a work-stealing epoch: it panicked on its
/// original execution *and* on the immediate inline retry, so the
/// failure is deterministic for this task, not a transient. The owned
/// task is handed back so the caller can quarantine it (the levelwise
/// driver appends it to the quarantine sidecar) instead of failing the
/// whole epoch.
#[derive(Debug)]
pub struct PoisonedTask<T> {
    /// Worker that executed (and retried) the task.
    pub worker: usize,
    /// The task itself, still owned — per-task jobs run by shared
    /// reference precisely so a panic cannot consume the task.
    pub task: T,
    /// Panic payload of the second (convicting) attempt, stringified.
    pub panic_message: String,
}

/// Everything one work-stealing epoch produced. Unlike a
/// level-synchronous round, per-task panics do not discard the epoch:
/// they are retried inline once and, if deterministic, surfaced in
/// [`poisoned`](Self::poisoned) while every other task's result is
/// kept. Only supervision failures (stuck-worker deadline, worker
/// thread death) fail the epoch as a whole.
#[derive(Debug)]
pub struct EpochOut<T, R> {
    /// Per-worker task results, in completion order. Indexed by worker;
    /// a stolen task's result lands on the thief.
    pub results: Vec<Vec<R>>,
    /// Per-worker scheduling counters (steals, failed steals, busy and
    /// idle time).
    pub steal_stats: Vec<StealStats>,
    /// Tasks that panicked twice and were removed from the epoch.
    pub poisoned: Vec<PoisonedTask<T>>,
    /// Tasks that panicked once and succeeded on the inline retry.
    pub retried_tasks: u64,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A fixed set of persistent worker threads, each with its own queue.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<Option<JoinHandle<()>>>,
}

fn spawn_worker(i: usize) -> (Sender<Job>, JoinHandle<()>) {
    let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
    let handle = std::thread::Builder::new()
        .name(format!("gsb-worker-{i}"))
        .spawn(move || {
            // Run until the channel closes (pool drop). Jobs are
            // panic-wrapped by run_round, so this loop only exits on
            // channel close — but a defensive catch keeps a raw job
            // from killing the thread either way.
            for job in rx.iter() {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
        })
        .expect("failed to spawn worker thread");
    (tx, handle)
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, handle) = spawn_worker(i);
            senders.push(tx);
            handles.push(Some(handle));
        }
        WorkerPool { senders, handles }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// How many worker threads have terminated (panicked through the
    /// defensive net, or otherwise died).
    pub fn dead_workers(&self) -> usize {
        self.handles
            .iter()
            .filter(|h| h.as_ref().is_none_or(JoinHandle::is_finished))
            .count()
    }

    /// Respawn every terminated worker thread; returns how many were
    /// replaced. Queued jobs on a dead worker's channel are lost (the
    /// round that enqueued them has already been reported failed).
    pub fn respawn_dead(&mut self) -> usize {
        let mut respawned = 0;
        for i in 0..self.handles.len() {
            let dead = self.handles[i].as_ref().is_none_or(JoinHandle::is_finished);
            if dead {
                if let Some(old) = self.handles[i].take() {
                    let _ = old.join();
                }
                let (tx, handle) = spawn_worker(i);
                self.senders[i] = tx;
                self.handles[i] = Some(handle);
                respawned += 1;
            }
        }
        respawned
    }

    /// Execute one level-synchronous round: worker `i` applies `f(i,
    /// batch_i)`; blocks until every worker finishes. Returns each
    /// worker's output and its busy time in nanoseconds (the raw data
    /// behind the paper's Fig. 8 load-balance plot).
    ///
    /// `batches.len()` must equal [`threads`](Self::threads).
    ///
    /// Panics if any worker's job panics — use
    /// [`run_round_checked`](Self::run_round_checked) to get a
    /// [`RoundError`] instead.
    pub fn run_round<T, R, F>(&self, batches: Vec<T>, f: F) -> Vec<(R, u64)>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        aggregate(self.round_core(batches, move |i, b, _hb: &Heartbeat| f(i, b), None))
            .unwrap_or_else(|e| panic!("worker round failed: {e}"))
    }

    /// Fault-tolerant round: like [`run_round`](Self::run_round), but a
    /// panicking job yields `Err(RoundError)` instead of panicking the
    /// caller, and dead worker threads are respawned before the round
    /// starts. On error the entire round's outputs are discarded, so
    /// the caller can retry the same batches without double-counting.
    pub fn run_round_checked<T, R, F>(
        &mut self,
        batches: Vec<T>,
        f: F,
    ) -> Result<Vec<(R, u64)>, RoundError>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        self.respawn_dead();
        aggregate(self.round_core(batches, move |i, b, _hb: &Heartbeat| f(i, b), None))
    }

    /// Supervised round: like [`run_round_checked`](Self::run_round_checked)
    /// but the job receives a [`Heartbeat`] it must beat per work unit,
    /// and a worker whose beats stop advancing for `deadline` is marked
    /// failed ([`WorkerFailure::deadline`]) and its thread abandoned (a
    /// fresh worker replaces it for subsequent rounds). `deadline:
    /// None` supervises panics only, identical to `run_round_checked`.
    pub fn run_round_supervised<T, R, F>(
        &mut self,
        batches: Vec<T>,
        f: F,
        deadline: Option<Duration>,
    ) -> Result<Vec<(R, u64)>, RoundError>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T, &Heartbeat) -> R + Send + Sync + 'static,
    {
        self.respawn_dead();
        let slots = self.round_core(batches, f, deadline);
        self.abandon_stuck(&slots);
        aggregate(slots)
    }

    /// Per-worker round: every worker's outcome is reported
    /// individually — a failure in one slot does not discard its
    /// neighbors' results. This is the probe primitive the quarantine
    /// protocol uses to pin a poison sub-list down to one work unit.
    /// Stuck workers (per `deadline`) are abandoned exactly as in
    /// [`run_round_supervised`](Self::run_round_supervised).
    pub fn run_round_isolated<T, R, F>(
        &mut self,
        batches: Vec<T>,
        f: F,
        deadline: Option<Duration>,
    ) -> Vec<Result<(R, u64), WorkerFailure>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T, &Heartbeat) -> R + Send + Sync + 'static,
    {
        self.respawn_dead();
        let slots = self.round_core(batches, f, deadline);
        self.abandon_stuck(&slots);
        slots
    }

    /// Replace the worker at `i` with a fresh thread. The old thread is
    /// joined if already finished, otherwise detached: dropping its
    /// sender closes its queue, so if it ever un-wedges it exits its
    /// loop; if it never does, it stays parked on its (now unreachable)
    /// job — the price of surviving a genuinely stuck thread.
    fn abandon_worker(&mut self, i: usize) {
        let (tx, handle) = spawn_worker(i);
        self.senders[i] = tx;
        if let Some(old) = self.handles[i].replace(handle) {
            if old.is_finished() {
                let _ = old.join();
            }
            // else: detach by dropping the handle.
        }
    }

    fn abandon_stuck<P>(&mut self, slots: &[Result<P, WorkerFailure>]) {
        let stuck: Vec<usize> = slots
            .iter()
            .filter_map(|r| r.as_ref().err())
            .filter(|f| f.deadline)
            .map(|f| f.worker)
            .collect();
        for i in stuck {
            self.abandon_worker(i);
        }
    }

    /// The shared round engine: dispatch one batch per worker, collect
    /// per-worker outcomes. With a deadline, collection polls and
    /// watches the heartbeat counters; a silent worker is declared
    /// failed without waiting for it, and any result it sends later is
    /// discarded.
    fn round_core<T, R, F>(
        &self,
        batches: Vec<T>,
        f: F,
        deadline: Option<Duration>,
    ) -> Vec<Result<(R, u64), WorkerFailure>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T, &Heartbeat) -> R + Send + Sync + 'static,
    {
        assert_eq!(
            batches.len(),
            self.threads(),
            "one batch per worker required"
        );
        let threads = self.threads();
        let f = Arc::new(f);
        let hb = Heartbeat::new(threads);
        type Done<R> = (usize, Result<(R, u64), String>);
        let (done_tx, done_rx) = bounded::<Done<R>>(threads);
        for (i, batch) in batches.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let done = done_tx.clone();
            let hb = hb.clone();
            let job: Job = Box::new(move || {
                let start = Instant::now();
                hb.beat(i); // "alive and starting" — a job that never even starts is stuck by definition
                let out = catch_unwind(AssertUnwindSafe(|| f(i, batch, &hb)))
                    .map_err(|payload| panic_message(payload.as_ref()));
                let ns = start.elapsed().as_nanos() as u64;
                // Receiver outlives the round (bounded(threads) never
                // blocks); a send error means the pool is tearing down.
                let _ = done.send((i, out.map(|r| (r, ns))));
            });
            if let Err(send_err) = self.senders[i].send(job) {
                // Worker thread is gone (channel closed). Run its job
                // inline so the round still completes — the job's own
                // catch_unwind reports any panic like a worker would.
                (send_err.0)();
            }
        }
        drop(done_tx);
        supervise_collect(&done_rx, threads, &hb, deadline, || {})
    }

    /// Execute one work-stealing epoch: the tasks in `queues` (one seed
    /// queue per worker, queues may be empty) are consumed
    /// owner-LIFO/thief-FIFO until quiescence — every task completed.
    /// `f` runs once per task, by shared reference, and must beat the
    /// [`Heartbeat`] (one beat per task is automatic; long tasks should
    /// beat more often).
    ///
    /// Fault containment is per-task, not per-round: a panicking task
    /// is retried inline once and, when the panic repeats, convicted
    /// into [`EpochOut::poisoned`] (the owned task is handed back for
    /// quarantine) while the rest of the epoch continues. Only
    /// supervision failures — a worker silent past `deadline` (the
    /// stuck thread is abandoned and the epoch frozen so live workers
    /// drain-stop) or a dead worker thread — fail the epoch with
    /// [`RoundError`], discarding all of its outputs.
    ///
    /// With a single worker the epoch runs inline on the calling
    /// thread: no deques, no channels, no supervision — the degenerate
    /// path `WorkerPool::new(0)` and `new(1)` share.
    pub fn run_epoch<T, R, F>(
        &mut self,
        queues: Vec<Vec<T>>,
        f: F,
        deadline: Option<Duration>,
    ) -> Result<EpochOut<T, R>, RoundError>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, &T, &Heartbeat) -> R + Send + Sync + 'static,
    {
        assert_eq!(
            queues.len(),
            self.threads(),
            "one seed queue per worker required"
        );
        if self.threads() == 1 {
            return Ok(run_epoch_inline(queues, &f));
        }
        self.respawn_dead();
        let threads = self.threads();
        let epoch = Arc::new(EpochTasks::new(queues));
        let f = Arc::new(f);
        let hb = Heartbeat::new(threads);
        let poisoned: Arc<Mutex<Vec<PoisonedTask<T>>>> = Arc::new(Mutex::new(Vec::new()));
        type Done<R> = (usize, Result<(Vec<R>, StealStats, u64), String>);
        let (done_tx, done_rx) = bounded::<Done<R>>(threads);
        for w in 0..threads {
            let f = Arc::clone(&f);
            let epoch = Arc::clone(&epoch);
            let poisoned = Arc::clone(&poisoned);
            let done = done_tx.clone();
            let hb = hb.clone();
            let job: Job = Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(|| {
                    worker_epoch_loop(w, &epoch, f.as_ref(), &hb, &poisoned)
                }))
                .map_err(|payload| panic_message(payload.as_ref()));
                let _ = done.send((w, out));
            });
            if let Err(send_err) = self.senders[w].send(job) {
                (send_err.0)();
            }
        }
        drop(done_tx);
        // A stuck worker freezes the whole epoch: its tasks cannot be
        // redistributed safely (it may still be executing one), so live
        // workers drain-stop and the epoch is retried by the caller.
        let slots = supervise_collect(&done_rx, threads, &hb, deadline, || epoch.abort());
        self.abandon_stuck(&slots);
        let mut results = Vec::with_capacity(threads);
        let mut steal_stats = Vec::with_capacity(threads);
        let mut retried_tasks = 0u64;
        let mut failures = Vec::new();
        for slot in slots {
            match slot {
                Ok((r, s, retried)) => {
                    results.push(r);
                    steal_stats.push(s);
                    retried_tasks += retried;
                }
                Err(fail) => failures.push(fail),
            }
        }
        if !failures.is_empty() {
            failures.sort_by_key(|fl| fl.worker);
            return Err(RoundError { failures });
        }
        let poisoned = std::mem::take(
            &mut *poisoned
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        Ok(EpochOut {
            results,
            steal_stats,
            poisoned,
            retried_tasks,
        })
    }
}

/// One worker's epoch loop: acquire (own deque, then steal), execute
/// by reference under a panic catch, retry a panicking task once
/// inline, convict on the second panic. Every acquired task is marked
/// complete exactly once — success, retry, or conviction — so the
/// quiescence count cannot wedge.
fn worker_epoch_loop<T, R, F>(
    w: usize,
    epoch: &EpochTasks<T>,
    f: &F,
    hb: &Heartbeat,
    poisoned: &Mutex<Vec<PoisonedTask<T>>>,
) -> (Vec<R>, StealStats, u64)
where
    F: Fn(usize, &T, &Heartbeat) -> R,
{
    let mut results = Vec::new();
    let mut stats = StealStats::default();
    let mut retried = 0u64;
    while let Some(task) = epoch.acquire(w, &mut stats) {
        hb.beat(w);
        let t0 = Instant::now();
        let out = match catch_unwind(AssertUnwindSafe(|| f(w, &task, hb))) {
            Ok(r) => Some(r),
            // First panic: transient or deterministic? The task is
            // still owned (executed by reference), so retry in place —
            // a fresh attempt with no partial state carried over.
            Err(_) => match catch_unwind(AssertUnwindSafe(|| f(w, &task, hb))) {
                Ok(r) => {
                    retried += 1;
                    Some(r)
                }
                Err(payload) => {
                    poisoned
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(PoisonedTask {
                            worker: w,
                            task,
                            panic_message: panic_message(payload.as_ref()),
                        });
                    None
                }
            },
        };
        stats.busy_ns += t0.elapsed().as_nanos() as u64;
        stats.tasks += 1;
        if let Some(r) = out {
            results.push(r);
        }
        epoch.complete();
    }
    (results, stats, retried)
}

/// The single-worker epoch: no deques, no channels, no threads — tasks
/// run inline on the caller with the same per-task retry/conviction
/// semantics as the concurrent path.
fn run_epoch_inline<T, R, F>(queues: Vec<Vec<T>>, f: &F) -> EpochOut<T, R>
where
    F: Fn(usize, &T, &Heartbeat) -> R,
{
    let hb = Heartbeat::new(1);
    let mut results = Vec::new();
    let mut stats = StealStats::default();
    let mut poisoned = Vec::new();
    let mut retried_tasks = 0u64;
    for task in queues.into_iter().flatten() {
        hb.beat(0);
        let t0 = Instant::now();
        let out = match catch_unwind(AssertUnwindSafe(|| f(0, &task, &hb))) {
            Ok(r) => Some(r),
            Err(_) => match catch_unwind(AssertUnwindSafe(|| f(0, &task, &hb))) {
                Ok(r) => {
                    retried_tasks += 1;
                    Some(r)
                }
                Err(payload) => {
                    poisoned.push(PoisonedTask {
                        worker: 0,
                        task,
                        panic_message: panic_message(payload.as_ref()),
                    });
                    None
                }
            },
        };
        stats.busy_ns += t0.elapsed().as_nanos() as u64;
        stats.tasks += 1;
        if let Some(r) = out {
            results.push(r);
        }
    }
    EpochOut {
        results: vec![results],
        steal_stats: vec![stats],
        poisoned,
        retried_tasks,
    }
}

/// The shared supervision/collection loop behind rounds and epochs:
/// wait for every worker's report, watching heartbeats when a deadline
/// is set. A silent worker is declared failed without waiting for it
/// (`on_deadline_failure` fires once per such worker — the epoch
/// engine uses it to freeze the deque set), and any result it sends
/// later is discarded.
fn supervise_collect<P>(
    done_rx: &Receiver<(usize, Result<P, String>)>,
    threads: usize,
    hb: &Heartbeat,
    deadline: Option<Duration>,
    mut on_deadline_failure: impl FnMut(),
) -> Vec<Result<P, WorkerFailure>> {
    let mut slots: Vec<Option<Result<P, WorkerFailure>>> = (0..threads).map(|_| None).collect();
    let mut reported = 0;
    // Stuck detection state: a worker makes progress when its beat
    // count changes between polls. u64::MAX forces the first poll
    // to record a baseline, so the clock starts at observation, not
    // at dispatch.
    let mut last_beats: Vec<u64> = vec![u64::MAX; threads];
    let mut last_progress: Vec<Instant> = vec![Instant::now(); threads];
    let poll = deadline.map(|d| (d / 4).max(Duration::from_millis(5)));
    while reported < threads {
        let received = match poll {
            None => done_rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            Some(p) => done_rx.recv_timeout(p),
        };
        match received {
            Ok((i, out)) => {
                if slots[i].is_none() {
                    slots[i] = Some(out.map_err(|panic_message| WorkerFailure {
                        worker: i,
                        deadline: false,
                        panic_message,
                    }));
                    reported += 1;
                }
                // else: a late result from a worker already declared
                // stuck — discarded; its replacement owns the slot.
            }
            Err(RecvTimeoutError::Timeout) => {
                let d = deadline.expect("timeout implies a deadline");
                let now = Instant::now();
                for i in 0..threads {
                    if slots[i].is_some() {
                        continue;
                    }
                    let beats = hb.count(i);
                    if beats != last_beats[i] {
                        last_beats[i] = beats;
                        last_progress[i] = now;
                    } else if now.duration_since(last_progress[i]) >= d {
                        slots[i] = Some(Err(WorkerFailure {
                            worker: i,
                            deadline: true,
                            panic_message: format!(
                                "no heartbeat for {:.1}s (deadline {:.1}s)",
                                now.duration_since(last_progress[i]).as_secs_f64(),
                                d.as_secs_f64()
                            ),
                        }));
                        reported += 1;
                        on_deadline_failure();
                    }
                }
            }
            // All senders dropped before every worker reported:
            // thread death outside the job's catch. Mark the
            // missing slots failed rather than blocking forever.
            Err(RecvTimeoutError::Disconnected) => {
                for (i, slot) in slots.iter_mut().enumerate() {
                    if slot.is_none() {
                        *slot = Some(Err(WorkerFailure {
                            worker: i,
                            deadline: false,
                            panic_message: "worker thread died mid-round".to_string(),
                        }));
                        reported += 1;
                    }
                }
            }
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot reported"))
        .collect()
}

/// Collapse per-worker outcomes into an all-or-nothing round result:
/// any failure discards every output (so a retried round cannot
/// double-count) and reports all failures, sorted by worker.
fn aggregate<R>(slots: Vec<Result<(R, u64), WorkerFailure>>) -> Result<Vec<(R, u64)>, RoundError> {
    let mut results = Vec::with_capacity(slots.len());
    let mut failures = Vec::new();
    for slot in slots {
        match slot {
            Ok(v) => results.push(v),
            Err(f) => failures.push(f),
        }
    }
    if failures.is_empty() {
        Ok(results)
    } else {
        failures.sort_by_key(|fl| fl.worker);
        Err(RoundError { failures })
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // close channels; workers drain and exit
        for h in self.handles.drain(..).flatten() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn round_applies_per_worker() {
        let pool = WorkerPool::new(4);
        let out = pool.run_round(vec![1u64, 2, 3, 4], |i, x| x * 10 + i as u64);
        let values: Vec<u64> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![10, 21, 32, 43]);
    }

    #[test]
    fn workers_run_concurrently() {
        // All 4 workers must be in-flight at once for the rendezvous
        // counter to reach 4.
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let out = pool.run_round(vec![(); 4], {
            let counter = Arc::clone(&counter);
            move |_, ()| {
                counter.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + std::time::Duration::from_secs(2);
                while counter.load(Ordering::SeqCst) < 4 {
                    if Instant::now() > deadline {
                        return false;
                    }
                    std::hint::spin_loop();
                }
                true
            }
        });
        assert!(out.iter().all(|(ok, _)| *ok), "workers did not overlap");
    }

    #[test]
    fn multiple_rounds_reuse_threads() {
        let pool = WorkerPool::new(2);
        for round in 0..10u64 {
            let out = pool.run_round(vec![round, round], |_, x| x + 1);
            assert!(out.iter().all(|(v, _)| *v == round + 1));
        }
    }

    #[test]
    fn timings_reported() {
        let pool = WorkerPool::new(2);
        let out = pool.run_round(vec![(), ()], |_, ()| {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        for (_, ns) in out {
            assert!(ns >= 4_000_000, "busy time {ns}ns too small");
        }
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out = pool.run_round(vec![7], |_, x: i32| x * 2);
        assert_eq!(out[0].0, 14);
    }

    #[test]
    #[should_panic]
    fn batch_count_must_match() {
        let pool = WorkerPool::new(2);
        pool.run_round(vec![1], |_, x: i32| x);
    }

    #[test]
    fn panicking_job_returns_err_not_deadlock() {
        let mut pool = WorkerPool::new(3);
        let err = pool
            .run_round_checked(vec![0u64, 1, 2], |_, x| {
                if x == 1 {
                    panic!("poisoned sub-list {x}");
                }
                x * 2
            })
            .unwrap_err();
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].worker, 1);
        assert!(
            err.failures[0].panic_message.contains("poisoned sub-list"),
            "message: {}",
            err.failures[0].panic_message
        );
    }

    #[test]
    fn failed_round_does_not_poison_later_rounds() {
        let mut pool = WorkerPool::new(2);
        let err = pool.run_round_checked(vec![true, false], |_, fail| {
            if fail {
                panic!("boom");
            }
            7u64
        });
        assert!(err.is_err());
        // subsequent rounds run normally on the same pool
        for round in 0..3u64 {
            let out = pool
                .run_round_checked(vec![round, round], |_, x| x + 1)
                .expect("healthy round");
            assert!(out.iter().all(|(v, _)| *v == round + 1));
        }
        // the panicking variant still works on the same pool too
        let out = pool.run_round(vec![1u64, 2], |_, x| x);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn all_workers_panicking_reports_all() {
        let mut pool = WorkerPool::new(4);
        let err = pool
            .run_round_checked(vec![(); 4], |i, ()| -> u64 { panic!("w{i}") })
            .unwrap_err();
        assert_eq!(err.failures.len(), 4);
        let workers: Vec<usize> = err.failures.iter().map(|f| f.worker).collect();
        assert_eq!(workers, vec![0, 1, 2, 3]);
        // pool recovers
        let out = pool
            .run_round_checked(vec![(); 4], |i, ()| i as u64)
            .expect("recovered");
        assert_eq!(out.len(), 4);
    }

    #[test]
    #[should_panic(expected = "worker round failed")]
    fn unchecked_round_panics_on_worker_panic() {
        let pool = WorkerPool::new(2);
        let _ = pool.run_round(vec![true, false], |_, fail: bool| {
            if fail {
                panic!("boom");
            }
        });
    }

    #[test]
    fn respawn_dead_is_noop_on_healthy_pool() {
        let mut pool = WorkerPool::new(3);
        assert_eq!(pool.dead_workers(), 0);
        assert_eq!(pool.respawn_dead(), 0);
    }

    #[test]
    fn supervised_round_without_deadline_matches_checked() {
        let mut pool = WorkerPool::new(3);
        let out = pool
            .run_round_supervised(
                vec![1u64, 2, 3],
                |i, x, hb: &Heartbeat| {
                    hb.beat(i);
                    x * 10
                },
                None,
            )
            .expect("healthy round");
        let values: Vec<u64> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![10, 20, 30]);
    }

    #[test]
    fn stuck_worker_is_detected_and_abandoned() {
        let mut pool = WorkerPool::new(2);
        // Worker 1 beats once then stalls far beyond the deadline;
        // worker 0 finishes normally. The round must report worker 1 as
        // a deadline failure without waiting out the full stall.
        let release = Arc::new(AtomicUsize::new(0));
        let t0 = Instant::now();
        let err = pool
            .run_round_supervised(
                vec![false, true],
                {
                    let release = Arc::clone(&release);
                    move |_, stall, _hb: &Heartbeat| {
                        if stall {
                            let deadline = Instant::now() + Duration::from_secs(30);
                            while release.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                        7u64
                    }
                },
                Some(Duration::from_millis(200)),
            )
            .unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "waited for the stall"
        );
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].worker, 1);
        assert!(err.failures[0].deadline);
        assert!(
            err.failures[0].panic_message.contains("no heartbeat"),
            "message: {}",
            err.failures[0].panic_message
        );
        // The stuck thread was abandoned: its replacement serves the
        // next round immediately, and the stalled job's late result is
        // not misdelivered into it.
        let out = pool
            .run_round_supervised(vec![1u64, 2], |_, x, _hb: &Heartbeat| x + 1, None)
            .expect("replacement worker serves the next round");
        let values: Vec<u64> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![2, 3]);
        release.store(1, Ordering::SeqCst); // un-wedge the detached thread
    }

    #[test]
    fn heartbeats_keep_a_slow_worker_alive() {
        let mut pool = WorkerPool::new(1);
        // Total runtime (350ms) far exceeds the deadline (100ms), but
        // the worker beats every 20ms, so it must NOT be declared stuck.
        let out = pool
            .run_round_supervised(
                vec![()],
                |i, (), hb: &Heartbeat| {
                    for _ in 0..16 {
                        std::thread::sleep(Duration::from_millis(20));
                        hb.beat(i);
                    }
                    42u64
                },
                Some(Duration::from_millis(100)),
            )
            .expect("beating worker must survive");
        assert_eq!(out[0].0, 42);
    }

    #[test]
    fn epoch_zero_threads_clamped_to_one_runs_inline() {
        // Mirrors `zero_threads_clamped_to_one`: new(0) is one worker,
        // and a one-worker epoch executes inline with no deques.
        let mut pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out = pool
            .run_epoch(vec![vec![7, 8]], |_, x: &i32, _hb| x * 2, None)
            .expect("inline epoch");
        assert_eq!(out.results, vec![vec![14, 16]]);
        assert_eq!(out.steal_stats.len(), 1);
        assert_eq!(out.steal_stats[0].tasks, 2);
        assert_eq!(out.steal_stats[0].steals, 0);
        assert!(out.poisoned.is_empty());
    }

    #[test]
    fn epoch_single_thread_convicts_poison_inline() {
        // Mirrors the one-worker round tests: the inline path has the
        // same per-task conviction semantics as the concurrent one.
        let mut pool = WorkerPool::new(1);
        let out = pool
            .run_epoch(
                vec![vec![1u64, 13, 2]],
                |_, &x, _hb: &Heartbeat| {
                    if x == 13 {
                        panic!("unlucky {x}");
                    }
                    x * 10
                },
                None,
            )
            .expect("poison must not fail the epoch");
        assert_eq!(out.results, vec![vec![10, 20]]);
        assert_eq!(out.poisoned.len(), 1);
        assert_eq!(out.poisoned[0].task, 13);
        assert_eq!(out.poisoned[0].worker, 0);
        assert_eq!(out.retried_tasks, 0);
    }

    #[test]
    #[should_panic(expected = "one seed queue per worker")]
    fn epoch_queue_count_must_match() {
        let mut pool = WorkerPool::new(2);
        let _ = pool.run_epoch(vec![vec![1]], |_, x: &i32, _hb| *x, None);
    }

    #[test]
    fn epoch_steals_balance_a_skewed_seed() {
        // All 64 tasks seeded on worker 0; with 4 workers the others
        // must steal. Every task completes exactly once.
        let mut pool = WorkerPool::new(4);
        let queues = vec![(0..64u64).collect::<Vec<_>>(), vec![], vec![], vec![]];
        let out = pool
            .run_epoch(
                queues,
                |_, &x, _hb: &Heartbeat| {
                    // enough work per task that thieves get a chance
                    std::thread::sleep(Duration::from_micros(200));
                    x
                },
                None,
            )
            .expect("healthy epoch");
        let mut all: Vec<u64> = out.results.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
        let steals: u64 = out.steal_stats.iter().map(|s| s.steals).sum();
        assert!(steals > 0, "no worker ever stole from the skewed seed");
        assert_eq!(
            out.steal_stats.iter().map(|s| s.tasks).sum::<u64>(),
            64,
            "task count mismatch"
        );
    }

    #[test]
    fn epoch_transient_panic_is_retried_inline() {
        let mut pool = WorkerPool::new(2);
        let tripped = Arc::new(AtomicUsize::new(0));
        let out = pool
            .run_epoch(
                vec![vec![1u64, 2], vec![3, 4]],
                {
                    let tripped = Arc::clone(&tripped);
                    move |_, &x, _hb: &Heartbeat| {
                        // task 3 panics exactly once, succeeds on retry
                        if x == 3 && tripped.fetch_add(1, Ordering::SeqCst) == 0 {
                            panic!("transient");
                        }
                        x * 10
                    }
                },
                None,
            )
            .expect("transient panic must be absorbed");
        let mut all: Vec<u64> = out.results.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![10, 20, 30, 40]);
        assert_eq!(out.retried_tasks, 1);
        assert!(out.poisoned.is_empty());
    }

    #[test]
    fn epoch_deterministic_panic_convicts_the_task_only() {
        let mut pool = WorkerPool::new(3);
        let out = pool
            .run_epoch(
                vec![vec![1u64, 2], vec![13], vec![4]],
                |_, &x, _hb: &Heartbeat| {
                    if x == 13 {
                        panic!("poison sub-list {x}");
                    }
                    x * 10
                },
                None,
            )
            .expect("per-task conviction must not fail the epoch");
        let mut all: Vec<u64> = out.results.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![10, 20, 40], "healthy tasks survive");
        assert_eq!(out.poisoned.len(), 1);
        assert_eq!(out.poisoned[0].task, 13);
        assert!(out.poisoned[0].panic_message.contains("poison sub-list"));
    }

    #[test]
    fn epoch_stuck_worker_fails_the_epoch_and_is_abandoned() {
        let mut pool = WorkerPool::new(2);
        let release = Arc::new(AtomicUsize::new(0));
        let t0 = Instant::now();
        let err = pool
            .run_epoch(
                vec![vec![false], vec![true]],
                {
                    let release = Arc::clone(&release);
                    move |_, &stall, _hb: &Heartbeat| {
                        if stall {
                            let deadline = Instant::now() + Duration::from_secs(30);
                            while release.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                        7u64
                    }
                },
                Some(Duration::from_millis(200)),
            )
            .unwrap_err();
        assert!(t0.elapsed() < Duration::from_secs(10), "waited for stall");
        assert!(err.failures.iter().any(|f| f.deadline));
        // The abandoned worker was replaced: the next epoch is healthy.
        let out = pool
            .run_epoch(
                vec![vec![1u64], vec![2]],
                |_, &x, _hb: &Heartbeat| x + 1,
                None,
            )
            .expect("replacement worker serves the next epoch");
        let mut all: Vec<u64> = out.results.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![2, 3]);
        release.store(1, Ordering::SeqCst);
    }

    #[test]
    fn isolated_round_keeps_surviving_results() {
        let mut pool = WorkerPool::new(3);
        let slots = pool.run_round_isolated(
            vec![0u64, 1, 2],
            |_, x, _hb: &Heartbeat| {
                if x == 1 {
                    panic!("poison");
                }
                x * 2
            },
            None,
        );
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[0].as_ref().unwrap().0, 0);
        let failure = slots[1].as_ref().unwrap_err();
        assert!(!failure.deadline);
        assert!(failure.panic_message.contains("poison"));
        assert_eq!(slots[2].as_ref().unwrap().0, 4);
    }
}
