//! Persistent worker pool with per-worker queues and per-round timing.
//!
//! Workers are long-lived ("multiple threads are forked to perform clique
//! generation simultaneously and independently" — §2.3) and each round
//! delivers one batch per worker, preserving task affinity: a worker
//! keeps operating on its own batch unless the balancer moved work.
//!
//! ## Panic containment
//!
//! A panic inside a job is caught on the worker thread and reported
//! through the round's result channel, so one poisoned sub-list cannot
//! deadlock the barrier or kill a multi-hour run: the round returns
//! [`RoundError`] naming the failed workers, the surviving workers'
//! results are discarded (a round is all-or-nothing), and
//! [`WorkerPool::run_round_checked`] respawns any dead threads before
//! the next round.
//!
//! ## Stuck-worker detection
//!
//! A panic is loud; a wedged thread is silent. The supervised round
//! variants ([`WorkerPool::run_round_supervised`],
//! [`WorkerPool::run_round_isolated`]) hand each job a [`Heartbeat`]
//! the job beats once per work unit (the parallel enumerator beats per
//! sub-list). If a worker's beat count stops advancing for the
//! configured deadline, the round marks it failed
//! ([`WorkerFailure::deadline`]), *abandons* the stuck thread (a fresh
//! worker takes over its queue; the old thread is detached and its late
//! result, if any, is discarded), and the level can continue without
//! it.

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Per-worker progress counters for one round. Jobs call
/// [`beat`](Self::beat) at every unit of progress (cheap: one relaxed
/// atomic increment); the supervising round watches the counters and
/// declares a worker stuck when its count stops moving for the
/// deadline.
#[derive(Clone, Debug)]
pub struct Heartbeat {
    beats: Arc<Vec<AtomicU64>>,
}

impl Heartbeat {
    fn new(threads: usize) -> Self {
        Heartbeat {
            beats: Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Record progress for `worker` (out-of-range indices are ignored).
    pub fn beat(&self, worker: usize) {
        if let Some(b) = self.beats.get(worker) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn count(&self, worker: usize) -> u64 {
        self.beats
            .get(worker)
            .map_or(0, |b| b.load(Ordering::Relaxed))
    }
}

/// One worker's failure within a round.
#[derive(Clone, Debug)]
pub struct WorkerFailure {
    /// Index of the worker whose job failed.
    pub worker: usize,
    /// True when the failure was a missed heartbeat deadline (a stuck
    /// thread, abandoned) rather than a caught panic.
    pub deadline: bool,
    /// The panic payload, stringified (`Box<dyn Any>` payloads that are
    /// not strings become `"<non-string panic payload>"`), or the
    /// deadline report for stuck workers.
    pub panic_message: String,
}

/// A round in which at least one worker's job panicked (or its thread
/// died). The round's outputs are discarded wholesale — partial results
/// never reach the caller, so a retried round cannot double-count.
#[derive(Clone, Debug)]
pub struct RoundError {
    /// Every worker that failed this round.
    pub failures: Vec<WorkerFailure>,
}

impl fmt::Display for RoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} worker(s) failed:", self.failures.len())?;
        for failure in &self.failures {
            write!(f, " [worker {}: {}]", failure.worker, failure.panic_message)?;
        }
        Ok(())
    }
}

impl std::error::Error for RoundError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A fixed set of persistent worker threads, each with its own queue.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<Option<JoinHandle<()>>>,
}

fn spawn_worker(i: usize) -> (Sender<Job>, JoinHandle<()>) {
    let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
    let handle = std::thread::Builder::new()
        .name(format!("gsb-worker-{i}"))
        .spawn(move || {
            // Run until the channel closes (pool drop). Jobs are
            // panic-wrapped by run_round, so this loop only exits on
            // channel close — but a defensive catch keeps a raw job
            // from killing the thread either way.
            for job in rx.iter() {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
        })
        .expect("failed to spawn worker thread");
    (tx, handle)
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, handle) = spawn_worker(i);
            senders.push(tx);
            handles.push(Some(handle));
        }
        WorkerPool { senders, handles }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// How many worker threads have terminated (panicked through the
    /// defensive net, or otherwise died).
    pub fn dead_workers(&self) -> usize {
        self.handles
            .iter()
            .filter(|h| h.as_ref().is_none_or(JoinHandle::is_finished))
            .count()
    }

    /// Respawn every terminated worker thread; returns how many were
    /// replaced. Queued jobs on a dead worker's channel are lost (the
    /// round that enqueued them has already been reported failed).
    pub fn respawn_dead(&mut self) -> usize {
        let mut respawned = 0;
        for i in 0..self.handles.len() {
            let dead = self.handles[i].as_ref().is_none_or(JoinHandle::is_finished);
            if dead {
                if let Some(old) = self.handles[i].take() {
                    let _ = old.join();
                }
                let (tx, handle) = spawn_worker(i);
                self.senders[i] = tx;
                self.handles[i] = Some(handle);
                respawned += 1;
            }
        }
        respawned
    }

    /// Execute one level-synchronous round: worker `i` applies `f(i,
    /// batch_i)`; blocks until every worker finishes. Returns each
    /// worker's output and its busy time in nanoseconds (the raw data
    /// behind the paper's Fig. 8 load-balance plot).
    ///
    /// `batches.len()` must equal [`threads`](Self::threads).
    ///
    /// Panics if any worker's job panics — use
    /// [`run_round_checked`](Self::run_round_checked) to get a
    /// [`RoundError`] instead.
    pub fn run_round<T, R, F>(&self, batches: Vec<T>, f: F) -> Vec<(R, u64)>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        aggregate(self.round_core(batches, move |i, b, _hb: &Heartbeat| f(i, b), None))
            .unwrap_or_else(|e| panic!("worker round failed: {e}"))
    }

    /// Fault-tolerant round: like [`run_round`](Self::run_round), but a
    /// panicking job yields `Err(RoundError)` instead of panicking the
    /// caller, and dead worker threads are respawned before the round
    /// starts. On error the entire round's outputs are discarded, so
    /// the caller can retry the same batches without double-counting.
    pub fn run_round_checked<T, R, F>(
        &mut self,
        batches: Vec<T>,
        f: F,
    ) -> Result<Vec<(R, u64)>, RoundError>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        self.respawn_dead();
        aggregate(self.round_core(batches, move |i, b, _hb: &Heartbeat| f(i, b), None))
    }

    /// Supervised round: like [`run_round_checked`](Self::run_round_checked)
    /// but the job receives a [`Heartbeat`] it must beat per work unit,
    /// and a worker whose beats stop advancing for `deadline` is marked
    /// failed ([`WorkerFailure::deadline`]) and its thread abandoned (a
    /// fresh worker replaces it for subsequent rounds). `deadline:
    /// None` supervises panics only, identical to `run_round_checked`.
    pub fn run_round_supervised<T, R, F>(
        &mut self,
        batches: Vec<T>,
        f: F,
        deadline: Option<Duration>,
    ) -> Result<Vec<(R, u64)>, RoundError>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T, &Heartbeat) -> R + Send + Sync + 'static,
    {
        self.respawn_dead();
        let slots = self.round_core(batches, f, deadline);
        self.abandon_stuck(&slots);
        aggregate(slots)
    }

    /// Per-worker round: every worker's outcome is reported
    /// individually — a failure in one slot does not discard its
    /// neighbors' results. This is the probe primitive the quarantine
    /// protocol uses to pin a poison sub-list down to one work unit.
    /// Stuck workers (per `deadline`) are abandoned exactly as in
    /// [`run_round_supervised`](Self::run_round_supervised).
    pub fn run_round_isolated<T, R, F>(
        &mut self,
        batches: Vec<T>,
        f: F,
        deadline: Option<Duration>,
    ) -> Vec<Result<(R, u64), WorkerFailure>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T, &Heartbeat) -> R + Send + Sync + 'static,
    {
        self.respawn_dead();
        let slots = self.round_core(batches, f, deadline);
        self.abandon_stuck(&slots);
        slots
    }

    /// Replace the worker at `i` with a fresh thread. The old thread is
    /// joined if already finished, otherwise detached: dropping its
    /// sender closes its queue, so if it ever un-wedges it exits its
    /// loop; if it never does, it stays parked on its (now unreachable)
    /// job — the price of surviving a genuinely stuck thread.
    fn abandon_worker(&mut self, i: usize) {
        let (tx, handle) = spawn_worker(i);
        self.senders[i] = tx;
        if let Some(old) = self.handles[i].replace(handle) {
            if old.is_finished() {
                let _ = old.join();
            }
            // else: detach by dropping the handle.
        }
    }

    fn abandon_stuck<R>(&mut self, slots: &[Result<(R, u64), WorkerFailure>]) {
        let stuck: Vec<usize> = slots
            .iter()
            .filter_map(|r| r.as_ref().err())
            .filter(|f| f.deadline)
            .map(|f| f.worker)
            .collect();
        for i in stuck {
            self.abandon_worker(i);
        }
    }

    /// The shared round engine: dispatch one batch per worker, collect
    /// per-worker outcomes. With a deadline, collection polls and
    /// watches the heartbeat counters; a silent worker is declared
    /// failed without waiting for it, and any result it sends later is
    /// discarded.
    fn round_core<T, R, F>(
        &self,
        batches: Vec<T>,
        f: F,
        deadline: Option<Duration>,
    ) -> Vec<Result<(R, u64), WorkerFailure>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T, &Heartbeat) -> R + Send + Sync + 'static,
    {
        assert_eq!(
            batches.len(),
            self.threads(),
            "one batch per worker required"
        );
        let threads = self.threads();
        let f = Arc::new(f);
        let hb = Heartbeat::new(threads);
        type Done<R> = (usize, Result<(R, u64), String>);
        let (done_tx, done_rx) = bounded::<Done<R>>(threads);
        for (i, batch) in batches.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let done = done_tx.clone();
            let hb = hb.clone();
            let job: Job = Box::new(move || {
                let start = Instant::now();
                hb.beat(i); // "alive and starting" — a job that never even starts is stuck by definition
                let out = catch_unwind(AssertUnwindSafe(|| f(i, batch, &hb)))
                    .map_err(|payload| panic_message(payload.as_ref()));
                let ns = start.elapsed().as_nanos() as u64;
                // Receiver outlives the round (bounded(threads) never
                // blocks); a send error means the pool is tearing down.
                let _ = done.send((i, out.map(|r| (r, ns))));
            });
            if let Err(send_err) = self.senders[i].send(job) {
                // Worker thread is gone (channel closed). Run its job
                // inline so the round still completes — the job's own
                // catch_unwind reports any panic like a worker would.
                (send_err.0)();
            }
        }
        drop(done_tx);
        let mut slots: Vec<Option<Result<(R, u64), WorkerFailure>>> =
            (0..threads).map(|_| None).collect();
        let mut reported = 0;
        // Stuck detection state: a worker makes progress when its beat
        // count changes between polls. u64::MAX forces the first poll
        // to record a baseline, so the clock starts at observation, not
        // at dispatch.
        let mut last_beats: Vec<u64> = vec![u64::MAX; threads];
        let mut last_progress: Vec<Instant> = vec![Instant::now(); threads];
        let poll = deadline.map(|d| (d / 4).max(Duration::from_millis(5)));
        while reported < threads {
            let received = match poll {
                None => done_rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
                Some(p) => done_rx.recv_timeout(p),
            };
            match received {
                Ok((i, out)) => {
                    if slots[i].is_none() {
                        slots[i] = Some(out.map_err(|panic_message| WorkerFailure {
                            worker: i,
                            deadline: false,
                            panic_message,
                        }));
                        reported += 1;
                    }
                    // else: a late result from a worker already declared
                    // stuck — discarded; its replacement owns the slot.
                }
                Err(RecvTimeoutError::Timeout) => {
                    let d = deadline.expect("timeout implies a deadline");
                    let now = Instant::now();
                    for i in 0..threads {
                        if slots[i].is_some() {
                            continue;
                        }
                        let beats = hb.count(i);
                        if beats != last_beats[i] {
                            last_beats[i] = beats;
                            last_progress[i] = now;
                        } else if now.duration_since(last_progress[i]) >= d {
                            slots[i] = Some(Err(WorkerFailure {
                                worker: i,
                                deadline: true,
                                panic_message: format!(
                                    "no heartbeat for {:.1}s (deadline {:.1}s)",
                                    now.duration_since(last_progress[i]).as_secs_f64(),
                                    d.as_secs_f64()
                                ),
                            }));
                            reported += 1;
                        }
                    }
                }
                // All senders dropped before every worker reported:
                // thread death outside the job's catch. Mark the
                // missing slots failed rather than blocking forever.
                Err(RecvTimeoutError::Disconnected) => {
                    for (i, slot) in slots.iter_mut().enumerate() {
                        if slot.is_none() {
                            *slot = Some(Err(WorkerFailure {
                                worker: i,
                                deadline: false,
                                panic_message: "worker thread died mid-round".to_string(),
                            }));
                            reported += 1;
                        }
                    }
                }
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every slot reported"))
            .collect()
    }
}

/// Collapse per-worker outcomes into an all-or-nothing round result:
/// any failure discards every output (so a retried round cannot
/// double-count) and reports all failures, sorted by worker.
fn aggregate<R>(slots: Vec<Result<(R, u64), WorkerFailure>>) -> Result<Vec<(R, u64)>, RoundError> {
    let mut results = Vec::with_capacity(slots.len());
    let mut failures = Vec::new();
    for slot in slots {
        match slot {
            Ok(v) => results.push(v),
            Err(f) => failures.push(f),
        }
    }
    if failures.is_empty() {
        Ok(results)
    } else {
        failures.sort_by_key(|fl| fl.worker);
        Err(RoundError { failures })
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // close channels; workers drain and exit
        for h in self.handles.drain(..).flatten() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn round_applies_per_worker() {
        let pool = WorkerPool::new(4);
        let out = pool.run_round(vec![1u64, 2, 3, 4], |i, x| x * 10 + i as u64);
        let values: Vec<u64> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![10, 21, 32, 43]);
    }

    #[test]
    fn workers_run_concurrently() {
        // All 4 workers must be in-flight at once for the rendezvous
        // counter to reach 4.
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let out = pool.run_round(vec![(); 4], {
            let counter = Arc::clone(&counter);
            move |_, ()| {
                counter.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + std::time::Duration::from_secs(2);
                while counter.load(Ordering::SeqCst) < 4 {
                    if Instant::now() > deadline {
                        return false;
                    }
                    std::hint::spin_loop();
                }
                true
            }
        });
        assert!(out.iter().all(|(ok, _)| *ok), "workers did not overlap");
    }

    #[test]
    fn multiple_rounds_reuse_threads() {
        let pool = WorkerPool::new(2);
        for round in 0..10u64 {
            let out = pool.run_round(vec![round, round], |_, x| x + 1);
            assert!(out.iter().all(|(v, _)| *v == round + 1));
        }
    }

    #[test]
    fn timings_reported() {
        let pool = WorkerPool::new(2);
        let out = pool.run_round(vec![(), ()], |_, ()| {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        for (_, ns) in out {
            assert!(ns >= 4_000_000, "busy time {ns}ns too small");
        }
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out = pool.run_round(vec![7], |_, x: i32| x * 2);
        assert_eq!(out[0].0, 14);
    }

    #[test]
    #[should_panic]
    fn batch_count_must_match() {
        let pool = WorkerPool::new(2);
        pool.run_round(vec![1], |_, x: i32| x);
    }

    #[test]
    fn panicking_job_returns_err_not_deadlock() {
        let mut pool = WorkerPool::new(3);
        let err = pool
            .run_round_checked(vec![0u64, 1, 2], |_, x| {
                if x == 1 {
                    panic!("poisoned sub-list {x}");
                }
                x * 2
            })
            .unwrap_err();
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].worker, 1);
        assert!(
            err.failures[0].panic_message.contains("poisoned sub-list"),
            "message: {}",
            err.failures[0].panic_message
        );
    }

    #[test]
    fn failed_round_does_not_poison_later_rounds() {
        let mut pool = WorkerPool::new(2);
        let err = pool.run_round_checked(vec![true, false], |_, fail| {
            if fail {
                panic!("boom");
            }
            7u64
        });
        assert!(err.is_err());
        // subsequent rounds run normally on the same pool
        for round in 0..3u64 {
            let out = pool
                .run_round_checked(vec![round, round], |_, x| x + 1)
                .expect("healthy round");
            assert!(out.iter().all(|(v, _)| *v == round + 1));
        }
        // the panicking variant still works on the same pool too
        let out = pool.run_round(vec![1u64, 2], |_, x| x);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn all_workers_panicking_reports_all() {
        let mut pool = WorkerPool::new(4);
        let err = pool
            .run_round_checked(vec![(); 4], |i, ()| -> u64 { panic!("w{i}") })
            .unwrap_err();
        assert_eq!(err.failures.len(), 4);
        let workers: Vec<usize> = err.failures.iter().map(|f| f.worker).collect();
        assert_eq!(workers, vec![0, 1, 2, 3]);
        // pool recovers
        let out = pool
            .run_round_checked(vec![(); 4], |i, ()| i as u64)
            .expect("recovered");
        assert_eq!(out.len(), 4);
    }

    #[test]
    #[should_panic(expected = "worker round failed")]
    fn unchecked_round_panics_on_worker_panic() {
        let pool = WorkerPool::new(2);
        let _ = pool.run_round(vec![true, false], |_, fail: bool| {
            if fail {
                panic!("boom");
            }
        });
    }

    #[test]
    fn respawn_dead_is_noop_on_healthy_pool() {
        let mut pool = WorkerPool::new(3);
        assert_eq!(pool.dead_workers(), 0);
        assert_eq!(pool.respawn_dead(), 0);
    }

    #[test]
    fn supervised_round_without_deadline_matches_checked() {
        let mut pool = WorkerPool::new(3);
        let out = pool
            .run_round_supervised(
                vec![1u64, 2, 3],
                |i, x, hb: &Heartbeat| {
                    hb.beat(i);
                    x * 10
                },
                None,
            )
            .expect("healthy round");
        let values: Vec<u64> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![10, 20, 30]);
    }

    #[test]
    fn stuck_worker_is_detected_and_abandoned() {
        let mut pool = WorkerPool::new(2);
        // Worker 1 beats once then stalls far beyond the deadline;
        // worker 0 finishes normally. The round must report worker 1 as
        // a deadline failure without waiting out the full stall.
        let release = Arc::new(AtomicUsize::new(0));
        let t0 = Instant::now();
        let err = pool
            .run_round_supervised(
                vec![false, true],
                {
                    let release = Arc::clone(&release);
                    move |_, stall, _hb: &Heartbeat| {
                        if stall {
                            let deadline = Instant::now() + Duration::from_secs(30);
                            while release.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                        7u64
                    }
                },
                Some(Duration::from_millis(200)),
            )
            .unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "waited for the stall"
        );
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].worker, 1);
        assert!(err.failures[0].deadline);
        assert!(
            err.failures[0].panic_message.contains("no heartbeat"),
            "message: {}",
            err.failures[0].panic_message
        );
        // The stuck thread was abandoned: its replacement serves the
        // next round immediately, and the stalled job's late result is
        // not misdelivered into it.
        let out = pool
            .run_round_supervised(vec![1u64, 2], |_, x, _hb: &Heartbeat| x + 1, None)
            .expect("replacement worker serves the next round");
        let values: Vec<u64> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![2, 3]);
        release.store(1, Ordering::SeqCst); // un-wedge the detached thread
    }

    #[test]
    fn heartbeats_keep_a_slow_worker_alive() {
        let mut pool = WorkerPool::new(1);
        // Total runtime (350ms) far exceeds the deadline (100ms), but
        // the worker beats every 20ms, so it must NOT be declared stuck.
        let out = pool
            .run_round_supervised(
                vec![()],
                |i, (), hb: &Heartbeat| {
                    for _ in 0..16 {
                        std::thread::sleep(Duration::from_millis(20));
                        hb.beat(i);
                    }
                    42u64
                },
                Some(Duration::from_millis(100)),
            )
            .expect("beating worker must survive");
        assert_eq!(out[0].0, 42);
    }

    #[test]
    fn isolated_round_keeps_surviving_results() {
        let mut pool = WorkerPool::new(3);
        let slots = pool.run_round_isolated(
            vec![0u64, 1, 2],
            |_, x, _hb: &Heartbeat| {
                if x == 1 {
                    panic!("poison");
                }
                x * 2
            },
            None,
        );
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[0].as_ref().unwrap().0, 0);
        let failure = slots[1].as_ref().unwrap_err();
        assert!(!failure.deadline);
        assert!(failure.panic_message.contains("poison"));
        assert_eq!(slots[2].as_ref().unwrap().0, 4);
    }
}
