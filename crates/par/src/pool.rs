//! Persistent worker pool with per-worker queues and per-round timing.
//!
//! Workers are long-lived ("multiple threads are forked to perform clique
//! generation simultaneously and independently" — §2.3) and each round
//! delivers one batch per worker, preserving task affinity: a worker
//! keeps operating on its own batch unless the balancer moved work.
//!
//! ## Panic containment
//!
//! A panic inside a job is caught on the worker thread and reported
//! through the round's result channel, so one poisoned sub-list cannot
//! deadlock the barrier or kill a multi-hour run: the round returns
//! [`RoundError`] naming the failed workers, the surviving workers'
//! results are discarded (a round is all-or-nothing), and
//! [`WorkerPool::run_round_checked`] respawns any dead threads before
//! the next round.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// One worker's failure within a round.
#[derive(Clone, Debug)]
pub struct WorkerFailure {
    /// Index of the worker whose job failed.
    pub worker: usize,
    /// The panic payload, stringified (`Box<dyn Any>` payloads that are
    /// not strings become `"<non-string panic payload>"`).
    pub panic_message: String,
}

/// A round in which at least one worker's job panicked (or its thread
/// died). The round's outputs are discarded wholesale — partial results
/// never reach the caller, so a retried round cannot double-count.
#[derive(Clone, Debug)]
pub struct RoundError {
    /// Every worker that failed this round.
    pub failures: Vec<WorkerFailure>,
}

impl fmt::Display for RoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} worker(s) failed:", self.failures.len())?;
        for failure in &self.failures {
            write!(f, " [worker {}: {}]", failure.worker, failure.panic_message)?;
        }
        Ok(())
    }
}

impl std::error::Error for RoundError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A fixed set of persistent worker threads, each with its own queue.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<Option<JoinHandle<()>>>,
}

fn spawn_worker(i: usize) -> (Sender<Job>, JoinHandle<()>) {
    let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
    let handle = std::thread::Builder::new()
        .name(format!("gsb-worker-{i}"))
        .spawn(move || {
            // Run until the channel closes (pool drop). Jobs are
            // panic-wrapped by run_round, so this loop only exits on
            // channel close — but a defensive catch keeps a raw job
            // from killing the thread either way.
            for job in rx.iter() {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
        })
        .expect("failed to spawn worker thread");
    (tx, handle)
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, handle) = spawn_worker(i);
            senders.push(tx);
            handles.push(Some(handle));
        }
        WorkerPool { senders, handles }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// How many worker threads have terminated (panicked through the
    /// defensive net, or otherwise died).
    pub fn dead_workers(&self) -> usize {
        self.handles
            .iter()
            .filter(|h| h.as_ref().is_none_or(JoinHandle::is_finished))
            .count()
    }

    /// Respawn every terminated worker thread; returns how many were
    /// replaced. Queued jobs on a dead worker's channel are lost (the
    /// round that enqueued them has already been reported failed).
    pub fn respawn_dead(&mut self) -> usize {
        let mut respawned = 0;
        for i in 0..self.handles.len() {
            let dead = self.handles[i].as_ref().is_none_or(JoinHandle::is_finished);
            if dead {
                if let Some(old) = self.handles[i].take() {
                    let _ = old.join();
                }
                let (tx, handle) = spawn_worker(i);
                self.senders[i] = tx;
                self.handles[i] = Some(handle);
                respawned += 1;
            }
        }
        respawned
    }

    /// Execute one level-synchronous round: worker `i` applies `f(i,
    /// batch_i)`; blocks until every worker finishes. Returns each
    /// worker's output and its busy time in nanoseconds (the raw data
    /// behind the paper's Fig. 8 load-balance plot).
    ///
    /// `batches.len()` must equal [`threads`](Self::threads).
    ///
    /// Panics if any worker's job panics — use
    /// [`run_round_checked`](Self::run_round_checked) to get a
    /// [`RoundError`] instead.
    pub fn run_round<T, R, F>(&self, batches: Vec<T>, f: F) -> Vec<(R, u64)>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        self.round_inner(batches, f)
            .unwrap_or_else(|e| panic!("worker round failed: {e}"))
    }

    /// Fault-tolerant round: like [`run_round`](Self::run_round), but a
    /// panicking job yields `Err(RoundError)` instead of panicking the
    /// caller, and dead worker threads are respawned before the round
    /// starts. On error the entire round's outputs are discarded, so
    /// the caller can retry the same batches without double-counting.
    pub fn run_round_checked<T, R, F>(
        &mut self,
        batches: Vec<T>,
        f: F,
    ) -> Result<Vec<(R, u64)>, RoundError>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        self.respawn_dead();
        self.round_inner(batches, f)
    }

    fn round_inner<T, R, F>(&self, batches: Vec<T>, f: F) -> Result<Vec<(R, u64)>, RoundError>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        assert_eq!(
            batches.len(),
            self.threads(),
            "one batch per worker required"
        );
        let f = Arc::new(f);
        type Done<R> = (usize, Result<(R, u64), String>);
        let (done_tx, done_rx) = bounded::<Done<R>>(self.threads());
        for (i, batch) in batches.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let done = done_tx.clone();
            let job: Job = Box::new(move || {
                let start = Instant::now();
                let out = catch_unwind(AssertUnwindSafe(|| f(i, batch)))
                    .map_err(|payload| panic_message(payload.as_ref()));
                let ns = start.elapsed().as_nanos() as u64;
                // Receiver outlives the round; send only fails if the
                // pool is being torn down mid-round, which round_inner's
                // blocking recv below makes impossible.
                let _ = done.send((i, out.map(|r| (r, ns))));
            });
            if let Err(send_err) = self.senders[i].send(job) {
                // Worker thread is gone (channel closed). Run its job
                // inline so the round still completes — the job's own
                // catch_unwind reports any panic like a worker would.
                (send_err.0)();
            }
        }
        drop(done_tx);
        let mut results: Vec<Option<(R, u64)>> = (0..self.threads()).map(|_| None).collect();
        let mut failures: Vec<WorkerFailure> = Vec::new();
        let mut reported = 0;
        while reported < self.threads() {
            match done_rx.recv() {
                Ok((i, Ok(out))) => {
                    results[i] = Some(out);
                    reported += 1;
                }
                Ok((i, Err(panic_message))) => {
                    failures.push(WorkerFailure {
                        worker: i,
                        panic_message,
                    });
                    reported += 1;
                }
                // All senders dropped before every worker reported:
                // thread death outside the job's catch. Mark the
                // missing slots failed rather than blocking forever.
                Err(_) => {
                    for (i, slot) in results.iter().enumerate() {
                        if slot.is_none() && !failures.iter().any(|fl| fl.worker == i) {
                            failures.push(WorkerFailure {
                                worker: i,
                                panic_message: "worker thread died mid-round".to_string(),
                            });
                        }
                    }
                    break;
                }
            }
        }
        if !failures.is_empty() {
            failures.sort_by_key(|fl| fl.worker);
            return Err(RoundError { failures });
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every worker reports"))
            .collect())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // close channels; workers drain and exit
        for h in self.handles.drain(..).flatten() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn round_applies_per_worker() {
        let pool = WorkerPool::new(4);
        let out = pool.run_round(vec![1u64, 2, 3, 4], |i, x| x * 10 + i as u64);
        let values: Vec<u64> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![10, 21, 32, 43]);
    }

    #[test]
    fn workers_run_concurrently() {
        // All 4 workers must be in-flight at once for the rendezvous
        // counter to reach 4.
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let out = pool.run_round(vec![(); 4], {
            let counter = Arc::clone(&counter);
            move |_, ()| {
                counter.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + std::time::Duration::from_secs(2);
                while counter.load(Ordering::SeqCst) < 4 {
                    if Instant::now() > deadline {
                        return false;
                    }
                    std::hint::spin_loop();
                }
                true
            }
        });
        assert!(out.iter().all(|(ok, _)| *ok), "workers did not overlap");
    }

    #[test]
    fn multiple_rounds_reuse_threads() {
        let pool = WorkerPool::new(2);
        for round in 0..10u64 {
            let out = pool.run_round(vec![round, round], |_, x| x + 1);
            assert!(out.iter().all(|(v, _)| *v == round + 1));
        }
    }

    #[test]
    fn timings_reported() {
        let pool = WorkerPool::new(2);
        let out = pool.run_round(vec![(), ()], |_, ()| {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        for (_, ns) in out {
            assert!(ns >= 4_000_000, "busy time {ns}ns too small");
        }
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out = pool.run_round(vec![7], |_, x: i32| x * 2);
        assert_eq!(out[0].0, 14);
    }

    #[test]
    #[should_panic]
    fn batch_count_must_match() {
        let pool = WorkerPool::new(2);
        pool.run_round(vec![1], |_, x: i32| x);
    }

    #[test]
    fn panicking_job_returns_err_not_deadlock() {
        let mut pool = WorkerPool::new(3);
        let err = pool
            .run_round_checked(vec![0u64, 1, 2], |_, x| {
                if x == 1 {
                    panic!("poisoned sub-list {x}");
                }
                x * 2
            })
            .unwrap_err();
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].worker, 1);
        assert!(
            err.failures[0].panic_message.contains("poisoned sub-list"),
            "message: {}",
            err.failures[0].panic_message
        );
    }

    #[test]
    fn failed_round_does_not_poison_later_rounds() {
        let mut pool = WorkerPool::new(2);
        let err = pool.run_round_checked(vec![true, false], |_, fail| {
            if fail {
                panic!("boom");
            }
            7u64
        });
        assert!(err.is_err());
        // subsequent rounds run normally on the same pool
        for round in 0..3u64 {
            let out = pool
                .run_round_checked(vec![round, round], |_, x| x + 1)
                .expect("healthy round");
            assert!(out.iter().all(|(v, _)| *v == round + 1));
        }
        // the panicking variant still works on the same pool too
        let out = pool.run_round(vec![1u64, 2], |_, x| x);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn all_workers_panicking_reports_all() {
        let mut pool = WorkerPool::new(4);
        let err = pool
            .run_round_checked(vec![(); 4], |i, ()| -> u64 { panic!("w{i}") })
            .unwrap_err();
        assert_eq!(err.failures.len(), 4);
        let workers: Vec<usize> = err.failures.iter().map(|f| f.worker).collect();
        assert_eq!(workers, vec![0, 1, 2, 3]);
        // pool recovers
        let out = pool
            .run_round_checked(vec![(); 4], |i, ()| i as u64)
            .expect("recovered");
        assert_eq!(out.len(), 4);
    }

    #[test]
    #[should_panic(expected = "worker round failed")]
    fn unchecked_round_panics_on_worker_panic() {
        let pool = WorkerPool::new(2);
        let _ = pool.run_round(vec![true, false], |_, fail: bool| {
            if fail {
                panic!("boom");
            }
        });
    }

    #[test]
    fn respawn_dead_is_noop_on_healthy_pool() {
        let mut pool = WorkerPool::new(3);
        assert_eq!(pool.dead_workers(), 0);
        assert_eq!(pool.respawn_dead(), 0);
    }
}
