//! Persistent worker pool with per-worker queues and per-round timing.
//!
//! Workers are long-lived ("multiple threads are forked to perform clique
//! generation simultaneously and independently" — §2.3) and each round
//! delivers one batch per worker, preserving task affinity: a worker
//! keeps operating on its own batch unless the balancer moved work.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of persistent worker threads, each with its own queue.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
            let handle = std::thread::Builder::new()
                .name(format!("gsb-worker-{i}"))
                .spawn(move || {
                    // Run until the channel closes (pool drop).
                    for job in rx.iter() {
                        job();
                    }
                })
                .expect("failed to spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool { senders, handles }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Execute one level-synchronous round: worker `i` applies `f(i,
    /// batch_i)`; blocks until every worker finishes. Returns each
    /// worker's output and its busy time in nanoseconds (the raw data
    /// behind the paper's Fig. 8 load-balance plot).
    ///
    /// `batches.len()` must equal [`threads`](Self::threads).
    pub fn run_round<T, R, F>(&self, batches: Vec<T>, f: F) -> Vec<(R, u64)>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        assert_eq!(
            batches.len(),
            self.threads(),
            "one batch per worker required"
        );
        let f = Arc::new(f);
        let (done_tx, done_rx) = bounded::<(usize, R, u64)>(self.threads());
        for (i, batch) in batches.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let done = done_tx.clone();
            let job: Job = Box::new(move || {
                let start = Instant::now();
                let out = f(i, batch);
                let ns = start.elapsed().as_nanos() as u64;
                // Receiver outlives the round; send only fails if the
                // pool is being torn down mid-round, which run_round's
                // blocking recv below makes impossible.
                let _ = done.send((i, out, ns));
            });
            self.senders[i].send(job).expect("worker channel closed");
        }
        drop(done_tx);
        let mut results: Vec<Option<(R, u64)>> = (0..self.threads()).map(|_| None).collect();
        for _ in 0..self.threads() {
            let (i, r, ns) = done_rx.recv().expect("worker died mid-round");
            results[i] = Some((r, ns));
        }
        results
            .into_iter()
            .map(|r| r.expect("every worker reports"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // close channels; workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn round_applies_per_worker() {
        let pool = WorkerPool::new(4);
        let out = pool.run_round(vec![1u64, 2, 3, 4], |i, x| x * 10 + i as u64);
        let values: Vec<u64> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![10, 21, 32, 43]);
    }

    #[test]
    fn workers_run_concurrently() {
        // All 4 workers must be in-flight at once for the rendezvous
        // counter to reach 4.
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let out = pool.run_round(vec![(); 4], {
            let counter = Arc::clone(&counter);
            move |_, ()| {
                counter.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + std::time::Duration::from_secs(2);
                while counter.load(Ordering::SeqCst) < 4 {
                    if Instant::now() > deadline {
                        return false;
                    }
                    std::hint::spin_loop();
                }
                true
            }
        });
        assert!(out.iter().all(|(ok, _)| *ok), "workers did not overlap");
    }

    #[test]
    fn multiple_rounds_reuse_threads() {
        let pool = WorkerPool::new(2);
        for round in 0..10u64 {
            let out = pool.run_round(vec![round, round], |_, x| x + 1);
            assert!(out.iter().all(|(v, _)| *v == round + 1));
        }
    }

    #[test]
    fn timings_reported() {
        let pool = WorkerPool::new(2);
        let out = pool.run_round(vec![(), ()], |_, ()| {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        for (_, ns) in out {
            assert!(ns >= 4_000_000, "busy time {ns}ns too small");
        }
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out = pool.run_round(vec![7], |_, x: i32| x * 2);
        assert_eq!(out[0].0, 14);
    }

    #[test]
    #[should_panic]
    fn batch_count_must_match() {
        let pool = WorkerPool::new(2);
        pool.run_round(vec![1], |_, x: i32| x);
    }
}
