//! Per-worker / per-level timing records.
//!
//! Figure 8 of the paper plots the mean and standard deviation of
//! execution time *across processors* to show the balancer keeps the
//! spread within 10% of the mean. These types capture exactly that data
//! from real runs (and from the virtual simulator).

/// Busy times of every worker for one level (a synchronous round under
/// the barrier scheduler, a steal-scope epoch under the work-stealing
/// scheduler). One imbalance model covers both: [`transfers`]
/// (Self::transfers) counts every task that changed workers, whether
/// the centralized balancer moved it at the barrier or an idle worker
/// stole it mid-epoch.
#[derive(Clone, Debug, Default)]
pub struct LevelStats {
    /// Clique size (or generic level id) this round produced.
    pub level: usize,
    /// Per-worker busy nanoseconds.
    pub per_worker_ns: Vec<u64>,
    /// Per-worker deterministic work units (empty when the caller does
    /// not track them). Unlike wall time, these are unaffected by host
    /// core contention, so they measure the *balancer*, not the OS.
    pub per_worker_units: Vec<u64>,
    /// Number of tasks each worker processed.
    pub per_worker_tasks: Vec<usize>,
    /// Tasks that moved between workers at this level: balancer
    /// transfers under the barrier scheduler, successful steals under
    /// the steal scheduler. The unified "moved work" count.
    pub transfers: usize,
    /// Per-worker successful steals (empty under the barrier
    /// scheduler; sums to [`transfers`](Self::transfers) under the
    /// steal scheduler).
    pub per_worker_steals: Vec<u64>,
    /// Victim scans that found nothing stealable while work was still
    /// in flight (steal scheduler only).
    pub failed_steals: u64,
    /// Per-worker nanoseconds spent waiting for stealable work (the
    /// quiescence tail; empty under the barrier scheduler, whose idle
    /// time hides inside the barrier wait and is *not* observable
    /// per-worker — exactly what Fig. 8 infers from the busy spread).
    pub per_worker_idle_ns: Vec<u64>,
}

impl LevelStats {
    /// Mean busy time (ns) across workers.
    pub fn mean_ns(&self) -> f64 {
        mean(&self.per_worker_ns)
    }

    /// Population standard deviation of busy time (ns) across workers.
    pub fn stddev_ns(&self) -> f64 {
        stddev(&self.per_worker_ns)
    }

    /// Relative imbalance: stddev / mean (0 when idle).
    pub fn imbalance(&self) -> f64 {
        let m = self.mean_ns();
        if m == 0.0 {
            0.0
        } else {
            self.stddev_ns() / m
        }
    }
}

/// Timing of a whole multi-level run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// One entry per level, in execution order.
    pub levels: Vec<LevelStats>,
    /// Wall-clock nanoseconds of the full run.
    pub wall_ns: u64,
}

impl RunStats {
    /// Total busy time per worker, summed over levels (the per-processor
    /// run times of Fig. 8).
    pub fn per_worker_totals(&self) -> Vec<u64> {
        let workers = self
            .levels
            .iter()
            .map(|l| l.per_worker_ns.len())
            .max()
            .unwrap_or(0);
        let mut totals = vec![0u64; workers];
        for l in &self.levels {
            for (w, &ns) in l.per_worker_ns.iter().enumerate() {
                totals[w] += ns;
            }
        }
        totals
    }

    /// Mean of per-worker total busy times.
    pub fn mean_worker_ns(&self) -> f64 {
        mean(&self.per_worker_totals())
    }

    /// Stddev of per-worker total busy times.
    pub fn stddev_worker_ns(&self) -> f64 {
        stddev(&self.per_worker_totals())
    }

    /// Total work units per worker, summed over levels (the
    /// contention-free view of Fig. 8's load balance).
    pub fn per_worker_unit_totals(&self) -> Vec<u64> {
        let workers = self
            .levels
            .iter()
            .map(|l| l.per_worker_units.len())
            .max()
            .unwrap_or(0);
        let mut totals = vec![0u64; workers];
        for l in &self.levels {
            for (w, &u) in l.per_worker_units.iter().enumerate() {
                totals[w] += u;
            }
        }
        totals
    }

    /// Total moved work across levels: balancer transfers plus steals
    /// (the two schedulers' unified imbalance model — see
    /// [`LevelStats::transfers`]).
    pub fn total_transfers(&self) -> usize {
        self.levels.iter().map(|l| l.transfers).sum()
    }

    /// Total failed steal scans across levels (0 under the barrier
    /// scheduler).
    pub fn total_failed_steals(&self) -> u64 {
        self.levels.iter().map(|l| l.failed_steals).sum()
    }

    /// Total steal-wait (idle) time per worker, summed over levels.
    pub fn per_worker_idle_totals(&self) -> Vec<u64> {
        let workers = self
            .levels
            .iter()
            .map(|l| l.per_worker_idle_ns.len())
            .max()
            .unwrap_or(0);
        let mut totals = vec![0u64; workers];
        for l in &self.levels {
            for (w, &ns) in l.per_worker_idle_ns.iter().enumerate() {
                totals[w] += ns;
            }
        }
        totals
    }
}

/// Mean of a u64 slice (0 when empty).
pub fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }
}

/// Population standard deviation of a u64 slice (0 when empty).
pub fn stddev(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs
        .iter()
        .map(|&x| {
            let d = x as f64 - m;
            d * d
        })
        .sum::<f64>()
        / xs.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2, 4, 6]), 4.0);
        assert_eq!(stddev(&[5, 5, 5]), 0.0);
        assert!((stddev(&[2, 4, 6]) - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn level_imbalance() {
        let l = LevelStats {
            level: 3,
            per_worker_ns: vec![100, 100, 100, 100],
            per_worker_units: vec![10; 4],
            per_worker_tasks: vec![1; 4],
            transfers: 0,
            ..Default::default()
        };
        assert_eq!(l.imbalance(), 0.0);
        let l2 = LevelStats {
            per_worker_ns: vec![0, 0],
            ..Default::default()
        };
        assert_eq!(l2.imbalance(), 0.0);
    }

    #[test]
    fn run_totals_accumulate() {
        let run = RunStats {
            levels: vec![
                LevelStats {
                    level: 3,
                    per_worker_ns: vec![10, 20],
                    per_worker_units: Vec::new(),
                    per_worker_tasks: vec![1, 2],
                    transfers: 1,
                    ..Default::default()
                },
                LevelStats {
                    level: 4,
                    per_worker_ns: vec![5, 5],
                    per_worker_units: Vec::new(),
                    per_worker_tasks: vec![1, 1],
                    transfers: 0,
                    ..Default::default()
                },
            ],
            wall_ns: 42,
        };
        assert_eq!(run.per_worker_totals(), vec![15, 25]);
        assert_eq!(run.mean_worker_ns(), 20.0);
        assert_eq!(run.total_transfers(), 1);
    }

    #[test]
    fn empty_run_is_all_zeros() {
        let run = RunStats::default();
        assert!(run.per_worker_totals().is_empty());
        assert!(run.per_worker_unit_totals().is_empty());
        assert_eq!(run.mean_worker_ns(), 0.0);
        assert_eq!(run.stddev_worker_ns(), 0.0);
        assert_eq!(run.total_transfers(), 0);
    }

    #[test]
    fn single_worker_has_no_spread() {
        let l = LevelStats {
            level: 3,
            per_worker_ns: vec![1234],
            per_worker_units: vec![99],
            per_worker_tasks: vec![7],
            transfers: 0,
            ..Default::default()
        };
        assert_eq!(l.mean_ns(), 1234.0);
        assert_eq!(l.stddev_ns(), 0.0);
        assert_eq!(l.imbalance(), 0.0);
        let run = RunStats {
            levels: vec![l],
            wall_ns: 1234,
        };
        assert_eq!(run.per_worker_totals(), vec![1234]);
        assert_eq!(run.stddev_worker_ns(), 0.0);
    }

    #[test]
    fn ragged_levels_pad_missing_workers_with_zero() {
        // A run whose worker count changed between levels (e.g. a
        // respawned pool after a contained panic): totals must be sized
        // by the widest level, with absent workers contributing zero.
        let run = RunStats {
            levels: vec![
                LevelStats {
                    level: 3,
                    per_worker_ns: vec![10, 20, 30],
                    per_worker_units: vec![1, 2, 3],
                    per_worker_tasks: vec![1, 1, 1],
                    transfers: 2,
                    ..Default::default()
                },
                LevelStats {
                    level: 4,
                    per_worker_ns: vec![40],
                    per_worker_units: vec![4],
                    per_worker_tasks: vec![1],
                    transfers: 0,
                    ..Default::default()
                },
            ],
            wall_ns: 100,
        };
        assert_eq!(run.per_worker_totals(), vec![50, 20, 30]);
        assert_eq!(run.per_worker_unit_totals(), vec![5, 2, 3]);
        let totals = run.per_worker_totals();
        assert!((mean(&totals) - 100.0 / 3.0).abs() < 1e-12);
        // stddev over [50, 20, 30]: mean 33.33, population variance
        // (16.67^2 + 13.33^2 + 3.33^2)/3
        let m: f64 = 100.0 / 3.0;
        let var = ((50.0 - m).powi(2) + (20.0 - m).powi(2) + (30.0 - m).powi(2)) / 3.0;
        assert!((stddev(&totals) - var.sqrt()).abs() < 1e-9);
        assert_eq!(run.total_transfers(), 2);
    }
}
