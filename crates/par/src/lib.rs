//! # gsb-par — level-synchronous parallelism with centralized balancing
//!
//! The SC'05 Clique Enumerator parallelizes by exploiting that "the
//! generation of (k+1)-cliques from a k-clique sub-list is independent of
//! any other k-clique sub-lists". Its runtime shape (§2.3):
//!
//! 1. a **task scheduler** divides all k-clique sub-lists among worker
//!    threads and signals them to start;
//! 2. workers expand their local sub-lists **without communication**;
//! 3. at a per-level barrier the scheduler collects results, makes a
//!    **load-balancing decision** (transfer work from heavy to light
//!    threads when the spread exceeds a threshold derived from the total
//!    load), and starts the next level;
//! 4. on shared memory, "transferring" a task passes an address, not data.
//!
//! This crate implements that runtime generically:
//!
//! * [`pool::WorkerPool`] — persistent worker threads with per-worker
//!   queues (task affinity) and per-level timing;
//! * [`balance`] — initial partitioning and the centralized transfer
//!   policy as pure, testable functions;
//! * [`stats`] — per-worker/per-level timing records (Fig. 8's
//!   mean ± stddev comes straight from these);
//! * [`vsim`] — a deterministic **virtual-processor scheduler simulator**
//!   that replays measured per-task costs onto P ∈ [1, 256] virtual CPUs
//!   with a per-level synchronization cost. This substitutes for the
//!   paper's 256-processor SGI Altix (see DESIGN.md §2): speedup *shape*
//!   is a function of the task-cost distribution and barrier overhead,
//!   both of which the simulator takes from real measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod pool;
pub mod stats;
pub mod vsim;

pub use balance::{partition_greedy, rebalance, BalancePolicy};
pub use pool::{Heartbeat, RoundError, WorkerFailure, WorkerPool};
pub use stats::{LevelStats, RunStats};
pub use vsim::{SimConfig, SimResult, VirtualScheduler};
