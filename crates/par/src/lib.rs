//! # gsb-par — barrier-round and work-stealing parallel runtimes
//!
//! The SC'05 Clique Enumerator parallelizes by exploiting that "the
//! generation of (k+1)-cliques from a k-clique sub-list is independent of
//! any other k-clique sub-lists". The paper's runtime shape (§2.3):
//!
//! 1. a **task scheduler** divides all k-clique sub-lists among worker
//!    threads and signals them to start;
//! 2. workers expand their local sub-lists **without communication**;
//! 3. at a per-level barrier the scheduler collects results, makes a
//!    **load-balancing decision** (transfer work from heavy to light
//!    threads when the spread exceeds a threshold derived from the total
//!    load), and starts the next level;
//! 4. on shared memory, "transferring" a task passes an address, not data.
//!
//! This crate implements that runtime *and* its modern replacement:
//!
//! * [`pool::WorkerPool`] — persistent worker threads supporting two
//!   execution disciplines: [`run_round`](pool::WorkerPool::run_round),
//!   the paper's barrier round (one pre-partitioned batch per worker,
//!   collect at a barrier), and
//!   [`run_epoch`](pool::WorkerPool::run_epoch), a work-stealing
//!   *steal-scope epoch* (per-worker deques, idle workers steal, the
//!   epoch ends at quiescence — where the old barrier hooks re-attach);
//! * [`steal`] — the std-only Chase–Lev-style deque discipline
//!   (owner-LIFO / thief-FIFO) plus per-worker [`StealStats`] counters;
//! * [`balance`] — initial partitioning and the centralized transfer
//!   policy used by the barrier path, as pure, testable functions;
//! * [`stats`] — per-worker/per-level timing records with one unified
//!   imbalance model for both schedulers (Fig. 8's mean ± stddev and
//!   the steal-balance table come straight from these);
//! * [`vsim`] — a deterministic **virtual-processor scheduler simulator**
//!   that replays measured per-task costs onto P ∈ [1, 256] virtual CPUs
//!   with a per-level synchronization cost. This substitutes for the
//!   paper's 256-processor SGI Altix (see DESIGN.md §2): speedup *shape*
//!   is a function of the task-cost distribution and scheduling
//!   discipline, both of which the simulator takes from real
//!   measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod pool;
pub mod stats;
pub mod steal;
pub mod vsim;

pub use balance::{partition_greedy, rebalance, BalancePolicy};
pub use pool::{EpochOut, Heartbeat, PoisonedTask, RoundError, WorkerFailure, WorkerPool};
pub use stats::{LevelStats, RunStats};
pub use steal::{EpochTasks, StealDeque, StealStats};
pub use vsim::{SimConfig, SimResult, VirtualScheduler};
