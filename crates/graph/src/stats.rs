//! Descriptive statistics for network workloads.
//!
//! The paper characterizes its evaluation graphs by vertex count, edge
//! density, and maximum clique size; these helpers compute the profile
//! of any [`BitGraph`] so that synthetic workloads can be checked against
//! the published targets.

use crate::BitGraph;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphProfile {
    /// Vertex count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Edge density in [0, 1].
    pub density: f64,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Number of isolated vertices.
    pub isolated: usize,
    /// Number of triangles (3-cliques).
    pub triangles: usize,
    /// Global clustering coefficient (3 × triangles / wedges), zero when
    /// the graph has no wedge.
    pub clustering: f64,
}

/// Compute the [`GraphProfile`] of a graph.
pub fn profile(g: &BitGraph) -> GraphProfile {
    let n = g.n();
    let degrees: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let triangles = triangle_count(g);
    let wedges: usize = degrees.iter().map(|&d| d * d.saturating_sub(1) / 2).sum();
    GraphProfile {
        n,
        m: g.m(),
        density: g.density(),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        mean_degree: if n == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / n as f64
        },
        isolated: degrees.iter().filter(|&&d| d == 0).count(),
        triangles,
        clustering: if wedges == 0 {
            0.0
        } else {
            3.0 * triangles as f64 / wedges as f64
        },
    }
}

/// Exact triangle count via per-edge neighborhood intersection (counted
/// once per triangle).
pub fn triangle_count(g: &BitGraph) -> usize {
    let mut count = 0usize;
    for (u, v) in g.edges() {
        // count common neighbors above v so each triangle is seen once
        // from its lexicographically smallest edge
        let mut w = g.neighbors(u).next_common(g.neighbors(v), v + 1);
        while let Some(x) = w {
            count += 1;
            w = g.neighbors(u).next_common(g.neighbors(v), x + 1);
        }
    }
    count
}

/// Connected components: returns `(component_id_per_vertex, count)`.
pub fn connected_components(g: &BitGraph) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0usize;
    let mut stack = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = count;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for u in g.neighbors(v).iter_ones() {
                if comp[u] == usize::MAX {
                    comp[u] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &BitGraph) -> Vec<usize> {
    let maxd = (0..g.n()).map(|v| g.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; maxd + 1];
    for v in 0..g.n() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_counts() {
        assert_eq!(triangle_count(&BitGraph::complete(3)), 1);
        assert_eq!(triangle_count(&BitGraph::complete(4)), 4);
        assert_eq!(triangle_count(&BitGraph::complete(5)), 10);
        let path = BitGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(triangle_count(&path), 0);
    }

    #[test]
    fn profile_of_k4() {
        let p = profile(&BitGraph::complete(4));
        assert_eq!(p.n, 4);
        assert_eq!(p.m, 6);
        assert_eq!(p.min_degree, 3);
        assert_eq!(p.max_degree, 3);
        assert_eq!(p.triangles, 4);
        assert!((p.clustering - 1.0).abs() < 1e-12);
        assert_eq!(p.isolated, 0);
    }

    #[test]
    fn profile_of_empty() {
        let p = profile(&BitGraph::new(3));
        assert_eq!(p.m, 0);
        assert_eq!(p.isolated, 3);
        assert_eq!(p.clustering, 0.0);
        let p = profile(&BitGraph::new(0));
        assert_eq!(p.mean_degree, 0.0);
    }

    #[test]
    fn components_of_disjoint_pieces() {
        let g = BitGraph::from_edges(7, [(0, 1), (1, 2), (3, 4)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 4); // {0,1,2}, {3,4}, {5}, {6}
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[6]);
        let (_, one) = connected_components(&BitGraph::complete(5));
        assert_eq!(one, 1);
        let (_, zero) = connected_components(&BitGraph::new(0));
        assert_eq!(zero, 0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = BitGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[0], 1); // vertex 5
        assert_eq!(h[1], 2); // 0 and 4
        assert_eq!(h[2], 3);
    }
}
