//! Preprocessing reductions for clique search.
//!
//! The paper's k-clique enumerator (§2.2) notes that "given k, it is more
//! efficient to eliminate all vertices of degree less than k−1 during
//! preprocessing (such vertices cannot be members of any k-clique by
//! definition)". Iterating that rule to a fixed point is exactly the
//! (k−1)-core. Degeneracy ordering is provided for the maximum-clique
//! upper bound and branch ordering.

use crate::BitGraph;
use gsb_bitset::BitSet;

/// Vertices surviving iterated removal of degree `< min_degree` vertices
/// (the `min_degree`-core), as a bitmap over the original vertices.
pub fn core_vertices(g: &BitGraph, min_degree: usize) -> BitSet {
    let n = g.n();
    let mut alive = BitSet::full(n);
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&v| degree[v] < min_degree).collect();
    for &v in &queue {
        alive.remove(v);
    }
    while let Some(v) = queue.pop() {
        for u in g.neighbors(v).iter_ones() {
            if alive.contains(u) {
                degree[u] -= 1;
                if degree[u] < min_degree {
                    alive.remove(u);
                    queue.push(u);
                }
            }
        }
    }
    alive
}

/// Remove all vertices that cannot belong to a k-clique (degree < k−1,
/// iterated). Returns the reduced graph and the original vertex ids.
pub fn prune_for_k_clique(g: &BitGraph, k: usize) -> (BitGraph, Vec<usize>) {
    let keep = core_vertices(g, k.saturating_sub(1));
    g.induced(&keep)
}

/// Degeneracy ordering: repeatedly remove a minimum-degree vertex.
/// Returns `(order, degeneracy)` where `order[i]` is the i-th removed
/// vertex and the degeneracy `d` satisfies: every subgraph has a vertex
/// of degree ≤ `d`. Any clique has at most `d + 1` vertices, giving a
/// cheap upper bound for maximum clique.
pub fn degeneracy_order(g: &BitGraph) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    // bucket queue over degrees
    let maxd = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); maxd + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // find the lowest non-empty bucket holding a live vertex
        while cursor > 0 && !buckets[cursor - 1].is_empty() {
            cursor -= 1; // degrees may have decreased below the cursor
        }
        let v = loop {
            while cursor <= maxd && buckets[cursor].is_empty() {
                cursor += 1;
            }
            let v = buckets[cursor].pop().expect("bucket nonempty");
            if !removed[v] && degree[v] == cursor {
                break v;
            }
            // stale entry: skip
        };
        removed[v] = true;
        degeneracy = degeneracy.max(degree[v]);
        order.push(v);
        for u in g.neighbors(v).iter_ones() {
            if !removed[u] {
                degree[u] -= 1;
                buckets[degree[u]].push(u);
            }
        }
    }
    (order, degeneracy)
}

/// Greedy proper coloring in the given vertex order; the number of colors
/// used upper-bounds the clique number. Returns `(colors, n_colors)`.
pub fn greedy_coloring(g: &BitGraph, order: &[usize]) -> (Vec<usize>, usize) {
    let n = g.n();
    assert_eq!(order.len(), n, "order must cover all vertices");
    let mut color = vec![usize::MAX; n];
    let mut n_colors = 0usize;
    let mut used = Vec::new();
    for &v in order {
        used.clear();
        used.resize(n_colors + 1, false);
        for u in g.neighbors(v).iter_ones() {
            if color[u] != usize::MAX && color[u] <= n_colors {
                used[color[u]] = true;
            }
        }
        let c = (0..).find(|&c| c >= used.len() || !used[c]).unwrap();
        color[v] = c;
        n_colors = n_colors.max(c + 1);
    }
    (color, n_colors)
}

/// Clique-number upper bound: `min(degeneracy + 1, greedy colors)` using
/// the reverse degeneracy order for coloring (a strong practical bound).
pub fn clique_upper_bound(g: &BitGraph) -> usize {
    if g.n() == 0 {
        return 0;
    }
    let (mut order, degeneracy) = degeneracy_order(g);
    order.reverse();
    let (_, colors) = greedy_coloring(g, &order);
    colors.min(degeneracy + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{planted, Module};

    #[test]
    fn core_removes_pendants() {
        // star K1,3 plus a triangle hanging off vertex 0
        let g = BitGraph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (4, 5), (0, 5)]);
        let core2 = core_vertices(&g, 2);
        assert_eq!(core2.to_vec(), vec![0, 4, 5]);
        let core3 = core_vertices(&g, 3);
        assert!(core3.none());
    }

    #[test]
    fn prune_for_k_clique_keeps_cliques() {
        let mut g = BitGraph::complete(5);
        // add pendant chain
        let mut h = BitGraph::new(8);
        for (u, v) in g.edges() {
            h.add_edge(u, v);
        }
        h.add_edge(4, 5);
        h.add_edge(5, 6);
        h.add_edge(6, 7);
        g = h;
        let (reduced, ids) = prune_for_k_clique(&g, 5);
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(reduced.m(), 10);
    }

    #[test]
    fn degeneracy_of_known_graphs() {
        let (_, d) = degeneracy_order(&BitGraph::complete(6));
        assert_eq!(d, 5);
        let path = BitGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (_, d) = degeneracy_order(&path);
        assert_eq!(d, 1);
        let cycle = BitGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (_, d) = degeneracy_order(&cycle);
        assert_eq!(d, 2);
        let (_, d) = degeneracy_order(&BitGraph::new(4));
        assert_eq!(d, 0);
    }

    #[test]
    fn coloring_is_proper() {
        let g = planted(60, 0.1, &[Module::clique(8)], 9);
        let order: Vec<usize> = (0..g.n()).collect();
        let (colors, k) = greedy_coloring(&g, &order);
        for (u, v) in g.edges() {
            assert_ne!(colors[u], colors[v], "edge ({u},{v}) monochromatic");
        }
        assert!(k >= 8, "coloring must use >= clique colors");
    }

    #[test]
    fn upper_bound_dominates_clique() {
        let g = planted(50, 0.05, &[Module::clique(7)], 4);
        assert!(clique_upper_bound(&g) >= 7);
        assert_eq!(clique_upper_bound(&BitGraph::complete(9)), 9);
        assert_eq!(clique_upper_bound(&BitGraph::new(0)), 0);
        assert_eq!(clique_upper_bound(&BitGraph::new(3)), 1);
    }
}
