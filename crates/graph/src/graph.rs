//! The [`BitGraph`] type: an undirected simple graph whose adjacency is
//! one bit string per vertex.

use gsb_bitset::BitSet;
use std::fmt;

/// Undirected simple graph over vertices `0..n` with bitmap adjacency.
///
/// ```
/// use gsb_graph::BitGraph;
/// let g = BitGraph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
/// assert_eq!(g.degree(2), 3);
/// assert!(g.is_maximal_clique(&[0, 1, 2]));
/// assert_eq!(g.common_neighbors(&[0, 1]).to_vec(), vec![2]);
/// ```
///
/// Invariants (checked in debug builds, preserved by every method):
/// adjacency is symmetric and irreflexive (no self-loops).
#[derive(Clone, PartialEq, Eq)]
pub struct BitGraph {
    adj: Vec<BitSet>,
    m: usize,
}

impl BitGraph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        BitGraph {
            adj: (0..n).map(|_| BitSet::new(n)).collect(),
            m: 0,
        }
    }

    /// Build from an edge list; duplicate edges and self-loops are
    /// ignored. Panics on out-of-range endpoints.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Self::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// The same graph re-embedded on `n ≥ self.n()` vertices: existing
    /// edges are preserved, the new vertices start isolated. Dynamic
    /// edge additions may name vertices the indexed graph has never
    /// seen; the adjacency bitmaps are fixed-width, so growth is a
    /// rebuild rather than an in-place resize.
    pub fn grown(&self, n: usize) -> Self {
        assert!(n >= self.n(), "grown() cannot shrink a graph");
        let mut adj: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for v in 0..self.n() {
            for w in self.adj[v].iter_ones() {
                adj[v].insert(w);
            }
        }
        BitGraph { adj, m: self.m }
    }

    /// A complete graph on `n` vertices.
    pub fn complete(n: usize) -> Self {
        let mut g = Self::new(n);
        for u in 0..n {
            for v in u + 1..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Edge density: `m / (n choose 2)`; zero for graphs with fewer than
    /// two vertices.
    pub fn density(&self) -> f64 {
        let n = self.n();
        if n < 2 {
            return 0.0;
        }
        self.m as f64 / (n as f64 * (n as f64 - 1.0) / 2.0)
    }

    /// Insert edge `{u, v}`. Returns whether it was new. Self-loops are
    /// ignored (returns false).
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n() && v < self.n(), "vertex out of range");
        if u == v {
            return false;
        }
        let new = self.adj[u].insert(v);
        self.adj[v].insert(u);
        if new {
            self.m += 1;
        }
        new
    }

    /// Remove edge `{u, v}`. Returns whether it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n() && v < self.n(), "vertex out of range");
        if u == v {
            return false;
        }
        let had = self.adj[u].remove(v);
        self.adj[v].remove(u);
        if had {
            self.m -= 1;
        }
        had
    }

    /// Is `{u, v}` an edge?
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(v)
    }

    /// The neighborhood of `v` as a bit string (the paper's `Neighbors(G, v)`).
    #[inline]
    pub fn neighbors(&self, v: usize) -> &BitSet {
        &self.adj[v]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].count_ones()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> std::ops::Range<usize> {
        0..self.n()
    }

    /// Iterator over edges `(u, v)` with `u < v`, lexicographic.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.vertices().flat_map(move |u| {
            self.adj[u]
                .iter_ones()
                .skip_while(move |&v| v <= u)
                .map(move |v| (u, v))
        })
    }

    /// Are all given vertices pairwise adjacent? (Clique test.)
    pub fn is_clique(&self, vs: &[usize]) -> bool {
        vs.iter()
            .enumerate()
            .all(|(i, &u)| vs[i + 1..].iter().all(|&v| self.has_edge(u, v)))
    }

    /// Common neighbors of a vertex set: `⋀ N(v)`, minus the set itself.
    /// For the empty set this is every vertex. This is the paper's
    /// "common neighbors of a clique" bitmap.
    pub fn common_neighbors(&self, vs: &[usize]) -> BitSet {
        let mut cn = BitSet::full(self.n());
        for &v in vs {
            cn.and_assign(&self.adj[v]);
        }
        for &v in vs {
            cn.remove(v);
        }
        cn
    }

    /// Is the vertex set a *maximal* clique? (Pairwise adjacent and no
    /// common neighbor — one AND-chain plus an any-bit test.)
    pub fn is_maximal_clique(&self, vs: &[usize]) -> bool {
        self.is_clique(vs) && self.common_neighbors(vs).none()
    }

    /// The complement graph (no self-loops).
    pub fn complement(&self) -> BitGraph {
        let n = self.n();
        let mut adj: Vec<BitSet> = Vec::with_capacity(n);
        let mut m = 0;
        for v in 0..n {
            let mut row = self.adj[v].clone();
            row.not_assign();
            row.remove(v);
            m += row.count_ones();
            adj.push(row);
        }
        BitGraph { adj, m: m / 2 }
    }

    /// Induced subgraph on `keep` (given as a bitmap over this graph's
    /// vertices). Returns the subgraph and the map from new vertex ids to
    /// original ids (sorted ascending, so relative order is preserved).
    pub fn induced(&self, keep: &BitSet) -> (BitGraph, Vec<usize>) {
        assert_eq!(keep.len(), self.n(), "universe mismatch");
        let old_ids: Vec<usize> = keep.iter_ones().collect();
        let mut new_id = vec![usize::MAX; self.n()];
        for (ni, &oi) in old_ids.iter().enumerate() {
            new_id[oi] = ni;
        }
        let k = old_ids.len();
        let mut g = BitGraph::new(k);
        for (ni, &oi) in old_ids.iter().enumerate() {
            for oj in self.adj[oi].and(keep).iter_ones() {
                let nj = new_id[oj];
                if nj > ni {
                    g.add_edge(ni, nj);
                }
            }
        }
        (g, old_ids)
    }

    /// Relabel vertices by `perm`, where `perm[new] = old`. Panics unless
    /// `perm` is a permutation of `0..n`.
    pub fn relabeled(&self, perm: &[usize]) -> BitGraph {
        let n = self.n();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < n && inv[old] == usize::MAX, "not a permutation");
            inv[old] = new;
        }
        let mut g = BitGraph::new(n);
        for (u, v) in self.edges() {
            g.add_edge(inv[u], inv[v]);
        }
        g
    }

    /// Heap bytes of the adjacency bitmaps (for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.adj.iter().map(BitSet::heap_bytes).sum::<usize>()
            + self.adj.capacity() * std::mem::size_of::<BitSet>()
    }

    /// Debug-only structural validation: symmetry, irreflexivity, edge
    /// count. Cheap enough for tests on any graph used there.
    pub fn validate(&self) {
        let mut m = 0;
        for u in self.vertices() {
            assert!(!self.adj[u].contains(u), "self-loop at {u}");
            for v in self.adj[u].iter_ones() {
                assert!(self.adj[v].contains(u), "asymmetric edge ({u},{v})");
                if u < v {
                    m += 1;
                }
            }
        }
        assert_eq!(m, self.m, "edge count drift");
    }
}

impl fmt::Debug for BitGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitGraph(n={}, m={})", self.n(), self.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> BitGraph {
        BitGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn add_remove_edges() {
        let mut g = BitGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0)); // duplicate, reversed
        assert!(!g.add_edge(1, 1)); // self-loop ignored
        assert_eq!(g.m(), 1);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.m(), 0);
        g.validate();
    }

    #[test]
    fn degrees_and_density() {
        let g = path4();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert!((g.density() - 0.5).abs() < 1e-12);
        assert_eq!(BitGraph::new(1).density(), 0.0);
    }

    #[test]
    fn edges_lexicographic() {
        let g = path4();
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn complete_graph() {
        let g = BitGraph::complete(5);
        assert_eq!(g.m(), 10);
        assert!(g.is_clique(&[0, 1, 2, 3, 4]));
        assert!(g.is_maximal_clique(&[0, 1, 2, 3, 4]));
        assert!(!g.is_maximal_clique(&[0, 1]));
        g.validate();
    }

    #[test]
    fn common_neighbors_matches_paper_fig2() {
        // K4 minus nothing: CN(a,b) = {c,d}; CN(a,b,c) = {d}; CN(K4) = {}.
        let g = BitGraph::complete(4);
        assert_eq!(g.common_neighbors(&[0, 1]).to_vec(), vec![2, 3]);
        assert_eq!(g.common_neighbors(&[0, 1, 2]).to_vec(), vec![3]);
        assert!(g.common_neighbors(&[0, 1, 2, 3]).none());
        assert_eq!(g.common_neighbors(&[]).count_ones(), 4);
    }

    #[test]
    fn complement_involutive() {
        let g = path4();
        let c = g.complement();
        c.validate();
        assert_eq!(c.m(), 6 - 3);
        assert!(c.has_edge(0, 2) && c.has_edge(0, 3) && c.has_edge(1, 3));
        assert_eq!(c.complement(), g);
    }

    #[test]
    fn induced_subgraph_remaps() {
        let g = BitGraph::from_edges(5, [(0, 1), (1, 3), (3, 4), (0, 4)]);
        let keep = BitSet::from_ones(5, [0, 3, 4]);
        let (h, ids) = g.induced(&keep);
        assert_eq!(ids, vec![0, 3, 4]);
        assert_eq!(h.n(), 3);
        // surviving edges: (3,4) -> (1,2), (0,4) -> (0,2)
        assert_eq!(h.m(), 2);
        assert!(h.has_edge(1, 2) && h.has_edge(0, 2) && !h.has_edge(0, 1));
        h.validate();
    }

    #[test]
    fn relabel_roundtrip() {
        let g = path4();
        let perm = vec![3, 2, 1, 0]; // reverse
        let h = g.relabeled(&perm);
        h.validate();
        assert_eq!(h.m(), g.m());
        assert!(h.has_edge(3, 2) && h.has_edge(2, 1) && h.has_edge(1, 0));
        assert_eq!(h.relabeled(&perm), g.relabeled(&[0, 1, 2, 3]));
    }

    #[test]
    fn is_clique_checks_all_pairs() {
        let g = path4();
        assert!(g.is_clique(&[0, 1]));
        assert!(!g.is_clique(&[0, 1, 2]));
        assert!(g.is_clique(&[2]));
        assert!(g.is_clique(&[]));
    }
}
