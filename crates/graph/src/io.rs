//! Graph serialization: whitespace edge lists and DIMACS clique format.
//!
//! The microarray pipeline's thresholded correlation graphs are exchanged
//! as edge lists; the clique community's benchmark instances use DIMACS
//! (`p edge n m` + `e u v`, 1-indexed).

use crate::BitGraph;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from parsing graph files.
#[derive(Debug)]
pub enum ParseError {
    /// I/O failure while reading.
    Io(io::Error),
    /// Malformed content, with line number and message.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn malformed(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        line,
        message: message.into(),
    }
}

/// Upper bound on the vertex count any parser will allocate for. A
/// dense `BitGraph` takes n²/8 bytes, so a garbage or hostile header
/// (`p edge 4000000000 1`) would otherwise turn into a half-exabyte
/// allocation before the first edge is read. Genome-scale inputs in the
/// paper top out around 10⁵ vertices; one million leaves 10× headroom
/// at a worst-case 125 GB — big, but a deliberate operator choice
/// rather than an integer-driven OOM.
pub const MAX_VERTICES: usize = 1_000_000;

fn check_vertex_bound(line: usize, n: usize) -> Result<(), ParseError> {
    if n > MAX_VERTICES {
        return Err(malformed(
            line,
            format!("vertex count {n} exceeds the supported maximum {MAX_VERTICES}"),
        ));
    }
    Ok(())
}

/// Read a 0-indexed edge list: one `u v` pair per line; `#` starts a
/// comment; vertex count is `max id + 1` unless a larger `n` is given
/// explicitly or via a `# n=<count>` header comment (which
/// [`write_edge_list`] emits, so isolated trailing vertices round-trip).
pub fn read_edge_list<R: Read>(reader: R, n: Option<usize>) -> Result<BitGraph, ParseError> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_id = 0usize;
    let mut n = n;
    for (li, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if n.is_none() {
            if let Some(comment) = line.split_once('#').map(|(_, c)| c) {
                if let Some(rest) = comment.trim().strip_prefix("n=") {
                    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                    if let Ok(hint) = digits.parse::<usize>() {
                        n = Some(hint);
                    }
                }
            }
        }
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut it = body.split_whitespace();
        let u: usize = it
            .next()
            .ok_or_else(|| malformed(li + 1, "missing source vertex"))?
            .parse()
            .map_err(|e| malformed(li + 1, format!("bad vertex id: {e}")))?;
        let v: usize = it
            .next()
            .ok_or_else(|| malformed(li + 1, "missing target vertex"))?
            .parse()
            .map_err(|e| malformed(li + 1, format!("bad vertex id: {e}")))?;
        if it.next().is_some() {
            return Err(malformed(li + 1, "trailing tokens after edge"));
        }
        check_vertex_bound(li + 1, u.max(v).saturating_add(1))?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = match n {
        Some(n) => {
            check_vertex_bound(0, n)?;
            if !edges.is_empty() && max_id >= n {
                return Err(malformed(0, format!("vertex {max_id} >= declared n {n}")));
            }
            n
        }
        None => {
            if edges.is_empty() {
                0
            } else {
                max_id + 1
            }
        }
    };
    Ok(BitGraph::from_edges(n, edges))
}

/// Write a 0-indexed edge list.
pub fn write_edge_list<W: Write>(g: &BitGraph, mut writer: W) -> io::Result<()> {
    let mut buf = String::new();
    writeln!(buf, "# n={} m={}", g.n(), g.m()).unwrap();
    for (u, v) in g.edges() {
        writeln!(buf, "{u} {v}").unwrap();
    }
    writer.write_all(buf.as_bytes())
}

/// Read DIMACS clique format (`c` comments, `p edge N M`, `e U V`
/// 1-indexed).
pub fn read_dimacs<R: Read>(reader: R) -> Result<BitGraph, ParseError> {
    let mut g: Option<BitGraph> = None;
    for (li, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let body = line.trim();
        if body.is_empty() || body.starts_with('c') {
            continue;
        }
        if let Some(rest) = body.strip_prefix("p ") {
            if g.is_some() {
                return Err(malformed(li + 1, "duplicate problem line"));
            }
            let mut it = rest.split_whitespace();
            let kind = it.next().unwrap_or("");
            if kind != "edge" && kind != "col" {
                return Err(malformed(
                    li + 1,
                    format!("unsupported problem kind {kind:?}"),
                ));
            }
            let n: usize = it
                .next()
                .ok_or_else(|| malformed(li + 1, "missing n"))?
                .parse()
                .map_err(|e| malformed(li + 1, format!("bad n: {e}")))?;
            check_vertex_bound(li + 1, n)?;
            g = Some(BitGraph::new(n));
        } else if let Some(rest) = body.strip_prefix("e ") {
            let g = g
                .as_mut()
                .ok_or_else(|| malformed(li + 1, "edge before problem line"))?;
            let mut it = rest.split_whitespace();
            let u: usize = it
                .next()
                .ok_or_else(|| malformed(li + 1, "missing u"))?
                .parse()
                .map_err(|e| malformed(li + 1, format!("bad u: {e}")))?;
            let v: usize = it
                .next()
                .ok_or_else(|| malformed(li + 1, "missing v"))?
                .parse()
                .map_err(|e| malformed(li + 1, format!("bad v: {e}")))?;
            if u == 0 || v == 0 || u > g.n() || v > g.n() {
                return Err(malformed(
                    li + 1,
                    "vertex out of range (DIMACS is 1-indexed)",
                ));
            }
            g.add_edge(u - 1, v - 1);
        } else {
            return Err(malformed(li + 1, format!("unrecognized line {body:?}")));
        }
    }
    g.ok_or_else(|| malformed(0, "no problem line"))
}

/// Write DIMACS clique format.
pub fn write_dimacs<W: Write>(g: &BitGraph, mut writer: W) -> io::Result<()> {
    let mut buf = String::new();
    writeln!(buf, "p edge {} {}", g.n(), g.m()).unwrap();
    for (u, v) in g.edges() {
        writeln!(buf, "e {} {}", u + 1, v + 1).unwrap();
    }
    writer.write_all(buf.as_bytes())
}

/// Load a graph from a path, choosing the format by extension
/// (`.clq`/`.dimacs` → DIMACS, anything else → edge list).
pub fn load(path: &Path) -> Result<BitGraph, ParseError> {
    let file = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("clq") | Some("dimacs") => read_dimacs(file),
        _ => read_edge_list(file, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip() {
        let g = BitGraph::from_edges(5, [(0, 1), (1, 4), (2, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..], Some(5)).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn edge_list_infers_n() {
        let text = b"0 1\n# comment line\n3 2  # trailing comment\n";
        let g = read_edge_list(&text[..], None).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list(&b"0 x\n"[..], None).is_err());
        assert!(read_edge_list(&b"0\n"[..], None).is_err());
        assert!(read_edge_list(&b"0 1 2\n"[..], None).is_err());
        assert!(read_edge_list(&b"0 9\n"[..], Some(5)).is_err());
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = BitGraph::from_edges(4, [(0, 1), (2, 3), (1, 2)]);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let h = read_dimacs(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn dimacs_validation() {
        assert!(read_dimacs(&b"e 1 2\n"[..]).is_err()); // edge before p
        assert!(read_dimacs(&b"p edge 2 1\ne 0 1\n"[..]).is_err()); // 0-index
        assert!(read_dimacs(&b"p edge 2 1\ne 1 3\n"[..]).is_err()); // range
        assert!(read_dimacs(&b"p foo 2 1\n"[..]).is_err()); // kind
        let g = read_dimacs(&b"c hi\np edge 3 1\ne 1 3\n"[..]).unwrap();
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn empty_edge_list() {
        let g = read_edge_list(&b"# nothing\n"[..], None).unwrap();
        assert_eq!(g.n(), 0);
        let g = read_edge_list(&b""[..], Some(7)).unwrap();
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 0);
    }
}
