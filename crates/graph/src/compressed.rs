//! Compressed-adjacency graphs: WAH rows.
//!
//! The paper's conclusion (§4): "the sparcity of the bitmap memory
//! index can potentially provide high compression rate and allow for
//! bitwise operations to be performed on the compressed data. The work
//! in this direction is underway." A [`WahGraph`] stores each vertex's
//! neighborhood as a WAH-compressed bit string; at the paper's 0.008 %
//! edge density the adjacency shrinks by two orders of magnitude while
//! `AND`/any-bit — the clique kernels' only operations — run directly
//! on the compressed words.

use crate::BitGraph;
use gsb_bitset::WahBitSet;

/// An immutable graph with WAH-compressed adjacency rows.
#[derive(Clone, Debug)]
pub struct WahGraph {
    rows: Vec<WahBitSet>,
    m: usize,
}

impl WahGraph {
    /// Compress a bitmap graph.
    pub fn from_bitgraph(g: &BitGraph) -> Self {
        WahGraph {
            rows: (0..g.n())
                .map(|v| WahBitSet::from_bitset(g.neighbors(v)))
                .collect(),
            m: g.m(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.rows.len()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Compressed neighborhood of `v`.
    pub fn neighbors(&self, v: usize) -> &WahBitSet {
        &self.rows[v]
    }

    /// Edge test, decoded from the compressed row.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.rows[u].intersects(&WahBitSet::singleton(self.n(), v))
    }

    /// Total compressed heap bytes of the adjacency.
    pub fn heap_bytes(&self) -> usize {
        self.rows.iter().map(WahBitSet::heap_bytes).sum::<usize>()
            + self.rows.capacity() * std::mem::size_of::<WahBitSet>()
    }

    /// Compression ratio vs. the plain bitmap adjacency as a
    /// [`BitGraph`] would hold it — word storage plus per-row struct
    /// overhead on both sides (>1 = smaller).
    pub fn compression_ratio(&self) -> f64 {
        let n = self.n();
        if n == 0 {
            return 1.0;
        }
        let plain =
            n * gsb_bitset::words_for(n) * 8 + n * std::mem::size_of::<gsb_bitset::BitSet>();
        plain as f64 / self.heap_bytes().max(1) as f64
    }

    /// Decompress back to a bitmap graph.
    pub fn to_bitgraph(&self) -> BitGraph {
        let n = self.n();
        let mut g = BitGraph::new(n);
        for u in 0..n {
            for v in self.rows[u].iter_ones() {
                if v > u {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{gnp, planted, Module};

    #[test]
    fn roundtrip() {
        let g = gnp(80, 0.1, 3);
        let w = WahGraph::from_bitgraph(&g);
        assert_eq!(w.n(), g.n());
        assert_eq!(w.m(), g.m());
        assert_eq!(w.to_bitgraph(), g);
    }

    #[test]
    fn has_edge_matches() {
        let g = planted(50, 0.05, &[Module::clique(6)], 7);
        let w = WahGraph::from_bitgraph(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                if u != v {
                    assert_eq!(w.has_edge(u, v), g.has_edge(u, v), "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn sparse_graphs_compress_hard() {
        // the paper's sparse regime: 2000 vertices, ~0.1% density
        let g = gnp(2000, 0.001, 9);
        let w = WahGraph::from_bitgraph(&g);
        assert!(
            w.compression_ratio() > 4.0,
            "ratio {}",
            w.compression_ratio()
        );
    }

    #[test]
    fn empty_graph() {
        let w = WahGraph::from_bitgraph(&BitGraph::new(0));
        assert_eq!(w.n(), 0);
        assert_eq!(w.compression_ratio(), 1.0);
    }
}
