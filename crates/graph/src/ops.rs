//! Boolean graph operations over stacks of replicate networks.
//!
//! The paper (§1) describes cleaning noisy protein-interaction data by
//! representing each experimental replicate as an undirected graph and
//! issuing "queries consisting of Boolean graph operations (e.g., graph
//! intersection and at-least-k-of-n over multiple graphs)". All
//! operations here run row-parallel on the bitmap adjacency.

use crate::BitGraph;
use gsb_bitset::SliceCounter;

/// Edge-wise intersection of two graphs on the same vertex set.
pub fn intersection(a: &BitGraph, b: &BitGraph) -> BitGraph {
    zip_rows(a, b, |ra, rb| ra.and(rb))
}

/// Edge-wise union.
pub fn union(a: &BitGraph, b: &BitGraph) -> BitGraph {
    zip_rows(a, b, |ra, rb| ra.or(rb))
}

/// Edges of `a` not in `b`.
pub fn difference(a: &BitGraph, b: &BitGraph) -> BitGraph {
    zip_rows(a, b, |ra, rb| ra.and_not(rb))
}

fn zip_rows(
    a: &BitGraph,
    b: &BitGraph,
    f: impl Fn(&gsb_bitset::BitSet, &gsb_bitset::BitSet) -> gsb_bitset::BitSet,
) -> BitGraph {
    assert_eq!(a.n(), b.n(), "vertex-set mismatch");
    let n = a.n();
    let mut out = BitGraph::new(n);
    for u in 0..n {
        let row = f(a.neighbors(u), b.neighbors(u));
        for v in row.iter_ones() {
            if v > u {
                out.add_edge(u, v);
            }
        }
    }
    out
}

/// A stack of replicate graphs over one vertex set, supporting voting
/// queries.
///
/// ```
/// use gsb_graph::{BitGraph, GraphStack};
/// let stack = GraphStack::from_graphs(vec![
///     BitGraph::from_edges(3, [(0, 1), (1, 2)]),
///     BitGraph::from_edges(3, [(0, 1)]),
/// ]);
/// assert!(stack.at_least(2).has_edge(0, 1));   // both replicates agree
/// assert!(!stack.at_least(2).has_edge(1, 2));  // only one saw it
/// ```
pub struct GraphStack {
    n: usize,
    graphs: Vec<BitGraph>,
}

impl GraphStack {
    /// An empty stack over `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphStack {
            n,
            graphs: Vec::new(),
        }
    }

    /// Build from replicate graphs; all must share the vertex count.
    pub fn from_graphs(graphs: Vec<BitGraph>) -> Self {
        let n = graphs.first().map_or(0, BitGraph::n);
        assert!(
            graphs.iter().all(|g| g.n() == n),
            "replicates disagree on vertex count"
        );
        GraphStack { n, graphs }
    }

    /// Add a replicate.
    pub fn push(&mut self, g: BitGraph) {
        assert_eq!(g.n(), self.n, "vertex-set mismatch");
        self.graphs.push(g);
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of replicates.
    pub fn depth(&self) -> usize {
        self.graphs.len()
    }

    /// Access the replicates.
    pub fn graphs(&self) -> &[BitGraph] {
        &self.graphs
    }

    /// The graph whose edges appear in **at least `k`** replicates.
    ///
    /// With `k == depth()` this is the full intersection; `k == 1` the
    /// union; intermediate `k` implements the paper's at-least-k-of-n
    /// denoising query. Runs one bit-sliced counter per vertex row.
    pub fn at_least(&self, k: usize) -> BitGraph {
        let mut out = BitGraph::new(self.n);
        if k == 0 {
            // every non-edge pair trivially qualifies: complete graph
            return BitGraph::complete(self.n);
        }
        for u in 0..self.n {
            let mut counter = SliceCounter::new(self.n);
            for g in &self.graphs {
                counter.add(g.neighbors(u));
            }
            for v in counter.at_least(k).iter_ones() {
                if v > u {
                    out.add_edge(u, v);
                }
            }
        }
        out
    }

    /// Per-edge support: how many replicates contain `{u, v}`.
    pub fn support(&self, u: usize, v: usize) -> usize {
        self.graphs.iter().filter(|g| g.has_edge(u, v)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(edges: &[(usize, usize)]) -> BitGraph {
        BitGraph::from_edges(5, edges.iter().copied())
    }

    #[test]
    fn intersection_union_difference() {
        let a = g(&[(0, 1), (1, 2), (3, 4)]);
        let b = g(&[(1, 2), (3, 4), (0, 4)]);
        assert_eq!(
            intersection(&a, &b).edges().collect::<Vec<_>>(),
            vec![(1, 2), (3, 4)]
        );
        assert_eq!(
            union(&a, &b).edges().collect::<Vec<_>>(),
            vec![(0, 1), (0, 4), (1, 2), (3, 4)]
        );
        assert_eq!(difference(&a, &b).edges().collect::<Vec<_>>(), vec![(0, 1)]);
    }

    #[test]
    fn at_least_matches_support() {
        let stack = GraphStack::from_graphs(vec![
            g(&[(0, 1), (1, 2), (3, 4)]),
            g(&[(0, 1), (3, 4)]),
            g(&[(0, 1), (1, 2)]),
        ]);
        let at2 = stack.at_least(2);
        assert_eq!(
            at2.edges().collect::<Vec<_>>(),
            vec![(0, 1), (1, 2), (3, 4)]
        );
        let at3 = stack.at_least(3);
        assert_eq!(at3.edges().collect::<Vec<_>>(), vec![(0, 1)]);
        assert!(stack.at_least(4).m() == 0);
        assert_eq!(stack.support(0, 1), 3);
        assert_eq!(stack.support(1, 2), 2);
        assert_eq!(stack.support(0, 2), 0);
    }

    #[test]
    fn at_least_1_is_union_and_depth_is_intersection() {
        let a = g(&[(0, 1), (1, 2)]);
        let b = g(&[(1, 2), (2, 3)]);
        let stack = GraphStack::from_graphs(vec![a.clone(), b.clone()]);
        assert_eq!(stack.at_least(1), union(&a, &b));
        assert_eq!(stack.at_least(2), intersection(&a, &b));
    }

    #[test]
    fn at_least_0_is_complete() {
        let stack = GraphStack::from_graphs(vec![g(&[])]);
        assert_eq!(stack.at_least(0).m(), 10);
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_rejected() {
        let mut stack = GraphStack::new(5);
        stack.push(BitGraph::new(4));
    }
}
