//! # gsb-graph — bitmap-adjacency graphs for genome-scale network analysis
//!
//! Undirected simple graphs stored as one length-`n` bit string per
//! vertex (the "globally addressable bitmap memory index" of the SC'05
//! paper). The representation makes the clique kernels' inner operations
//! — `CN ∧ N(v)` and the any-bit maximality test — word-parallel, and
//! makes Boolean *graph* algebra (intersection, union, at-least-k-of-n
//! across replicate networks) word-parallel too.
//!
//! Modules:
//!
//! * [`graph`] — the [`BitGraph`] type, construction and queries;
//! * [`generators`] — G(n,p), planted-clique, and correlation-like
//!   generators that mimic the paper's microarray graphs;
//! * [`io`] — edge-list and DIMACS formats;
//! * [`edits`] — edge-edit scripts consumed by `gsb update`;
//! * [`ops`] — Boolean graph operations over replicate graph stacks;
//! * [`reduce`] — degree pruning / k-core reduction and degeneracy order;
//! * [`stats`] — densities, degree profiles, clustering estimates;
//! * [`compressed`] — WAH-compressed adjacency (the paper's §4
//!   compression direction, built).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compressed;
pub mod edits;
pub mod generators;
pub mod graph;
pub mod io;
pub mod ops;
pub mod reduce;
pub mod stats;

pub use graph::BitGraph;
pub use ops::GraphStack;
