//! Edge-edit scripts for dynamic graph maintenance.
//!
//! `gsb update` consumes plain edit files — the same whitespace `u v`
//! line format as the edge lists in [`crate::io`], one edge per line,
//! `#` comments — naming edges to add to or remove from an indexed
//! graph. Parsing canonicalizes each pair to `(min, max)` and rejects
//! self-loops; duplicates are preserved in file order because the
//! update engine applies edits sequentially and reports skips (an edge
//! already present / already absent) per occurrence.

use crate::io::{ParseError, MAX_VERTICES};
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

fn malformed(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        line,
        message: message.into(),
    }
}

/// Read an edit list: one `u v` edge per line, 0-indexed, `#` starts a
/// comment. Pairs come back canonicalized as `(min, max)`.
pub fn read_edit_list<R: Read>(reader: R) -> Result<Vec<(usize, usize)>, ParseError> {
    let mut edits = Vec::new();
    for (li, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut it = body.split_whitespace();
        let u: usize = it
            .next()
            .ok_or_else(|| malformed(li + 1, "missing source vertex"))?
            .parse()
            .map_err(|e| malformed(li + 1, format!("bad vertex id: {e}")))?;
        let v: usize = it
            .next()
            .ok_or_else(|| malformed(li + 1, "missing target vertex"))?
            .parse()
            .map_err(|e| malformed(li + 1, format!("bad vertex id: {e}")))?;
        if it.next().is_some() {
            return Err(malformed(li + 1, "trailing tokens after edge"));
        }
        if u == v {
            return Err(malformed(li + 1, format!("self-loop {u}-{v}")));
        }
        if u.max(v) >= MAX_VERTICES {
            return Err(malformed(
                li + 1,
                format!(
                    "vertex {} exceeds the supported maximum {MAX_VERTICES}",
                    u.max(v)
                ),
            ));
        }
        edits.push((u.min(v), u.max(v)));
    }
    Ok(edits)
}

/// Load an edit list from a path.
pub fn load_edits(path: &Path) -> Result<Vec<(usize, usize)>, ParseError> {
    read_edit_list(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_canonicalizes() {
        let text = b"3 1\n# comment\n0 2  # add hub\n\n5 7\n";
        let edits = read_edit_list(&text[..]).unwrap();
        assert_eq!(edits, vec![(1, 3), (0, 2), (5, 7)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_edit_list(&b"1\n"[..]).is_err());
        assert!(read_edit_list(&b"1 x\n"[..]).is_err());
        assert!(read_edit_list(&b"1 2 3\n"[..]).is_err());
        assert!(read_edit_list(&b"4 4\n"[..]).is_err());
        assert!(read_edit_list(&b"0 99999999\n"[..]).is_err());
    }

    #[test]
    fn keeps_duplicates_in_order() {
        let edits = read_edit_list(&b"0 1\n1 0\n"[..]).unwrap();
        assert_eq!(edits, vec![(0, 1), (0, 1)]);
    }
}
