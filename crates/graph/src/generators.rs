//! Random graph generators mimicking the paper's evaluation workloads.
//!
//! The SC'05 evaluation graphs come from thresholded gene-correlation
//! matrices: very sparse overall (0.008 %–0.3 % edge density) but with
//! large, heavily overlapping cliques (max clique sizes 17, 28, and 110
//! on 2,895–12,422 vertices). A plain G(n,p) at those densities has tiny
//! cliques, so [`planted`] and [`correlation_like`] plant overlapping
//! dense modules on a sparse background, reproducing the structure the
//! enumeration algorithms are actually sensitive to.
//!
//! Every generator takes an explicit seed; results are deterministic for
//! a given (parameters, seed) pair.

use crate::BitGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi G(n, p).
pub fn gnp(n: usize, p: f64, seed: u64) -> BitGraph {
    assert!((0.0..=1.0).contains(&p), "p out of [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = BitGraph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Erdős–Rényi G(n, m): exactly `m` distinct edges, uniformly.
pub fn gnm(n: usize, m: usize, seed: u64) -> BitGraph {
    let max = n * (n.saturating_sub(1)) / 2;
    assert!(m <= max, "too many edges: {m} > {max}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = BitGraph::new(n);
    while g.m() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// Barabási–Albert preferential attachment: start from a small clique
/// of `m_edges + 1` vertices, then attach each new vertex to `m_edges`
/// distinct existing vertices chosen proportionally to degree. Produces
/// the heavy-tailed degree profiles of protein-interaction networks.
pub fn barabasi_albert(n: usize, m_edges: usize, seed: u64) -> BitGraph {
    assert!(m_edges >= 1, "need at least one edge per new vertex");
    assert!(n > m_edges, "need more vertices than edges per step");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = BitGraph::new(n);
    let seed_n = m_edges + 1;
    for u in 0..seed_n {
        for v in u + 1..seed_n {
            g.add_edge(u, v);
        }
    }
    // endpoint multiset: each edge contributes both endpoints, so
    // sampling uniformly from it is degree-proportional
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * m_edges * n);
    for (u, v) in g.edges() {
        endpoints.push(u);
        endpoints.push(v);
    }
    for v in seed_n..n {
        let mut targets = Vec::with_capacity(m_edges);
        let mut guard = 0;
        while targets.len() < m_edges && guard < 100 * m_edges + 100 {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
        }
        for &t in &targets {
            g.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

/// Specification of one planted module (a clique, optionally eroded).
#[derive(Clone, Debug)]
pub struct Module {
    /// Number of vertices in the module.
    pub size: usize,
    /// Probability each within-module edge is present (1.0 = exact clique).
    pub density: f64,
}

impl Module {
    /// An exact planted clique of `size` vertices.
    pub fn clique(size: usize) -> Self {
        Module { size, density: 1.0 }
    }
}

/// Sparse background plus planted modules on random (possibly
/// overlapping) vertex subsets.
pub fn planted(n: usize, background_p: f64, modules: &[Module], seed: u64) -> BitGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = gnp(n, background_p, rng.gen());
    let mut ids: Vec<usize> = (0..n).collect();
    for m in modules {
        assert!(m.size <= n, "module larger than graph");
        ids.shuffle(&mut rng);
        let members = &ids[..m.size];
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                if m.density >= 1.0 || rng.gen_bool(m.density) {
                    g.add_edge(members[i], members[j]);
                }
            }
        }
    }
    g
}

/// Parameters for a correlation-graph-like workload, shaped after the
/// paper's three datasets (§3).
#[derive(Clone, Debug)]
pub struct CorrelationProfile {
    /// Vertex count.
    pub n: usize,
    /// Target overall edge density (e.g. `0.002` for 0.2 %).
    pub density: f64,
    /// Size of the largest planted module (≈ expected max clique).
    pub max_module: usize,
    /// Number of planted modules; sizes decay geometrically from
    /// `max_module` down to 3.
    pub modules: usize,
    /// Fraction of each module shared with the previously planted one
    /// (overlapping cliques are what stress maximal-clique enumerators).
    pub overlap: f64,
}

impl CorrelationProfile {
    /// Scaled analog of the 2,895-vertex / 0.2 % / max-clique-28
    /// myogenic-differentiation graph \[41\].
    pub fn myogenic_like(n: usize) -> Self {
        CorrelationProfile {
            n,
            density: 0.002,
            max_module: 28.min(n / 4).max(4),
            modules: 24,
            overlap: 0.4,
        }
    }

    /// Scaled analog of the 12,422-vertex / 0.008 % / max-clique-17
    /// mouse-brain graph \[17\]. (Module count is kept high relative to
    /// the density target: the paper's graph packs most of its 6,151
    /// edges into overlapping near-cliques, which is what makes its
    /// enumeration interesting at ω = 17.)
    pub fn brain_sparse_like(n: usize) -> Self {
        CorrelationProfile {
            n,
            density: 0.00008,
            max_module: 17.min(n / 8).max(4),
            modules: 40,
            overlap: 0.35,
        }
    }

    /// Scaled analog of the 12,422-vertex / 0.3 % / max-clique-110
    /// denser mouse-brain graph \[17\].
    pub fn brain_dense_like(n: usize) -> Self {
        CorrelationProfile {
            n,
            density: 0.003,
            max_module: 110.min(n / 6).max(6),
            modules: 30,
            overlap: 0.5,
        }
    }
}

/// Generate a correlation-like graph: overlapping planted modules chained
/// along a shared-vertex backbone, topped up with background edges until
/// the target density is met.
pub fn correlation_like(profile: &CorrelationProfile, seed: u64) -> BitGraph {
    let CorrelationProfile {
        n,
        density,
        max_module,
        modules,
        overlap,
    } = *profile;
    assert!(n >= 4, "need at least 4 vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = BitGraph::new(n);

    // Plant modules with geometrically decaying sizes, each overlapping
    // the previous one.
    let mut prev: Vec<usize> = Vec::new();
    let mut size = max_module.max(3);
    for mi in 0..modules {
        let mut members: Vec<usize> = Vec::with_capacity(size);
        let n_shared = if prev.is_empty() {
            0
        } else {
            ((size as f64 * overlap) as usize)
                .min(prev.len())
                .min(size - 1)
        };
        let mut prev_shuffled = prev.clone();
        prev_shuffled.shuffle(&mut rng);
        members.extend_from_slice(&prev_shuffled[..n_shared]);
        while members.len() < size {
            let v = rng.gen_range(0..n);
            if !members.contains(&v) {
                members.push(v);
            }
        }
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                g.add_edge(members[i], members[j]);
            }
        }
        prev = members;
        // decay: size_{i+1} = max(3, size * 0.8), with a floor so later
        // modules stay interesting
        if mi % 2 == 1 {
            size = ((size * 4) / 5).max(3);
        }
    }

    // Top up with random background edges to hit the target density.
    let target_m = (density * n as f64 * (n as f64 - 1.0) / 2.0) as usize;
    let mut guard = 0usize;
    while g.m() < target_m && guard < 50 * target_m + 1000 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            g.add_edge(u, v);
        }
        guard += 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_extremes() {
        let g0 = gnp(20, 0.0, 1);
        assert_eq!(g0.m(), 0);
        let g1 = gnp(20, 1.0, 1);
        assert_eq!(g1.m(), 190);
        g1.validate();
    }

    #[test]
    fn gnp_deterministic() {
        let a = gnp(50, 0.2, 42);
        let b = gnp(50, 0.2, 42);
        assert_eq!(a, b);
        let c = gnp(50, 0.2, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_exact_count() {
        let g = gnm(30, 100, 7);
        assert_eq!(g.m(), 100);
        g.validate();
    }

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(200, 3, 5);
        g.validate();
        // n - seed vertices each add m edges, plus the seed clique
        assert_eq!(g.m(), (200 - 4) * 3 + 6);
        // heavy tail: max degree well above the attachment count
        let maxd = (0..g.n()).map(|v| g.degree(v)).max().unwrap();
        assert!(maxd > 10, "max degree {maxd}");
        // deterministic
        assert_eq!(g, barabasi_albert(200, 3, 5));
    }

    #[test]
    #[should_panic]
    fn barabasi_albert_checks_args() {
        barabasi_albert(3, 3, 0);
    }

    #[test]
    fn planted_contains_clique() {
        let g = planted(100, 0.01, &[Module::clique(12)], 3);
        g.validate();
        // Find 12 vertices of degree >= 11 forming a clique: the planted
        // one must exist. Check via max degree heuristic: there are at
        // least C(12,2)=66 module edges.
        assert!(g.m() >= 66);
        let high: Vec<usize> = g.vertices().filter(|&v| g.degree(v) >= 11).collect();
        assert!(high.len() >= 12);
    }

    #[test]
    fn correlation_like_hits_density() {
        let p = CorrelationProfile::myogenic_like(400);
        let g = correlation_like(&p, 11);
        g.validate();
        // density target is a floor (modules may exceed it)
        assert!(g.density() >= 0.0019, "density {}", g.density());
        assert!(g.density() <= 0.05, "density {}", g.density());
    }

    #[test]
    fn correlation_like_deterministic() {
        let p = CorrelationProfile::myogenic_like(200);
        assert_eq!(correlation_like(&p, 5), correlation_like(&p, 5));
    }

    #[test]
    fn profiles_scale_with_n() {
        let p = CorrelationProfile::brain_dense_like(600);
        assert!(p.max_module <= 100);
        let g = correlation_like(&p, 2);
        g.validate();
        assert!(g.m() > 0);
    }
}
