//! Property tests: structural invariants of builders, reductions, and
//! Boolean graph algebra.

use gsb_bitset::BitSet;
use gsb_graph::generators::{gnp, planted, Module};
use gsb_graph::ops::{difference, intersection, union, GraphStack};
use gsb_graph::reduce::{clique_upper_bound, core_vertices, degeneracy_order, greedy_coloring};
use gsb_graph::stats::triangle_count;
use gsb_graph::BitGraph;
use proptest::prelude::*;

const N: usize = 24;

fn edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..N, 0..N), 0..80)
}

fn build(es: &[(usize, usize)]) -> BitGraph {
    BitGraph::from_edges(N, es.iter().copied())
}

proptest! {
    #[test]
    fn from_edges_is_valid(es in edges()) {
        build(&es).validate();
    }

    #[test]
    fn complement_involutive(es in edges()) {
        let g = build(&es);
        let c = g.complement();
        c.validate();
        prop_assert_eq!(c.complement(), g.clone());
        prop_assert_eq!(g.m() + c.m(), N * (N - 1) / 2);
    }

    #[test]
    fn induced_preserves_adjacency(es in edges(), keep in prop::collection::btree_set(0..N, 0..N)) {
        let g = build(&es);
        let keep_bits = BitSet::from_ones(N, keep.iter().copied());
        let (h, ids) = g.induced(&keep_bits);
        h.validate();
        prop_assert_eq!(ids.len(), keep.len());
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                prop_assert_eq!(h.has_edge(i, j), g.has_edge(ids[i], ids[j]));
            }
        }
    }

    #[test]
    fn core_vertices_have_core_degree(es in edges(), k in 0usize..6) {
        let g = build(&es);
        let core = core_vertices(&g, k);
        for v in core.iter_ones() {
            let live_deg = g.neighbors(v).count_and(&core);
            prop_assert!(live_deg >= k, "vertex {v} has in-core degree {live_deg} < {k}");
        }
    }

    #[test]
    fn core_is_maximal(es in edges(), k in 1usize..5) {
        // No vertex outside the k-core can be added back: iterating the
        // removal once more from the full graph reaches the same set.
        let g = build(&es);
        let core = core_vertices(&g, k);
        let again = core_vertices(&g, k);
        prop_assert_eq!(core, again);
    }

    #[test]
    fn degeneracy_order_is_permutation(es in edges()) {
        let g = build(&es);
        let (order, d) = degeneracy_order(&g);
        let mut seen = [false; N];
        for &v in &order {
            prop_assert!(!seen[v]);
            seen[v] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // degeneracy bounds max clique - 1; also <= max degree
        let maxdeg = (0..N).map(|v| g.degree(v)).max().unwrap_or(0);
        prop_assert!(d <= maxdeg);
    }

    #[test]
    fn coloring_proper_and_bounds(es in edges()) {
        let g = build(&es);
        let (mut order, d) = degeneracy_order(&g);
        order.reverse();
        let (colors, k) = greedy_coloring(&g, &order);
        for (u, v) in g.edges() {
            prop_assert_ne!(colors[u], colors[v]);
        }
        // coloring in reverse degeneracy order uses at most d+1 colors
        prop_assert!(k <= d + 1, "colors {k} > degeneracy+1 {}", d + 1);
    }

    #[test]
    fn boolean_ops_match_edge_sets(a in edges(), b in edges()) {
        use std::collections::BTreeSet;
        let ga = build(&a);
        let gb = build(&b);
        let ea: BTreeSet<_> = ga.edges().collect();
        let eb: BTreeSet<_> = gb.edges().collect();
        let inter: BTreeSet<_> = intersection(&ga, &gb).edges().collect();
        let uni: BTreeSet<_> = union(&ga, &gb).edges().collect();
        let diff: BTreeSet<_> = difference(&ga, &gb).edges().collect();
        prop_assert_eq!(inter, ea.intersection(&eb).copied().collect::<BTreeSet<_>>());
        prop_assert_eq!(uni, ea.union(&eb).copied().collect::<BTreeSet<_>>());
        prop_assert_eq!(diff, ea.difference(&eb).copied().collect::<BTreeSet<_>>());
    }

    #[test]
    fn at_least_monotone(gs in prop::collection::vec(edges(), 1..5)) {
        let stack = GraphStack::from_graphs(gs.iter().map(|es| build(es)).collect());
        let mut prev = stack.at_least(1);
        for k in 2..=stack.depth() + 1 {
            let cur = stack.at_least(k);
            // edges at support >= k are a subset of support >= k-1
            for (u, v) in cur.edges() {
                prop_assert!(prev.has_edge(u, v));
                prop_assert_eq!(stack.support(u, v) >= k, true);
            }
            prev = cur;
        }
        prop_assert_eq!(stack.at_least(stack.depth() + 1).m(), 0);
    }

    #[test]
    fn upper_bound_ge_triangle_witness(es in edges()) {
        let g = build(&es);
        if triangle_count(&g) > 0 {
            prop_assert!(clique_upper_bound(&g) >= 3);
        }
    }
}

#[test]
fn planted_cliques_survive_core() {
    let g = planted(80, 0.02, &[Module::clique(10)], 77);
    let core = core_vertices(&g, 9);
    assert!(core.count_ones() >= 10);
}

#[test]
fn gnp_density_close_to_p() {
    let g = gnp(120, 0.3, 5);
    assert!((g.density() - 0.3).abs() < 0.05, "density {}", g.density());
}
