//! Malformed-input hardening for `gsb_graph::io`.
//!
//! Contract: truncated, garbage, or hostile graph files must come back
//! as a typed [`ParseError`] — never a panic, never an unbounded
//! allocation, never a silently wrong graph. These tests drive both
//! parsers with a table of known-bad inputs plus a deterministic
//! byte-mutation fuzz of the header parsers.

use gsb_graph::io::{read_dimacs, read_edge_list, write_dimacs, write_edge_list, ParseError};
use gsb_graph::BitGraph;

/// Every entry must parse to `Err(ParseError::Malformed { .. })`, with
/// the expected substring in the message so diagnostics stay useful.
const BAD_EDGE_LISTS: &[(&str, &str)] = &[
    ("0\n", "missing target vertex"),
    ("0 x\n", "bad vertex id"),
    ("x 0\n", "bad vertex id"),
    ("0 1 2\n", "trailing tokens"),
    ("-1 2\n", "bad vertex id"),
    ("0.5 1\n", "bad vertex id"),
    ("0 99999999999999999999\n", "bad vertex id"), // u64 overflow
    ("1 9000000\n", "exceeds the supported maximum"), // OOM guard
    ("0 1\n2,3\n", "bad vertex id"),
    ("0 1\n\u{1F9EC} 1\n", "bad vertex id"), // non-ASCII
];

const BAD_DIMACS: &[(&str, &str)] = &[
    ("", "no problem line"),
    ("c only comments\n", "no problem line"),
    ("e 1 2\n", "edge before problem line"),
    ("p foo 3 1\ne 1 2\n", "unsupported problem kind"),
    ("p edge\n", "missing n"),
    ("p edge x 1\n", "bad n"),
    ("p edge 3 1\np edge 3 1\n", "duplicate problem line"),
    ("p edge 3 1\ne 0 1\n", "1-indexed"),
    ("p edge 3 1\ne 1 4\n", "vertex out of range"),
    ("p edge 3 1\ne 1\n", "missing v"),
    ("p edge 3 1\ne 1 y\n", "bad v"),
    ("p edge 3 1\nq 1 2\n", "unrecognized line"),
    (
        "p edge 4000000000 1\ne 1 2\n",
        "exceeds the supported maximum",
    ), // OOM guard
    ("p edge 99999999999999999999 1\n", "bad n"), // u64 overflow
];

#[test]
fn bad_edge_lists_are_typed_errors() {
    for (input, needle) in BAD_EDGE_LISTS {
        let err = read_edge_list(input.as_bytes(), None)
            .expect_err(&format!("accepted bad edge list {input:?}"));
        match &err {
            ParseError::Malformed { message, .. } => assert!(
                message.contains(needle),
                "{input:?}: wanted {needle:?} in {message:?}"
            ),
            ParseError::Io(e) => panic!("{input:?}: Malformed expected, got Io({e})"),
        }
        let _ = err.to_string();
    }
}

#[test]
fn bad_dimacs_are_typed_errors() {
    for (input, needle) in BAD_DIMACS {
        let err =
            read_dimacs(input.as_bytes()).expect_err(&format!("accepted bad DIMACS {input:?}"));
        match &err {
            ParseError::Malformed { message, .. } => assert!(
                message.contains(needle),
                "{input:?}: wanted {needle:?} in {message:?}"
            ),
            ParseError::Io(e) => panic!("{input:?}: Malformed expected, got Io({e})"),
        }
    }
}

#[test]
fn declared_n_beyond_cap_is_rejected_before_allocating() {
    // Passing n explicitly hits the same guard as the file contents.
    let err = read_edge_list(&b"0 1\n"[..], Some(400_000_000)).unwrap_err();
    assert!(err.to_string().contains("exceeds the supported maximum"));
    // The `# n=` hint path flows into the same check.
    let err = read_edge_list(&b"# n=400000000\n0 1\n"[..], None).unwrap_err();
    assert!(err.to_string().contains("exceeds the supported maximum"));
}

#[test]
fn truncation_of_valid_files_never_panics() {
    let g = BitGraph::from_edges(9, [(0, 5), (1, 7), (2, 8), (3, 4), (5, 6)]);
    let mut edge_bytes = Vec::new();
    write_edge_list(&g, &mut edge_bytes).unwrap();
    let mut dimacs_bytes = Vec::new();
    write_dimacs(&g, &mut dimacs_bytes).unwrap();
    for keep in 0..edge_bytes.len() {
        // Truncated edge lists may stay valid (every prefix of lines is
        // a graph) — the requirement is typed result, no panic.
        let _ = read_edge_list(&edge_bytes[..keep], None);
    }
    for keep in 0..dimacs_bytes.len() {
        let _ = read_dimacs(&dimacs_bytes[..keep]);
    }
}

/// Tiny deterministic xorshift so the fuzz corpus is reproducible
/// without any external randomness dependency.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn header_parser_fuzz_never_panics_or_overallocates() {
    // Mutate valid headers byte-by-byte and with random splices: every
    // outcome must be Ok (mutation happened to stay valid) or a typed
    // error — and must return promptly, i.e. without trying to build a
    // billion-vertex graph from a corrupted count.
    let seeds: &[&[u8]] = &[
        b"p edge 12 3\ne 1 2\ne 2 3\ne 11 12\n",
        b"# n=12 m=2\n0 1\n10 11\n",
    ];
    let mut rng = XorShift(0x5c05_1dec_0ded_cafe);
    for seed in seeds {
        // Exhaustive single-byte substitutions over the header line.
        let header_len = seed.iter().position(|&b| b == b'\n').unwrap() + 1;
        for pos in 0..header_len {
            for byte in [0u8, b' ', b'9', b'p', b'e', b'-', 0xFF] {
                let mut input = seed.to_vec();
                input[pos] = byte;
                let _ = read_dimacs(&input[..]);
                let _ = read_edge_list(&input[..], None);
            }
        }
        // Random multi-byte splices anywhere in the file.
        for _ in 0..2_000 {
            let mut input = seed.to_vec();
            let edits = 1 + (rng.next() as usize % 4);
            for _ in 0..edits {
                let pos = rng.next() as usize % input.len();
                match rng.next() % 3 {
                    0 => input[pos] = rng.next() as u8,
                    1 => {
                        input.insert(pos, rng.next() as u8);
                    }
                    _ => {
                        input.remove(pos);
                        if input.is_empty() {
                            input.push(b'\n');
                        }
                    }
                }
            }
            let _ = read_dimacs(&input[..]);
            let _ = read_edge_list(&input[..], None);
        }
    }
}

#[test]
fn valid_files_still_parse_after_hardening() {
    // The cap must not reject legitimate inputs near (but under) it.
    let g = read_dimacs(&b"p edge 1000 1\ne 1 1000\n"[..]).unwrap();
    assert_eq!(g.n(), 1000);
    assert!(g.has_edge(0, 999));
    let g = read_edge_list(&b"0 999\n"[..], None).unwrap();
    assert_eq!(g.n(), 1000);
}
