//! Ablation A4: plain vs. WAH-compressed bitmaps (the paper's §4
//! future-work direction, built). AND + any-bit tests at genome scale
//! (n = 12,422) across sparsities, plus the space ratio printed once.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gsb_bitset::{BitSet, WahBitSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 12_422;

fn random_set(density: f64, seed: u64) -> BitSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = BitSet::new(N);
    for i in 0..N {
        if rng.gen_bool(density) {
            s.insert(i);
        }
    }
    s
}

fn bench_wah(c: &mut Criterion) {
    let mut group = c.benchmark_group("wah_vs_plain");
    for &density in &[0.0001f64, 0.001, 0.01, 0.1] {
        let a = random_set(density, 1);
        let b = random_set(density, 2);
        let wa = WahBitSet::from_bitset(&a);
        let wb = WahBitSet::from_bitset(&b);
        println!(
            "density {density}: plain {} words, WAH {} words (ratio {:.1}x)",
            gsb_bitset::words_for(N),
            wa.code_words(),
            wa.compression_ratio()
        );
        group.bench_with_input(
            BenchmarkId::new("plain_and_any", format!("{density}")),
            &density,
            |bench, _| {
                let mut out = BitSet::new(N);
                bench.iter(|| {
                    BitSet::and_into(black_box(&a), black_box(&b), &mut out);
                    black_box(out.any())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("wah_and_any", format!("{density}")),
            &density,
            |bench, _| {
                bench.iter(|| black_box(wa.and(black_box(&wb)).any()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("wah_intersects", format!("{density}")),
            &density,
            |bench, _| {
                bench.iter(|| black_box(wa.intersects(black_box(&wb))));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wah);
criterion_main!(benches);
