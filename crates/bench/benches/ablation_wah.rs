//! Ablation A4: plain vs. WAH-compressed bitmaps (the paper's §4
//! future-work direction, built). AND + any-bit tests at genome scale
//! (n = 12,422) across sparsities, plus the space ratio printed once.
//!
//! Extended with the levelwise-backend ablation: the same generic
//! enumeration kernel run over dense, WAH, and hybrid neighbor sets on
//! a planted-module workload, with one measured pass per backend
//! exported to `BENCH_backends.json` so the perf trajectory of the
//! compressed enumerator is recorded run over run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gsb_bitset::{BitSet, HybridSet, NeighborSet, WahBitSet};
use gsb_core::sink::CountSink;
use gsb_core::{CliqueEnumerator, EnumConfig, EnumStats, InMemoryLevel};
use gsb_graph::generators::{planted, Module};
use gsb_graph::BitGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

const N: usize = 12_422;

fn random_set(density: f64, seed: u64) -> BitSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = BitSet::new(N);
    for i in 0..N {
        if rng.gen_bool(density) {
            s.insert(i);
        }
    }
    s
}

fn bench_wah(c: &mut Criterion) {
    let mut group = c.benchmark_group("wah_vs_plain");
    for &density in &[0.0001f64, 0.001, 0.01, 0.1] {
        let a = random_set(density, 1);
        let b = random_set(density, 2);
        let wa = WahBitSet::from_bitset(&a);
        let wb = WahBitSet::from_bitset(&b);
        println!(
            "density {density}: plain {} words, WAH {} words (ratio {:.1}x)",
            gsb_bitset::words_for(N),
            wa.code_words(),
            wa.compression_ratio()
        );
        group.bench_with_input(
            BenchmarkId::new("plain_and_any", format!("{density}")),
            &density,
            |bench, _| {
                let mut out = BitSet::new(N);
                bench.iter(|| {
                    BitSet::and_into(black_box(&a), black_box(&b), &mut out);
                    black_box(out.any())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("wah_and_any", format!("{density}")),
            &density,
            |bench, _| {
                bench.iter(|| black_box(wa.and(black_box(&wb)).any()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("wah_intersects", format!("{density}")),
            &density,
            |bench, _| {
                bench.iter(|| black_box(wa.intersects(black_box(&wb))));
            },
        );
    }
    group.finish();
}

fn backend_workload() -> BitGraph {
    planted(
        400,
        0.008,
        &[Module::clique(13), Module::clique(11), Module::clique(9)],
        21,
    )
}

fn run_levelwise<S: NeighborSet>(g: &BitGraph) -> (usize, EnumStats) {
    let mut sink = CountSink::default();
    let stats = CliqueEnumerator::<S, InMemoryLevel<S>>::with_backend(EnumConfig::default(), ())
        .enumerate(g, &mut sink);
    (sink.count, stats)
}

/// One JSON record per backend from a single measured pass: wall time,
/// clique count (must agree across backends), total AND ops, and the
/// peak per-level heap footprint — the number WAH is supposed to move.
fn export_backend_json(g: &BitGraph) {
    let mut records = String::new();
    for (name, (count, stats)) in [
        ("dense", run_levelwise::<BitSet>(g)),
        ("wah", run_levelwise::<WahBitSet>(g)),
        ("hybrid", run_levelwise::<HybridSet>(g)),
    ] {
        let peak_heap = stats
            .levels
            .iter()
            .map(|l| l.memory.heap_bytes)
            .max()
            .unwrap_or(0);
        let and_ops: u64 = stats.levels.iter().map(|l| l.and_ops).sum();
        if !records.is_empty() {
            records.push(',');
        }
        let _ = write!(
            records,
            "\n    {{\"backend\":\"{name}\",\"wall_ns\":{},\"maximal\":{count},\
             \"and_ops\":{and_ops},\"peak_heap_bytes\":{peak_heap}}}",
            stats.wall_ns
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"levelwise_backends\",\n  \"n\": {},\n  \"m\": {},\n  \
         \"results\": [{records}\n  ]\n}}\n",
        g.n(),
        g.m()
    );
    match std::fs::write("BENCH_backends.json", &json) {
        Ok(()) => println!("wrote BENCH_backends.json"),
        Err(e) => eprintln!("could not write BENCH_backends.json: {e}"),
    }
}

fn bench_backends(c: &mut Criterion) {
    let g = backend_workload();
    export_backend_json(&g);
    let mut group = c.benchmark_group("levelwise_backends");
    group.sample_size(10);
    group.bench_function("dense", |b| {
        b.iter(|| black_box(run_levelwise::<BitSet>(&g).0));
    });
    group.bench_function("wah", |b| {
        b.iter(|| black_box(run_levelwise::<WahBitSet>(&g).0));
    });
    group.bench_function("hybrid", |b| {
        b.iter(|| black_box(run_levelwise::<HybridSet>(&g).0));
    });
    group.finish();
}

criterion_group!(benches, bench_wah, bench_backends);
criterion_main!(benches);
