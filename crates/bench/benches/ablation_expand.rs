//! Ablation A3: tail-list pair expansion vs. bit-scan expansion.
//!
//! §2.3: "there is another way to generate (k+1)-cliques by taking
//! advantage of the bit strings. Going through each bit of the bit
//! string, we are able to identify the common neighbors. ... However,
//! we do not use this method because for each clique, every bit in the
//! bit string of length n must be visited ... while our method checks
//! only the list of common neighbors whose size is bounded by (n−k)."
//! Both expansions are implemented here from the public sub-list
//! structure and compared on real levels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gsb_bitset::BitSet;
use gsb_core::kclique::seed_level;
use gsb_core::sublist::SubList;
use gsb_core::Vertex;
use gsb_graph::generators::{planted, Module};
use gsb_graph::BitGraph;

fn workload() -> (BitGraph, Vec<SubList>) {
    let g = planted(
        2_000,
        0.002,
        &[Module::clique(13), Module::clique(11), Module::clique(9)],
        5,
    );
    let (level, _) = seed_level(&g, 5);
    (g, level.sublists)
}

/// The paper's chosen method: pair loop over the tail list.
fn expand_tail_list(g: &BitGraph, sl: &SubList, buf: &mut BitSet) -> (usize, usize) {
    let (mut candidates, mut maximal) = (0usize, 0usize);
    for i in 0..sl.tails.len().saturating_sub(1) {
        let v = sl.tails[i] as usize;
        BitSet::and_into(&sl.cn, g.neighbors(v), buf);
        for &u in &sl.tails[i + 1..] {
            if !g.has_edge(v, u as usize) {
                continue;
            }
            if buf.intersects(g.neighbors(u as usize)) {
                candidates += 1;
            } else {
                maximal += 1;
            }
        }
    }
    (candidates, maximal)
}

/// The rejected alternative: scan every bit of CN(prefix ∪ {v}) above v.
fn expand_bit_scan(g: &BitGraph, sl: &SubList, buf: &mut BitSet) -> (usize, usize) {
    let (mut candidates, mut maximal) = (0usize, 0usize);
    for i in 0..sl.tails.len().saturating_sub(1) {
        let v = sl.tails[i] as usize;
        BitSet::and_into(&sl.cn, g.neighbors(v), buf);
        // visit every bit of the n-length string above v
        let mut pos = v + 1;
        while let Some(u) = buf.next_one(pos) {
            // only tails count as canonical partners
            if sl.tails.binary_search(&(u as Vertex)).is_ok() {
                if buf.intersects(g.neighbors(u)) {
                    candidates += 1;
                } else {
                    maximal += 1;
                }
            }
            pos = u + 1;
        }
    }
    (candidates, maximal)
}

fn bench_expansion(c: &mut Criterion) {
    let (g, sublists) = workload();
    let mut group = c.benchmark_group("expansion");
    let mut buf = BitSet::new(g.n());
    // correctness cross-check before timing
    for sl in &sublists {
        let mut b1 = BitSet::new(g.n());
        let mut b2 = BitSet::new(g.n());
        assert_eq!(
            expand_tail_list(&g, sl, &mut b1),
            expand_bit_scan(&g, sl, &mut b2)
        );
    }
    group.bench_function("tail_list", |b| {
        b.iter(|| {
            let mut total = (0usize, 0usize);
            for sl in &sublists {
                let (c2, m) = expand_tail_list(&g, sl, &mut buf);
                total.0 += c2;
                total.1 += m;
            }
            black_box(total)
        });
    });
    group.bench_function("bit_scan", |b| {
        b.iter(|| {
            let mut total = (0usize, 0usize);
            for sl in &sublists {
                let (c2, m) = expand_bit_scan(&g, sl, &mut buf);
                total.0 += c2;
                total.1 += m;
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_expansion);
criterion_main!(benches);
