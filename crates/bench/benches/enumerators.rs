//! Head-to-head of the four maximal-clique enumerators on a
//! correlation-like workload: sequential Clique Enumerator, Kose RAM,
//! Base BK, Improved BK. Table 1's comparison, criterion-ized.

use criterion::{criterion_group, criterion_main, Criterion};
use gsb_core::bk::{base_bk, improved_bk};
use gsb_core::kose::kose_ram;
use gsb_core::sink::CountSink;
use gsb_core::{CliqueEnumerator, EnumConfig};
use gsb_graph::generators::{planted, Module};
use gsb_graph::BitGraph;

fn workload() -> BitGraph {
    planted(
        300,
        0.01,
        &[
            Module::clique(14),
            Module::clique(12),
            Module::clique(10),
            Module::clique(8),
        ],
        7,
    )
}

fn bench_enumerators(c: &mut Criterion) {
    let g = workload();
    let mut group = c.benchmark_group("enumerators");
    group.sample_size(20);
    group.bench_function("clique_enumerator", |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            CliqueEnumerator::new(EnumConfig::default()).enumerate(&g, &mut sink);
            sink.count
        });
    });
    group.bench_function("kose_ram", |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            kose_ram(&g, 3, &mut sink);
            sink.count
        });
    });
    group.bench_function("base_bk", |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            base_bk(&g, &mut sink);
            sink.count
        });
    });
    group.bench_function("improved_bk", |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            improved_bk(&g, &mut sink);
            sink.count
        });
    });
    group.finish();
}

criterion_group!(benches, bench_enumerators);
criterion_main!(benches);
