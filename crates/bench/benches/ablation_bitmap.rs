//! Ablation A1: how to test a clique's maximality.
//!
//! The paper (§2.3): "The common neighbors of a k-clique can be
//! computed by either (k−1) bitwise AND operations on neighbors of the
//! k vertices, or one bitwise AND operation on common neighbors of a
//! (k−1)-clique and neighbors of a vertex." Three strategies compared
//! on real cliques from a correlation-like graph:
//!
//! * `incremental_bitmap` — what the Clique Enumerator does: cached
//!   prefix CN, one AND + early-exit intersection test;
//! * `scratch_bitmap` — recompute CN from all k neighborhoods each time;
//! * `sorted_lists` — no bitmaps: k-way sorted adjacency-list merge.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gsb_bitset::BitSet;
use gsb_core::sink::CollectSink;
use gsb_core::{CliqueEnumerator, EnumConfig, Vertex};
use gsb_graph::generators::{planted, Module};
use gsb_graph::BitGraph;

fn workload() -> (BitGraph, Vec<Vec<Vertex>>) {
    let g = planted(
        400,
        0.01,
        &[Module::clique(13), Module::clique(11), Module::clique(9)],
        3,
    );
    let mut sink = CollectSink::default();
    CliqueEnumerator::new(EnumConfig::default()).enumerate(&g, &mut sink);
    (g, sink.cliques)
}

/// Incremental: assume the prefix CN is cached (as in a sub-list);
/// charge one AND plus the early-exit test.
fn incremental(g: &BitGraph, prefix_cn: &BitSet, last: usize, buf: &mut BitSet) -> bool {
    BitSet::and_into(prefix_cn, g.neighbors(last), buf);
    buf.any()
}

/// From scratch: AND all k neighborhoods.
fn scratch(g: &BitGraph, clique: &[Vertex]) -> bool {
    let mut cn = g.neighbors(clique[0] as usize).clone();
    for &v in &clique[1..] {
        cn.and_assign(g.neighbors(v as usize));
    }
    cn.any()
}

/// Sorted adjacency lists: k-way intersection without bitmaps.
fn sorted_lists(adj: &[Vec<usize>], clique: &[Vertex]) -> bool {
    let lists: Vec<&[usize]> = clique.iter().map(|&v| adj[v as usize].as_slice()).collect();
    let mut cursors = vec![0usize; lists.len()];
    let shortest = (0..lists.len()).min_by_key(|&i| lists[i].len()).unwrap();
    'outer: for &cand in lists[shortest] {
        for (i, list) in lists.iter().enumerate() {
            if i == shortest {
                continue;
            }
            while cursors[i] < list.len() && list[cursors[i]] < cand {
                cursors[i] += 1;
            }
            if cursors[i] >= list.len() {
                return false;
            }
            if list[cursors[i]] != cand {
                // reset nothing; sorted merge continues
                continue 'outer;
            }
        }
        return true; // common neighbor found
    }
    false
}

fn bench_maximality(c: &mut Criterion) {
    let (g, cliques) = workload();
    let adj: Vec<Vec<usize>> = (0..g.n()).map(|v| g.neighbors(v).to_vec()).collect();
    // Precompute prefix CNs for the incremental variant (that cache is
    // the sub-list structure's whole point).
    let prefix_cn: Vec<BitSet> = cliques
        .iter()
        .map(|c| {
            let members: Vec<usize> = c[..c.len() - 1].iter().map(|&v| v as usize).collect();
            g.common_neighbors(&members)
        })
        .collect();
    let mut group = c.benchmark_group("maximality_test");
    group.bench_function("incremental_bitmap", |b| {
        let mut buf = BitSet::new(g.n());
        b.iter(|| {
            let mut any = 0usize;
            for (cl, cn) in cliques.iter().zip(&prefix_cn) {
                let last = cl[cl.len() - 1] as usize;
                any += usize::from(incremental(&g, cn, last, &mut buf));
            }
            black_box(any)
        });
    });
    group.bench_function("scratch_bitmap", |b| {
        b.iter(|| {
            let mut any = 0usize;
            for cl in &cliques {
                any += usize::from(scratch(&g, cl));
            }
            black_box(any)
        });
    });
    group.bench_function("sorted_lists", |b| {
        b.iter(|| {
            let mut any = 0usize;
            for cl in &cliques {
                any += usize::from(sorted_lists(&adj, cl));
            }
            black_box(any)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_maximality);
criterion_main!(benches);
