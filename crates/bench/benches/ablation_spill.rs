//! Ablation A6: in-core vs. out-of-core level storage.
//!
//! The paper's §1 reports that its disk-based predecessor "could not
//! finish after one week" because "intensive disk I/O access has been
//! the major bottleneck" — the observation that motivated moving the
//! whole computation into the Altix's shared memory. Same kernel, two
//! storage backends, measurable gap.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gsb_core::sink::CountSink;
use gsb_core::store::SpillConfig;
use gsb_core::{CliqueEnumerator, EnumConfig};
use gsb_graph::generators::{planted, Module};
use gsb_graph::BitGraph;

fn workload() -> BitGraph {
    planted(
        400,
        0.008,
        &[Module::clique(13), Module::clique(11), Module::clique(9)],
        21,
    )
}

fn bench_spill(c: &mut Criterion) {
    let g = workload();
    let mut group = c.benchmark_group("level_storage");
    group.sample_size(10);
    group.bench_function("in_core", |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            CliqueEnumerator::new(EnumConfig::default()).enumerate(&g, &mut sink);
            black_box(sink.count)
        });
    });
    for (name, budget) in [
        ("spill_none_big_budget", usize::MAX),
        ("spill_half", 4 << 20),
        ("spill_everything", 0usize),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sink = CountSink::default();
                CliqueEnumerator::new(EnumConfig::default())
                    .enumerate_spilled(&g, &mut sink, &SpillConfig::in_temp(budget))
                    .expect("io");
                black_box(sink.count)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spill);
criterion_main!(benches);
