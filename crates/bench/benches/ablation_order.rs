//! Ablation A7: vertex ordering vs. enumeration cost.
//!
//! The canonical generation order is a free knob: relabeling the graph
//! changes sub-list shapes without changing the answer. Measures the
//! sequential Clique Enumerator under natural, degeneracy,
//! degree-descending, and random orders on a hub-heavy workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gsb_core::order::{enumerate_ordered, Ordering};
use gsb_core::sink::CountSink;
use gsb_core::EnumConfig;
use gsb_graph::generators::{planted, Module};

fn bench_orderings(c: &mut Criterion) {
    let g = planted(
        500,
        0.006,
        &[
            Module::clique(13),
            Module::clique(12),
            Module::clique(10),
            Module::clique(8),
        ],
        17,
    );
    let mut group = c.benchmark_group("vertex_ordering");
    for (name, ordering) in [
        ("natural", Ordering::Natural),
        ("degeneracy", Ordering::Degeneracy),
        ("degree_desc", Ordering::DegreeDescending),
        ("random", Ordering::Random(42)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sink = CountSink::default();
                enumerate_ordered(&g, ordering, EnumConfig::default(), &mut sink);
                black_box(sink.count)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
