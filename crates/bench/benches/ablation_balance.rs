//! Ablation A2: scheduling disciplines for the level-synchronous run.
//!
//! Compares the paper's centralized dynamic balancer against a static
//! initial partition and against full repartitioning, both as real
//! 4-thread runs and as virtual-processor makespans over measured
//! costs (the latter isolates the policy from host-core contention).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gsb_core::sink::CountSink;
use gsb_core::{BalanceStrategy, CliqueEnumerator, EnumConfig, ParallelConfig, ParallelEnumerator};
use gsb_graph::generators::{planted, Module};
use gsb_graph::BitGraph;
use gsb_par::vsim::{SimConfig, Strategy, VirtualScheduler};
use std::sync::Arc;

fn workload() -> BitGraph {
    // Skewed module sizes: exactly the load shape that needs balancing.
    planted(
        350,
        0.01,
        &[
            Module::clique(14),
            Module::clique(8),
            Module::clique(6),
            Module::clique(5),
        ],
        11,
    )
}

/// A rayon work-stealing level-synchronous enumerator, built from the
/// public sub-list structure: each level fans out over sub-lists with
/// `par_iter`, letting rayon's deques do the balancing the paper's
/// scheduler does centrally.
fn rayon_level_sync(g: &BitGraph) -> usize {
    use gsb_bitset::BitSet;
    use gsb_core::kclique::seed_level;
    use gsb_core::sublist::SubList;
    use rayon::prelude::*;

    fn expand(g: &BitGraph, sl: &SubList) -> (Vec<SubList>, usize) {
        let mut out = Vec::new();
        let mut maximal = 0usize;
        let mut buf = BitSet::new(g.n());
        for i in 0..sl.tails.len().saturating_sub(1) {
            let v = sl.tails[i];
            BitSet::and_into(&sl.cn, g.neighbors(v as usize), &mut buf);
            let mut new_tails = Vec::new();
            for &u in &sl.tails[i + 1..] {
                if !g.has_edge(v as usize, u as usize) {
                    continue;
                }
                if buf.intersects(g.neighbors(u as usize)) {
                    new_tails.push(u);
                } else {
                    maximal += 1;
                }
            }
            if new_tails.len() > 1 {
                let mut prefix = sl.prefix.clone();
                prefix.push(v);
                out.push(SubList {
                    prefix,
                    cn: buf.clone(),
                    tails: new_tails,
                });
            }
        }
        (out, maximal)
    }

    let (mut level, seed_maximal) = seed_level(g, 2);
    let mut total = seed_maximal.len();
    while !level.sublists.is_empty() {
        let results: Vec<(Vec<SubList>, usize)> =
            level.sublists.par_iter().map(|sl| expand(g, sl)).collect();
        let mut next = Vec::new();
        for (subs, maximal) in results {
            next.extend(subs);
            total += maximal;
        }
        level.sublists = next;
        level.k += 1;
    }
    total
}

fn bench_strategies(c: &mut Criterion) {
    let g = Arc::new(workload());
    // cross-check the rayon variant against the real enumerator once
    {
        let mut sink = CountSink::default();
        CliqueEnumerator::new(EnumConfig::default()).enumerate(&g, &mut sink);
        // seed_level(g,2)'s maximal list is size-2; the enumerator at
        // min_k=3 skips those, so compare ">= 3" counts
        let mut sink2 = CountSink::default();
        CliqueEnumerator::new(EnumConfig {
            min_k: 2,
            ..Default::default()
        })
        .enumerate(&g, &mut sink2);
        assert_eq!(rayon_level_sync(&g), sink2.count);
        assert!(sink.count <= sink2.count);
    }
    let mut group = c.benchmark_group("balance_real_4threads");
    group.sample_size(10);
    for strategy in [
        BalanceStrategy::Dynamic,
        BalanceStrategy::Static,
        BalanceStrategy::Repartition,
    ] {
        group.bench_function(format!("{strategy:?}"), |b| {
            let enumerator = ParallelEnumerator::new(ParallelConfig {
                threads: 4,
                strategy,
                ..Default::default()
            });
            b.iter(|| {
                let mut sink = CountSink::default();
                enumerator.enumerate(&g, &mut sink);
                black_box(sink.count)
            });
        });
    }
    group.bench_function("rayon_work_stealing", |b| {
        b.iter(|| black_box(rayon_level_sync(&g)));
    });
    group.finish();

    // Virtual comparison: identical measured costs, different policies.
    let mut sink = CountSink::default();
    let stats = CliqueEnumerator::new(EnumConfig {
        record_costs: true,
        ..Default::default()
    })
    .enumerate(&g, &mut sink);
    let costs = stats.costs_ns().expect("recorded");
    let mut group = c.benchmark_group("balance_virtual_16procs");
    for (name, strategy) in [("lpt", Strategy::Lpt), ("static", Strategy::Static)] {
        let vs = VirtualScheduler::new(
            costs.clone(),
            SimConfig {
                strategy,
                ..SimConfig::default()
            },
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(vs.run(16).total_ns));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
