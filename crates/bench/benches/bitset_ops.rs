//! Microbenchmarks of the bitwise kernels the Clique Enumerator leans
//! on: AND-into, early-exit intersection test, popcount-of-AND, and
//! set-bit iteration, at genome scale (n = 12,422, the paper's probe
//! count) and at the scaled bench size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gsb_bitset::BitSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_set(n: usize, density: f64, seed: u64) -> BitSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = BitSet::new(n);
    for i in 0..n {
        if rng.gen_bool(density) {
            s.insert(i);
        }
    }
    s
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset");
    for &n in &[1_000usize, 12_422] {
        let a = random_set(n, 0.05, 1);
        let b = random_set(n, 0.05, 2);
        let mut out = BitSet::new(n);
        group.bench_with_input(BenchmarkId::new("and_into", n), &n, |bench, _| {
            bench.iter(|| BitSet::and_into(black_box(&a), black_box(&b), &mut out));
        });
        group.bench_with_input(BenchmarkId::new("intersects", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).intersects(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("count_and", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).count_and(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("iter_ones", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).iter_ones().sum::<usize>());
        });
        group.bench_with_input(BenchmarkId::new("none", n), &n, |bench, _| {
            let empty = BitSet::new(n);
            bench.iter(|| black_box(&empty).none());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
