//! FPT machinery benchmarks: vertex cover kernel+branch, maximum clique
//! via VC-on-complement vs. the direct branch-and-bound (§2.1's two
//! routes to the upper bound).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gsb_fpt::maxclique::maximum_clique_via_vc;
use gsb_fpt::vc::minimum_vertex_cover;
use gsb_graph::generators::{gnp, planted, Module};

fn bench_vc(c: &mut Criterion) {
    let sparse = gnp(60, 0.08, 3);
    let clustered = planted(40, 0.05, &[Module::clique(10)], 7);
    let mut group = c.benchmark_group("vertex_cover");
    group.sample_size(10);
    group.bench_function("min_vc_sparse_gnp60", |b| {
        b.iter(|| black_box(minimum_vertex_cover(&sparse).len()));
    });
    group.bench_function("min_vc_sparse_gnp60_folding", |b| {
        b.iter(|| black_box(gsb_fpt::minimum_vertex_cover_folding(&sparse).len()));
    });
    group.bench_function("min_vc_planted40", |b| {
        b.iter(|| black_box(minimum_vertex_cover(&clustered).len()));
    });
    group.bench_function("min_vc_planted40_folding", |b| {
        b.iter(|| black_box(gsb_fpt::minimum_vertex_cover_folding(&clustered).len()));
    });
    group.finish();

    let g = planted(45, 0.08, &[Module::clique(11)], 5);
    let mut group = c.benchmark_group("maximum_clique");
    group.sample_size(10);
    group.bench_function("via_vertex_cover_fpt", |b| {
        b.iter(|| black_box(maximum_clique_via_vc(&g).len()));
    });
    group.bench_function("direct_branch_and_bound", |b| {
        b.iter(|| black_box(gsb_core::maximum_clique_size(&g)));
    });
    group.finish();
}

criterion_group!(benches, bench_vc);
criterion_main!(benches);
