//! One function per table/figure of the paper's evaluation (§3).
//!
//! Each returns a plain-text report. The scaling figures (5–8) replay
//! *measured* per-sub-list expansion costs from a real sequential run
//! onto P ∈ [1, 256] virtual processors (see `gsb-par::vsim` and
//! DESIGN.md §2 — this host has nothing like a 256-CPU Altix, and the
//! claims under test are properties of the task-cost distribution).

use crate::report::{fmt_bytes, fmt_ns, Table};
use crate::workloads::Workload;
use gsb_core::kose::{kose_ram_with, KoseSearch};
use gsb_core::sink::CountSink;
use gsb_core::{
    BalanceStrategy, CliqueEnumerator, EnumConfig, EnumStats, ParallelConfig, ParallelEnumerator,
};
use gsb_graph::BitGraph;
use gsb_par::vsim::{SimConfig, VirtualScheduler};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Processor counts used by the paper's Figs. 5–7.
pub const PAPER_PROCS: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Sequential run with per-sub-list cost recording.
fn measured_run(g: &BitGraph, min_k: usize) -> EnumStats {
    let mut sink = CountSink::default();
    CliqueEnumerator::new(EnumConfig {
        min_k,
        max_k: None,
        record_costs: true,
    })
    .enumerate(g, &mut sink)
}

/// Median ns-per-work-unit across several measured runs. Using one
/// common scale for every row of a figure keeps rows comparable: the
/// per-run wall/unit ratio wobbles with cache state on a shared host,
/// while the unit counts themselves are deterministic.
fn median_scale(runs: &[EnumStats]) -> f64 {
    let mut scales: Vec<f64> = runs
        .iter()
        .map(EnumStats::ns_per_unit)
        .filter(|s| *s > 0.0)
        .collect();
    if scales.is_empty() {
        return 1.0;
    }
    scales.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    scales[scales.len() / 2]
}

/// Unit costs of a run converted with an explicit common scale.
fn costs_at_scale(stats: &EnumStats, scale: f64) -> Vec<Vec<u64>> {
    stats
        .costs
        .as_ref()
        .expect("record_costs was set")
        .iter()
        .map(|l| l.iter().map(|&u| (u as f64 * scale) as u64).collect())
        .collect()
}

/// Virtual scheduler seeded with a run's measured level costs at a
/// caller-supplied common ns-per-unit scale.
///
/// Sync constants are calibrated to the *scaled* workload: the paper's
/// own numbers imply a per-level synchronization cost at 256 CPUs of
/// ~1–2 % of the level's sequential work (e.g. Init_K=20: T_seq = 98 s
/// over ~8 levels, speedup 22 at 256 ⇒ ≈0.5 s sync per ~12 s level).
/// Our levels are ~10³× smaller, so the absolute barrier cost shrinks
/// proportionally; keeping the paper's default commodity constants
/// would make the barrier 50× *relatively* costlier than the Altix's
/// and hide the regime the figures are about.
fn scheduler_with_scale(stats: &EnumStats, scale: f64) -> VirtualScheduler {
    VirtualScheduler::new(
        costs_at_scale(stats, scale),
        SimConfig {
            sync_base_ns: 5_000,
            sync_per_proc_ns: 300,
            ..SimConfig::default()
        },
    )
}

/// The init_k values exercised by the paper (3, and ω−10 … ω−8, i.e.
/// 18–20 for the ω=28 myogenic graph), transposed to the scaled ω.
fn init_ks(omega: usize) -> Vec<usize> {
    let mut ks = vec![3usize];
    for off in (8..=10).rev() {
        let k = omega.saturating_sub(off);
        if k > 3 {
            ks.push(k);
        }
    }
    ks.dedup();
    ks
}

/// The Figs. 5–9 graph: scaled stand-in for the 2,895-vertex myogenic
/// workload, with the planted-module size capped so the default run
/// finishes in seconds (the paper's ω=28 puts ~4·10⁷ candidate cliques
/// at the middle levels; ω=20 keeps the same shape at ~2·10⁵).
fn figure_graph(scale: f64) -> (BitGraph, usize) {
    let mut spec = Workload::Myogenic.spec_scaled(scale);
    spec.profile.max_module = spec.profile.max_module.min(20);
    let g = spec.graph();
    let omega = gsb_core::maximum_clique_size(&g);
    (g, omega)
}

/// **Table 1** — Kose RAM vs. sequential Clique Enumerator, sizes 3–ω,
/// on the sparse brain-like graph. The paper reports 17,261 s vs. 45 s
/// (speedup ≈ 383×) on a 1 GHz PowerPC G4.
pub fn table1(scale: f64) -> String {
    let spec = Workload::BrainSparse.spec_scaled(scale);
    let g = spec.graph();
    let mut out = String::new();
    let _ = writeln!(out, "workload: {}", spec.describe(&g));

    let t0 = Instant::now();
    let mut ce_sink = CountSink::default();
    let ce_stats = CliqueEnumerator::new(EnumConfig::default()).enumerate(&g, &mut ce_sink);
    let ce_ns = t0.elapsed().as_nanos() as u64;

    let t0 = Instant::now();
    let mut kose_sink = CountSink::default();
    let kose_stats = kose_ram_with(&g, 3, KoseSearch::SortedList, &mut kose_sink);
    let kose_ns = t0.elapsed().as_nanos() as u64;

    let t0 = Instant::now();
    let mut kose_hash_sink = CountSink::default();
    kose_ram_with(&g, 3, KoseSearch::HashSet, &mut kose_hash_sink);
    let kose_hash_ns = t0.elapsed().as_nanos() as u64;

    assert_eq!(ce_sink.count, kose_sink.count, "algorithms must agree");
    assert_eq!(ce_sink.count, kose_hash_sink.count, "algorithms must agree");
    let omega = ce_stats.levels.last().map_or(0, |l| l.k + 1);
    let mut t = Table::new(&[
        "graph",
        "density",
        "clique sizes",
        "Kose RAM",
        "Clique Enumerator",
        "speedup",
    ]);
    t.row(&[
        format!("{} vertices", g.n()),
        format!("{:.4}%", 100.0 * g.density()),
        format!("[3, {omega}]"),
        fmt_ns(kose_ns),
        fmt_ns(ce_ns),
        format!("{:.0}x", kose_ns as f64 / ce_ns.max(1) as f64),
    ]);
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "with a hash-accelerated (generous) Kose baseline: {} ({:.0}x)",
        fmt_ns(kose_hash_ns),
        kose_hash_ns as f64 / ce_ns.max(1) as f64
    );
    let _ = writeln!(
        out,
        "maximal cliques (size >= 3): {}; Kose peak stored cliques: {}",
        ce_sink.count,
        kose_stats.peak_stored()
    );
    let _ = writeln!(
        out,
        "paper: 17,261 s vs 45 s (383x) on a 1 GHz PowerPC G4; the claim\n\
         under test is the ratio's direction and magnitude, not seconds."
    );
    out
}

/// **Figure 5** — run times vs. processor count for several `Init_K`,
/// on the myogenic-like graph, virtual processors replaying measured
/// costs.
pub fn fig5(scale: f64) -> String {
    let (g, omega) = figure_graph(scale);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph: n={}, m={}, density={:.3}%, max clique={}",
        g.n(),
        g.m(),
        100.0 * g.density(),
        omega
    );
    let mut header: Vec<String> = vec!["Init_K".into(), "T_seq".into()];
    header.extend(PAPER_PROCS.iter().map(|p| format!("P={p}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    let mut seq_times = Vec::new();
    let ks = init_ks(omega);
    let runs: Vec<EnumStats> = ks.iter().map(|&k| measured_run(&g, k)).collect();
    let tscale = median_scale(&runs);
    for (&init_k, stats) in ks.iter().zip(&runs) {
        let vs = scheduler_with_scale(stats, tscale);
        let sweep = vs.sweep(&PAPER_PROCS);
        let mut row = vec![init_k.to_string(), fmt_ns(vs.sequential_ns())];
        row.extend(sweep.iter().map(|&(_, ns, _)| fmt_ns(ns)));
        t.row(&row);
        seq_times.push((init_k, vs.sequential_ns()));
    }
    let _ = writeln!(out, "{}", t.render());
    // The paper's A5 observation: "when the initial clique size
    // increases by one, the run times decrease by almost half."
    let highs: Vec<&(usize, u64)> = seq_times.iter().filter(|(k, _)| *k > 3).collect();
    for w in highs.windows(2) {
        let (k0, t0) = *w[0];
        let (k1, t1) = *w[1];
        let _ = writeln!(
            out,
            "Init_K {k0} -> {k1}: sequential time ratio {:.2} (paper: ~0.5)",
            t1 as f64 / t0.max(1) as f64
        );
    }
    out
}

/// **Figure 6** — absolute and relative speedups up to 64 processors.
pub fn fig6(scale: f64) -> String {
    let (g, omega) = figure_graph(scale);
    let procs: Vec<usize> = PAPER_PROCS.iter().copied().filter(|&p| p <= 64).collect();
    let mut out = String::new();
    let mut header: Vec<String> = vec!["Init_K".into(), "measure".into()];
    header.extend(procs.iter().map(|p| format!("P={p}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    let ks = init_ks(omega);
    let runs: Vec<EnumStats> = ks.iter().map(|&k| measured_run(&g, k)).collect();
    let tscale = median_scale(&runs);
    for (&init_k, stats) in ks.iter().zip(&runs) {
        let vs = scheduler_with_scale(stats, tscale);
        let sweep = vs.sweep(&procs);
        let mut abs_row = vec![init_k.to_string(), "absolute".into()];
        abs_row.extend(sweep.iter().map(|&(_, _, s)| format!("{s:.1}")));
        t.row(&abs_row);
        let mut rel_row = vec![init_k.to_string(), "relative".into()];
        rel_row.push("-".into());
        for w in sweep.windows(2) {
            let rel = w[0].1 as f64 / w[1].1.max(1) as f64;
            rel_row.push(format!("{rel:.2}"));
        }
        t.row(&rel_row);
    }
    let mut out2 = t.render();
    out2.push_str("paper: relative speedups remain around 1.8 as P doubles up to 64.\n");
    out.push_str(&out2);
    out
}

/// **Figure 7** — absolute speedup at 256 processors vs. the problem's
/// sequential run time (paper: 22 → 51 as T_seq grows 98 s → 1,948 s,
/// a 20× spread obtained by varying Init_K). At bench scale the Init_K
/// sweep alone spans only ~4× of sequential time, so the spread is
/// widened the same way the paper got it — by changing how much work
/// the enumeration has to do (problem scale × Init_K).
pub fn fig7(scale: f64) -> String {
    let mut runs: Vec<(String, EnumStats)> = Vec::new();
    for &f in &[0.6, 1.0] {
        let (g, omega) = figure_graph(scale * f);
        for &init_k in &[omega.saturating_sub(8).max(3), 3] {
            let stats = measured_run(&g, init_k);
            runs.push((format!("n={}, Init_K={init_k}", g.n()), stats));
        }
    }
    let common = median_scale(&runs.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>());
    let mut rows: Vec<(String, u64, f64)> = Vec::new();
    for (name, stats) in &runs {
        let vs = scheduler_with_scale(stats, common);
        let s256 = vs.sweep(&[256])[0].2;
        rows.push((name.clone(), vs.sequential_ns(), s256));
    }
    rows.sort_by_key(|&(_, t, _)| t);
    rows.dedup_by(|a, b| a.0 == b.0);
    let mut t = Table::new(&["problem", "T_seq", "speedup @ 256 procs"]);
    for (name, ns, s) in &rows {
        t.row(&[name.clone(), fmt_ns(*ns), format!("{s:.1}")]);
    }
    let mut out = t.render();
    let (first, last) = (rows.first().unwrap(), rows.last().unwrap());
    let _ = writeln!(
        out,
        "speedup at 256 procs grows {:.1} -> {:.1} as T_seq grows {} -> {}: {} (paper: 22 -> 51)",
        first.2,
        last.2,
        fmt_ns(first.1),
        fmt_ns(last.1),
        if last.2 > first.2 { "yes" } else { "NO" }
    );
    out
}

/// **Figure 8** — load balance: mean ± stddev of per-processor load
/// for P ∈ {2,…,16} (paper: stddev within 10% of mean). Loads are the
/// deterministic work units each worker actually executed in a real
/// multithreaded run under the centralized dynamic balancer — the
/// contention-free measure of how well the *balancer* did (this host
/// timeshares one core, so per-worker wall times measure the OS, not
/// the algorithm).
pub fn fig8(scale: f64) -> String {
    let (g, omega) = figure_graph(scale);
    let init_k = omega.saturating_sub(10).max(3);
    let garc = Arc::new(g);
    let mut t = Table::new(&["P", "mean load", "stddev", "stddev/mean", "transfers"]);
    let mut worst = 0.0f64;
    let mut last_stats = None;
    for threads in [2usize, 4, 8, 16] {
        let mut sink = CountSink::default();
        let pstats = ParallelEnumerator::new(ParallelConfig {
            threads,
            enum_config: EnumConfig {
                min_k: init_k,
                ..Default::default()
            },
            strategy: BalanceStrategy::Dynamic,
            ..Default::default()
        })
        .enumerate(&garc, &mut sink);
        let loads = pstats.run.per_worker_unit_totals();
        let mean = gsb_par::stats::mean(&loads);
        let sd = gsb_par::stats::stddev(&loads);
        let rel = if mean > 0.0 { sd / mean } else { 0.0 };
        worst = worst.max(rel);
        t.row(&[
            threads.to_string(),
            format!("{:.0} units", mean),
            format!("{:.0}", sd),
            format!("{:.1}%", 100.0 * rel),
            pstats.run.total_transfers().to_string(),
        ]);
        last_stats = Some(pstats);
    }
    let mut out = format!("Init_K = {init_k}\n{}", t.render());
    let _ = writeln!(
        out,
        "worst stddev/mean: {:.1}% (paper: within 10%)",
        100.0 * worst
    );
    if let Some(pstats) = last_stats {
        let _ = writeln!(
            out,
            "16-thread run: {} levels, {} maximal cliques found",
            pstats.levels.len(),
            pstats.total_maximal
        );
        // Export the 16-thread run in the telemetry record format so
        // `gsb report` can render the same imbalance table from it.
        if let Ok(path) = std::env::var("GSB_METRICS_OUT") {
            match std::fs::write(&path, crate::report::run_jsonl(&pstats)) {
                Ok(()) => {
                    let _ = writeln!(out, "wrote per-level run log to {path}");
                }
                Err(e) => {
                    let _ = writeln!(out, "could not write {path}: {e}");
                }
            }
        }
    }
    out
}

/// **Figure 9** — memory to hold the candidate cliques, per clique
/// size, full range 3 → ω (paper: rises to ~20 GB at k = 13 on the
/// 2,895-vertex graph, then falls).
pub fn fig9(scale: f64) -> String {
    let (g, omega) = figure_graph(scale);
    let mut sink = CountSink::default();
    let stats = CliqueEnumerator::new(EnumConfig::default()).enumerate(&g, &mut sink);
    let mut t = Table::new(&[
        "clique size k",
        "N[k] sublists",
        "M[k] cliques",
        "formula bytes",
        "actual heap",
    ]);
    let mut peak_k = 0usize;
    let mut peak_bytes = 0usize;
    for l in &stats.levels {
        if l.memory.formula_bytes > peak_bytes {
            peak_bytes = l.memory.formula_bytes;
            peak_k = l.k;
        }
        t.row(&[
            l.k.to_string(),
            l.memory.n_sublists.to_string(),
            l.memory.n_cliques.to_string(),
            fmt_bytes(l.memory.formula_bytes),
            fmt_bytes(l.memory.heap_bytes),
        ]);
    }
    let mut out = format!(
        "graph: n={}, max clique={omega}; enumerating sizes 3 -> {omega}\n{}",
        g.n(),
        t.render()
    );
    let _ = writeln!(
        out,
        "peak at k={peak_k}: {} (paper: peak ~20 GB at k=13 of ω=28, i.e. k/ω≈0.46; here k/ω={:.2})",
        fmt_bytes(peak_bytes),
        peak_k as f64 / omega.max(1) as f64
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_ks_shapes() {
        assert_eq!(init_ks(28), vec![3, 18, 19, 20]);
        assert_eq!(init_ks(20), vec![3, 10, 11, 12]);
        assert_eq!(init_ks(5), vec![3]);
    }

    #[test]
    fn tiny_experiments_run() {
        // Smoke-test every experiment at a very small scale.
        for f in [table1 as fn(f64) -> String, fig5, fig6, fig7, fig8, fig9] {
            let report = f(0.12);
            assert!(!report.is_empty());
        }
    }
}
