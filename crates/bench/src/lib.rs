//! # gsb-bench — the SC'05 evaluation, regenerated
//!
//! One binary per table/figure of the paper's §3 (see DESIGN.md §5 for
//! the experiment index) plus criterion micro/ablation benches. This
//! library holds what they share: the scaled workload definitions
//! matching the paper's three microarray graphs, and plain-text
//! reporting helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod workloads;

pub use workloads::{Workload, WorkloadSpec};
