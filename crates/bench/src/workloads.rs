//! Scaled workloads matching the paper's three evaluation graphs.
//!
//! §3: "Two of the graphs were generated from neurobiological datasets,
//! where each graph contains 12422 vertices, one with 6151 edges
//! (0.008% edge density), the other with 229297 edges (0.3% edge
//! density). The third graph was generated from myogenic
//! differentiation data, and contains 2895 vertices with 10914 edges
//! (0.2% edge density). ... the maximum clique size \[was\] 17, 110, and
//! 28 for each graph, respectively."
//!
//! The workloads here run the *same generator family* (overlapping
//! planted modules on sparse background, the thresholded-correlation
//! structure) at sizes a single commodity core finishes in seconds.
//! `scale(f)` grows them toward the published sizes when more time is
//! available (set `GSB_SCALE` for the harness binaries).

use gsb_graph::generators::{correlation_like, CorrelationProfile};
use gsb_graph::BitGraph;

/// Identifies one of the paper's evaluation graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// 12,422 vertices / 0.008 % density / ω = 17 (Table 1's graph).
    BrainSparse,
    /// 2,895 vertices / 0.2 % density / ω = 28 (Figs. 5–9's graph).
    Myogenic,
    /// 12,422 vertices / 0.3 % density / ω = 110 (the run that consumed
    /// ~1 TB on the Altix).
    BrainDense,
}

/// A concrete, scaled instantiation of a workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Which paper graph this stands in for.
    pub workload: Workload,
    /// Scaled vertex count.
    pub n: usize,
    /// Generator profile.
    pub profile: CorrelationProfile,
    /// RNG seed.
    pub seed: u64,
}

impl Workload {
    /// Paper-reported vertex count.
    pub fn paper_n(self) -> usize {
        match self {
            Workload::BrainSparse | Workload::BrainDense => 12_422,
            Workload::Myogenic => 2_895,
        }
    }

    /// Paper-reported maximum clique size.
    pub fn paper_omega(self) -> usize {
        match self {
            Workload::BrainSparse => 17,
            Workload::Myogenic => 28,
            Workload::BrainDense => 110,
        }
    }

    /// Default scaled instantiation (finishes in seconds on one core).
    pub fn spec(self) -> WorkloadSpec {
        self.spec_scaled(1.0)
    }

    /// Instantiation scaled by `f` (vertex count multiplied; capped at
    /// the paper's size).
    pub fn spec_scaled(self, f: f64) -> WorkloadSpec {
        let base_n = match self {
            Workload::BrainSparse => 1_600,
            Workload::Myogenic => 900,
            Workload::BrainDense => 700,
        };
        let n = ((base_n as f64 * f) as usize).clamp(64, self.paper_n());
        let profile = match self {
            Workload::BrainSparse => CorrelationProfile::brain_sparse_like(n),
            Workload::Myogenic => CorrelationProfile::myogenic_like(n),
            Workload::BrainDense => CorrelationProfile::brain_dense_like(n),
        };
        WorkloadSpec {
            workload: self,
            n,
            profile,
            seed: 0x5C05,
        }
    }
}

impl WorkloadSpec {
    /// Generate the graph.
    pub fn graph(&self) -> BitGraph {
        correlation_like(&self.profile, self.seed)
    }

    /// One-line description for reports.
    pub fn describe(&self, g: &BitGraph) -> String {
        format!(
            "{:?} (paper: n={}, ω={}) scaled to n={}, m={}, density={:.4}%",
            self.workload,
            self.workload.paper_n(),
            self.workload.paper_omega(),
            g.n(),
            g.m(),
            100.0 * g.density()
        )
    }
}

/// Scale factor from the `GSB_SCALE` environment variable (default 1.0).
pub fn env_scale() -> f64 {
    std::env::var("GSB_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_generate_valid_graphs() {
        for w in [
            Workload::BrainSparse,
            Workload::Myogenic,
            Workload::BrainDense,
        ] {
            let spec = w.spec_scaled(0.3);
            let g = spec.graph();
            g.validate();
            assert!(g.n() >= 64);
            assert!(g.m() > 0);
            assert!(!spec.describe(&g).is_empty());
        }
    }

    #[test]
    fn scaling_caps_at_paper_size() {
        let spec = Workload::Myogenic.spec_scaled(1e9);
        assert_eq!(spec.n, 2_895);
        let spec = Workload::Myogenic.spec_scaled(0.0);
        assert_eq!(spec.n, 64);
    }

    #[test]
    fn deterministic() {
        let a = Workload::Myogenic.spec().graph();
        let b = Workload::Myogenic.spec().graph();
        assert_eq!(a, b);
    }
}
