//! Plain-text table reporting shared by the figure binaries, plus the
//! bridge from bench-run statistics to the telemetry record format.

use gsb_core::ParallelStats;
use gsb_telemetry::{LevelRecord, RunSummary};
use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = width[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let rule: Vec<String> = width.iter().map(|&w| "-".repeat(w)).collect();
        line(&mut out, &rule);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Human-readable duration from nanoseconds.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Human-readable bytes.
pub fn fmt_bytes(b: usize) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b >= KB * KB * KB {
        format!("{:.2} GiB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.2} MiB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.2} KiB", b / KB)
    } else {
        format!("{b} B")
    }
}

/// Print a section heading.
pub fn heading(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Serialise a parallel bench run in the exact JSONL format
/// `gsb cliques --metrics-out` writes, so `gsb report` and any other
/// consumer of run logs work on bench output too. One level record per
/// expanded level, then the summary line.
pub fn run_jsonl(stats: &ParallelStats) -> String {
    let mut out = String::new();
    let mut cumulative = 0u64;
    let mut wall = 0u64;
    for (seq, (report, level)) in stats.levels.iter().zip(&stats.run.levels).enumerate() {
        cumulative += report.maximal_found as u64;
        wall += report.ns;
        let record = LevelRecord {
            seq: seq as u64,
            k: report.k as u64,
            sublists: report.sublists as u64,
            candidates: report.candidates as u64,
            maximal_level: report.maximal_found as u64,
            maximal_total: cumulative,
            level_ns: report.ns,
            wall_ns: wall,
            and_ops: report.and_ops,
            maximality_tests: report.maximality_tests,
            busy_ns: level.per_worker_ns.clone(),
            units: level.per_worker_units.clone(),
            tasks: level.per_worker_tasks.iter().map(|&t| t as u64).collect(),
            transfers: level.transfers as u64,
            formula_bytes: report.memory.formula_bytes as u64,
            heap_bytes: report.memory.heap_bytes as u64,
            retries: stats.retried_levels.contains(&report.k) as u64,
            ..Default::default()
        };
        out.push_str(&record.to_json());
        out.push('\n');
    }
    let summary = RunSummary {
        levels: stats.levels.len() as u64,
        maximal_total: stats.total_maximal as u64,
        wall_ns: stats.run.wall_ns,
        retries: stats.retried_levels.len() as u64,
        ..Default::default()
    };
    out.push_str(&summary.to_json());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["longer-cell".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn run_jsonl_parses_as_a_run_log() {
        use gsb_core::{ParallelConfig, ParallelEnumerator};
        use gsb_graph::generators::{planted, Module};
        use std::sync::Arc;

        let g = Arc::new(planted(32, 0.1, &[Module::clique(7)], 5));
        let mut sink = gsb_core::CountSink::default();
        let stats = ParallelEnumerator::new(ParallelConfig {
            threads: 3,
            ..Default::default()
        })
        .enumerate(&g, &mut sink);

        let text = run_jsonl(&stats);
        let parsed = gsb_telemetry::parse_report(&text).expect("valid run log");
        assert!(!parsed.truncated);
        assert_eq!(parsed.levels.len(), stats.levels.len());
        let summary = parsed.summary.expect("summary line");
        assert_eq!(summary.maximal_total, stats.total_maximal as u64);
        for w in parsed.levels.windows(2) {
            assert!(w[1].k > w[0].k);
        }
        for level in &parsed.levels {
            assert_eq!(level.busy_ns.len(), 3, "one busy time per worker");
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
    }
}
