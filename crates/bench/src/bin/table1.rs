//! Regenerates the paper's Table 1 (see DESIGN.md §5). Scale with GSB_SCALE.

fn main() {
    let scale = gsb_bench::workloads::env_scale();
    gsb_bench::report::heading(&format!("SC'05 Table 1 reproduction (GSB_SCALE={scale})"));
    println!("{}", gsb_bench::experiments::table1(scale));
}
