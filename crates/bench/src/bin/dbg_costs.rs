//! Diagnostic: per-level task-cost distribution of the Figs. 5–9
//! workload (task counts, work units, max/mean), for sanity-checking
//! the scaling simulation's inputs.

fn main() {
    let mut spec = gsb_bench::workloads::Workload::Myogenic.spec_scaled(1.0);
    spec.profile.max_module = spec.profile.max_module.min(20);
    let g = spec.graph();
    let mut sink = gsb_core::sink::CountSink::default();
    let stats = gsb_core::CliqueEnumerator::new(gsb_core::EnumConfig {
        min_k: 3,
        max_k: None,
        record_costs: true,
    })
    .enumerate(&g, &mut sink);
    println!("ns per work unit: {:.3}", stats.ns_per_unit());
    for (lvl, costs) in stats.levels.iter().zip(stats.costs.as_ref().unwrap()) {
        let sum: u64 = costs.iter().sum();
        let max = costs.iter().max().copied().unwrap_or(0);
        println!(
            "k={:2} tasks={:6} units: sum={:10} max={:8} mean={:6}",
            lvl.k,
            costs.len(),
            sum,
            max,
            sum / costs.len().max(1) as u64
        );
    }
}
