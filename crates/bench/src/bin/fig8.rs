//! Regenerates the paper's Figure 8 (see DESIGN.md §5). Scale with GSB_SCALE.

fn main() {
    let scale = gsb_bench::workloads::env_scale();
    gsb_bench::report::heading(&format!("SC'05 Figure 8 reproduction (GSB_SCALE={scale})"));
    println!("{}", gsb_bench::experiments::fig8(scale));
}
