//! Committed perf baseline: one small fixed-scale measured pass per
//! backend (`results/BENCH_backends.json`, same schema and workload as
//! the `ablation_wah` bench) plus index query latency percentiles
//! (`results/BENCH_query.json`). CI regenerates both and diffs the
//! schema, so a PR that silently drops a field or a backend fails loud.
//!
//! Run from the repo root: `cargo run -p gsb-bench --bin bench_baseline`.

use gsb_bitset::{BitSet, HybridSet, NeighborSet, WahBitSet};
use gsb_core::sink::CountSink;
use gsb_core::{CliqueEnumerator, EnumConfig, EnumStats, InMemoryLevel};
use gsb_graph::generators::{planted, Module};
use gsb_graph::BitGraph;
use gsb_index::{CliqueIndex, IndexWriter};
use std::fmt::Write as _;
use std::time::Instant;

/// The fixed workload shared with `ablation_wah`: three planted
/// modules over sparse background, big enough to cross block
/// boundaries, small enough for CI.
fn backend_workload() -> BitGraph {
    planted(
        400,
        0.008,
        &[Module::clique(13), Module::clique(11), Module::clique(9)],
        21,
    )
}

/// Denser workload for the query bench: enough cliques that postings
/// lists, size runs, and block-cache traffic are all non-trivial.
fn query_workload() -> BitGraph {
    planted(
        400,
        0.035,
        &[Module::clique(13), Module::clique(11), Module::clique(9)],
        21,
    )
}

fn run_levelwise<S: NeighborSet>(g: &BitGraph) -> (usize, EnumStats) {
    let mut sink = CountSink::default();
    let stats = CliqueEnumerator::<S, InMemoryLevel<S>>::with_backend(EnumConfig::default(), ())
        .enumerate(g, &mut sink);
    (sink.count, stats)
}

/// Mirror of `ablation_wah::export_backend_json`, pointed at results/.
fn export_backends(g: &BitGraph) -> std::io::Result<()> {
    let mut records = String::new();
    for (name, (count, stats)) in [
        ("dense", run_levelwise::<BitSet>(g)),
        ("wah", run_levelwise::<WahBitSet>(g)),
        ("hybrid", run_levelwise::<HybridSet>(g)),
    ] {
        let peak_heap = stats
            .levels
            .iter()
            .map(|l| l.memory.heap_bytes)
            .max()
            .unwrap_or(0);
        let and_ops: u64 = stats.levels.iter().map(|l| l.and_ops).sum();
        if !records.is_empty() {
            records.push(',');
        }
        let _ = write!(
            records,
            "\n    {{\"backend\":\"{name}\",\"wall_ns\":{},\"maximal\":{count},\
             \"and_ops\":{and_ops},\"peak_heap_bytes\":{peak_heap}}}",
            stats.wall_ns
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"levelwise_backends\",\n  \"n\": {},\n  \"m\": {},\n  \
         \"results\": [{records}\n  ]\n}}\n",
        g.n(),
        g.m()
    );
    std::fs::write("results/BENCH_backends.json", json)?;
    println!("wrote results/BENCH_backends.json");
    Ok(())
}

/// Exact percentiles from sorted samples (the committed baseline wants
/// real numbers, not the serving layer's coarse log₂ buckets).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct QueryRecord {
    query: &'static str,
    samples: Vec<u64>,
}

fn record(query: &'static str, mut run: impl FnMut()) -> QueryRecord {
    // One warm pass to fault in file pages and fill the block cache the
    // same way for every query type, then the measured passes.
    run();
    let mut samples = Vec::with_capacity(2_000);
    for _ in 0..2_000 {
        let start = Instant::now();
        run();
        samples.push(start.elapsed().as_nanos() as u64);
    }
    QueryRecord { query, samples }
}

fn export_queries(g: &BitGraph) -> std::io::Result<()> {
    let dir = std::env::temp_dir().join(format!("gsb_bench_baseline_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = IndexWriter::create(&dir, g.n()).expect("create index writer");
    CliqueEnumerator::new(EnumConfig::default()).enumerate(g, &mut writer);
    let summary = writer.finish().expect("finish index");
    let index = CliqueIndex::open(&dir).expect("open index");

    let n = g.n() as u32;
    let max = index.max_size();
    let mut turn = 0u32;
    let records = [
        record("containing", || {
            turn = (turn + 7) % n;
            let ids = index.containing(turn).expect("containing");
            std::hint::black_box(ids);
        }),
        record("of_size_materialize", || {
            turn = (turn + 3) % max.max(1);
            let lo = 3 + turn % max.saturating_sub(2).max(1);
            let ids = index.of_size(lo, lo + 1);
            let cliques = index.materialize(ids.take(64)).expect("materialize");
            std::hint::black_box(cliques);
        }),
        record("max_clique", || {
            let c = index.max_clique().expect("max_clique");
            std::hint::black_box(c);
        }),
        record("overlap", || {
            turn = (turn + 13) % n;
            let ids = index.overlap(turn, (turn + 29) % n).expect("overlap");
            std::hint::black_box(ids);
        }),
    ];

    let mut body = String::new();
    for r in &records {
        let mut sorted = r.samples.clone();
        sorted.sort_unstable();
        let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
        if !body.is_empty() {
            body.push(',');
        }
        let _ = write!(
            body,
            "\n    {{\"query\":\"{}\",\"samples\":{},\"p50_ns\":{},\"p90_ns\":{},\
             \"p99_ns\":{},\"max_ns\":{},\"mean_ns\":{:.0}}}",
            r.query,
            sorted.len(),
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.90),
            percentile(&sorted, 0.99),
            sorted.last().copied().unwrap_or(0),
            mean
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"index_query\",\n  \"n\": {},\n  \"m\": {},\n  \
         \"cliques\": {},\n  \"store_bytes\": {},\n  \"postings_bytes\": {},\n  \
         \"results\": [{body}\n  ]\n}}\n",
        g.n(),
        g.m(),
        summary.cliques,
        summary.store_bytes,
        summary.postings_bytes
    );
    std::fs::write("results/BENCH_query.json", json)?;
    println!("wrote results/BENCH_query.json");
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn main() -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    export_backends(&backend_workload())?;
    export_queries(&query_workload())?;
    Ok(())
}
