//! Runs every table/figure reproduction in sequence and writes the
//! combined report to `results/reproduction.txt` (and stdout). Scale
//! with `GSB_SCALE` (default 1.0 finishes in minutes on one core).

use std::io::Write as _;

/// One reproduction entry: title + generator function.
type Experiment = (&'static str, fn(f64) -> String);

fn main() {
    let scale = gsb_bench::workloads::env_scale();
    let experiments: [Experiment; 6] = [
        (
            "Table 1 — Kose RAM vs sequential Clique Enumerator",
            gsb_bench::experiments::table1,
        ),
        (
            "Figure 5 — run time vs processors per Init_K",
            gsb_bench::experiments::fig5,
        ),
        (
            "Figure 6 — absolute and relative speedups to 64 procs",
            gsb_bench::experiments::fig6,
        ),
        (
            "Figure 7 — speedup at 256 procs vs sequential time",
            gsb_bench::experiments::fig7,
        ),
        (
            "Figure 8 — load balance across processors",
            gsb_bench::experiments::fig8,
        ),
        (
            "Figure 9 — memory usage per clique size",
            gsb_bench::experiments::fig9,
        ),
    ];
    let mut combined = format!("SC'05 reproduction report (GSB_SCALE={scale})\n");
    for (title, f) in experiments {
        gsb_bench::report::heading(title);
        let body = f(scale);
        println!("{body}");
        combined.push_str(&format!("\n=== {title} ===\n\n{body}\n"));
    }
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/reproduction.txt";
    let mut file = std::fs::File::create(path).expect("create report file");
    file.write_all(combined.as_bytes()).expect("write report");
    println!("\nfull report written to {path}");
}
