//! Committed scheduler baseline (`results/BENCH_steal.json`): the
//! barrier runtime (LPT on `SubList::cost()` estimates, the paper's
//! centralized balancer) vs. the work-stealing runtime (online greedy,
//! no estimates), replayed on 8 virtual processors over *measured*
//! per-sub-list costs from a real sequential run — the same vsim
//! substitution DESIGN.md §2 uses for the Altix scaling figures (this
//! container timeshares one core, so an 8-thread wall clock would
//! measure the OS scheduler, not ours).
//!
//! The workload is a ~10⁴-vertex skewed-degree graph built to have the
//! cost profile that separates the schedulers: seven hub vertices
//! whose sub-lists carry huge tails of mutually non-adjacent periphery
//! vertices (enormous `cost()` estimate, cheap in reality — non-edges
//! skip the bitmap AND) over a denser-than-usual background whose
//! thousands of small sub-lists hold most of the true work. The
//! barrier planner trusts the estimates: one hub per processor, and
//! the entire background funnels onto the single hub-free processor
//! because its estimated load never catches up. The thief-side
//! scheduler needs no estimates and drains both populations evenly.
//!
//! Run from the repo root: `cargo run -p gsb-bench --bin bench_steal`.

use gsb_core::sink::CountSink;
use gsb_core::{CliqueEnumerator, EnumConfig, EnumStats};
use gsb_graph::generators::gnp;
use gsb_graph::BitGraph;
use gsb_par::vsim::{SimConfig, Strategy, VirtualScheduler};
use gsb_par::SimResult;
use std::fmt::Write as _;

/// Virtual processor count the acceptance claim is about.
const PROCS: usize = 8;

/// The skewed-degree workload: a G(n, 0.003) background (median
/// degree ~30 — most of the true level-2 work), six exact 11-cliques
/// (dense structure feeding the deeper levels), and seven mutually
/// non-adjacent hub vertices sharing a 3500-vertex periphery. A hub
/// sub-list's tail holds ~3500 mostly non-adjacent vertices, so its
/// t² estimate (~12M units) towers over the summed estimate of the
/// whole background (~9M) while its true cost is a fraction of the
/// background's: the exact mispricing that makes an estimate-driven
/// plan park one hub per processor and funnel everything else onto
/// the processor left without one.
fn steal_workload() -> BitGraph {
    let n = 10_000;
    let mut g = gnp(n, 0.003, 0xC11A5EED);
    // Exact cliques: vertices [10 + 20·i, 10 + 20·i + 11).
    for module in 0..6usize {
        let base = 10 + 20 * module;
        for i in 0..11 {
            for j in i + 1..11 {
                g.add_edge(base + i, base + j);
            }
        }
    }
    // Hubs 0..7 (not adjacent to each other) over a shared periphery;
    // periphery vertices meet each other only through background
    // edges, so hub tails are overwhelmingly non-adjacent pairs.
    for hub in 0..7usize {
        for p in 200..3_700 {
            g.add_edge(hub, p);
        }
    }
    g
}

/// Sequential measured run: deterministic per-sub-list work units per
/// level, plus the wall-time scale to convert them to nanoseconds.
fn measured_run(g: &BitGraph) -> EnumStats {
    let mut sink = CountSink::default();
    CliqueEnumerator::new(EnumConfig {
        min_k: 3,
        max_k: None,
        record_costs: true,
    })
    .enumerate(g, &mut sink)
}

/// Walk the level loop again collecting `SubList::cost()` — the
/// estimate the barrier scheduler plans with — for every sub-list in
/// the same per-level order the measured run recorded actuals in.
fn planner_estimates(g: &BitGraph) -> Vec<Vec<u64>> {
    let seq = CliqueEnumerator::new(EnumConfig::default());
    let mut sink = CountSink::default();
    let mut stats = EnumStats::default();
    let mut level = seq.init_level(g, &mut sink, &mut stats);
    let mut estimates = Vec::new();
    while !level.sublists.is_empty() {
        estimates.push(level.sublists.iter().map(|sl| sl.cost()).collect());
        let (next, _) = seq.step(g, &level, &mut sink);
        level = next;
    }
    estimates
}

fn fractions(r: &SimResult) -> (Vec<f64>, f64) {
    let wall = r.total_ns.max(1) as f64;
    let busy: Vec<f64> = r
        .per_proc_busy_ns
        .iter()
        .map(|&b| b as f64 / wall)
        .collect();
    let max_idle = busy.iter().map(|b| 1.0 - b).fold(0.0f64, f64::max);
    (busy, max_idle)
}

fn scheduler_record(name: &str, r: &SimResult, seq_ns: u64) -> String {
    let (busy, max_idle) = fractions(r);
    let busy_json: Vec<String> = busy.iter().map(|b| format!("{b:.4}")).collect();
    format!(
        "\n    {{\"scheduler\":\"{name}\",\"procs\":{},\"wall_ns\":{},\
         \"speedup_vs_seq\":{:.2},\"per_worker_busy_frac\":[{}],\
         \"max_idle_frac\":{:.4}}}",
        r.procs,
        r.total_ns,
        seq_ns as f64 / r.total_ns.max(1) as f64,
        busy_json.join(","),
        max_idle
    )
}

fn main() -> std::io::Result<()> {
    let g = steal_workload();
    eprintln!("workload: n={}, m={}", g.n(), g.m());
    let stats = measured_run(&g);
    let estimates = planner_estimates(&g);
    let actual_ns = stats.costs_ns().expect("record_costs was set");
    assert_eq!(
        estimates.iter().map(Vec::len).collect::<Vec<_>>(),
        actual_ns.iter().map(Vec::len).collect::<Vec<_>>(),
        "estimate walk and measured run disagree on level shapes"
    );
    let tasks: usize = actual_ns.iter().map(Vec::len).sum();

    // Same sync constants as the Figs. 5-8 replays (experiments.rs):
    // calibrated so the barrier cost is proportionally what the paper's
    // own numbers imply, not the dominant term.
    let sync = SimConfig {
        sync_base_ns: 5_000,
        sync_per_proc_ns: 300,
        strategy: Strategy::Lpt,
    };
    let barrier = VirtualScheduler::with_estimates(
        actual_ns.clone(),
        estimates,
        SimConfig {
            strategy: Strategy::Lpt,
            ..sync
        },
    );
    let steal = VirtualScheduler::new(
        actual_ns,
        SimConfig {
            strategy: Strategy::Steal,
            ..sync
        },
    );
    let seq_ns = barrier.sequential_ns();
    let rb = barrier.run(PROCS);
    let rs = steal.run(PROCS);
    let speedup = rb.total_ns as f64 / rs.total_ns.max(1) as f64;
    let (_, steal_max_idle) = fractions(&rs);
    if std::env::var_os("BENCH_STEAL_LEVELS").is_some() {
        for (li, (b, s)) in rb
            .level_makespan_ns
            .iter()
            .zip(&rs.level_makespan_ns)
            .enumerate()
        {
            eprintln!(
                "level {li:2}: barrier {:>12} ns  steal {:>12} ns  ratio {:.2}",
                b,
                s,
                *b as f64 / (*s).max(1) as f64
            );
        }
    }
    eprintln!(
        "levels={}, tasks={tasks}, T_seq={}ms; barrier {}ms, steal {}ms \
         -> steal is {speedup:.2}x faster; steal max idle {:.1}%",
        stats.levels.len(),
        seq_ns / 1_000_000,
        rb.total_ns / 1_000_000,
        rs.total_ns / 1_000_000,
        100.0 * steal_max_idle
    );

    // The acceptance floor this baseline exists to pin: regressing the
    // steal scheduler (or "improving" the estimate model into these
    // numbers) should fail the bench, not silently shift a JSON field.
    assert!(
        speedup >= 1.5,
        "steal must be >= 1.5x faster than barrier at {PROCS} procs, got {speedup:.2}x"
    );
    assert!(
        steal_max_idle < 0.15,
        "steal max per-worker idle fraction must stay under 15%, got {:.1}%",
        100.0 * steal_max_idle
    );

    let mut body = String::new();
    body.push_str(&scheduler_record("barrier", &rb, seq_ns));
    body.push(',');
    body.push_str(&scheduler_record("steal", &rs, seq_ns));
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"steal_scheduler\",\n  \"n\": {},\n  \"m\": {},\n  \
         \"levels\": {},\n  \"tasks\": {tasks},\n  \"sequential_ns\": {seq_ns},\n  \
         \"speedup_steal_vs_barrier\": {speedup:.2},\n  \"results\": [{body}\n  ]\n}}\n",
        g.n(),
        g.m(),
        stats.levels.len()
    );
    std::fs::create_dir_all("results")?;
    std::fs::write("results/BENCH_steal.json", json)?;
    println!("wrote results/BENCH_steal.json");
    Ok(())
}
