//! The multithreaded Clique Enumerator must be indistinguishable from
//! the sequential one — for every thread count, balancing strategy, and
//! seeding — and must honor the non-decreasing-size delivery contract.

use gsb::core::sink::CollectSink;
use gsb::core::{
    BalanceStrategy, CliqueEnumerator, EnumConfig, ParallelConfig, ParallelEnumerator, Scheduler,
};
use gsb::graph::generators::{correlation_like, gnp, planted, CorrelationProfile, Module};
use gsb::graph::BitGraph;
use std::sync::Arc;

fn workload(seed: u64) -> BitGraph {
    let mut profile = CorrelationProfile::myogenic_like(160);
    profile.max_module = 11;
    correlation_like(&profile, seed)
}

fn sequential(g: &BitGraph, config: EnumConfig) -> Vec<Vec<u32>> {
    let mut sink = CollectSink::default();
    CliqueEnumerator::new(config).enumerate(g, &mut sink);
    let mut v = sink.cliques;
    v.sort();
    v
}

fn parallel(
    g: &Arc<BitGraph>,
    threads: usize,
    strategy: BalanceStrategy,
    config: EnumConfig,
) -> Vec<Vec<u32>> {
    let mut sink = CollectSink::default();
    ParallelEnumerator::new(ParallelConfig {
        threads,
        strategy,
        enum_config: config,
        ..Default::default()
    })
    .enumerate(g, &mut sink);
    let mut v = sink.cliques;
    v.sort();
    v
}

/// Sequential emission order, unsorted: the byte-identity reference.
fn sequential_ordered(g: &BitGraph, config: EnumConfig) -> Vec<Vec<u32>> {
    let mut sink = CollectSink::default();
    CliqueEnumerator::new(config).enumerate(g, &mut sink);
    sink.cliques
}

/// Parallel emission order, unsorted, under an explicit scheduler.
fn parallel_ordered(
    g: &Arc<BitGraph>,
    threads: usize,
    scheduler: Scheduler,
    config: EnumConfig,
) -> Vec<Vec<u32>> {
    let mut sink = CollectSink::default();
    ParallelEnumerator::new(ParallelConfig {
        threads,
        scheduler,
        enum_config: config,
        ..Default::default()
    })
    .enumerate(g, &mut sink);
    sink.cliques
}

#[test]
fn all_thread_counts_match_sequential() {
    let g = workload(1);
    let config = EnumConfig::default();
    let expect = sequential(&g, config);
    let garc = Arc::new(g);
    for threads in [1, 2, 3, 4, 7, 8, 16] {
        assert_eq!(
            parallel(&garc, threads, BalanceStrategy::Dynamic, config),
            expect,
            "threads {threads}"
        );
    }
}

#[test]
fn all_strategies_match_sequential() {
    let g = workload(2);
    let config = EnumConfig::default();
    let expect = sequential(&g, config);
    let garc = Arc::new(g);
    for strategy in [
        BalanceStrategy::Dynamic,
        BalanceStrategy::Static,
        BalanceStrategy::Repartition,
    ] {
        assert_eq!(parallel(&garc, 4, strategy, config), expect, "{strategy:?}");
    }
}

#[test]
fn seeded_parallel_matches_sequential() {
    let g = workload(3);
    for min_k in [5, 7] {
        let config = EnumConfig {
            min_k,
            ..Default::default()
        };
        let expect = sequential(&g, config);
        let garc = Arc::new(g.clone());
        assert_eq!(
            parallel(&garc, 4, BalanceStrategy::Dynamic, config),
            expect,
            "min_k {min_k}"
        );
    }
}

#[test]
fn parallel_delivery_is_size_ordered_and_duplicate_free() {
    let g = Arc::new(workload(4));
    let mut sink = CollectSink::default();
    ParallelEnumerator::new(ParallelConfig {
        threads: 4,
        ..Default::default()
    })
    .enumerate(&g, &mut sink);
    let sizes: Vec<usize> = sink.cliques.iter().map(Vec::len).collect();
    assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
    let mut dedup = sink.cliques.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), sink.cliques.len());
}

#[test]
fn repeated_runs_are_deterministic_in_content() {
    let g = Arc::new(workload(5));
    let config = EnumConfig::default();
    let a = parallel(&g, 4, BalanceStrategy::Dynamic, config);
    let b = parallel(&g, 4, BalanceStrategy::Dynamic, config);
    assert_eq!(a, b);
}

/// The sequencing-sink contract: steal-scheduled output is
/// byte-identical (same cliques, same emission order) to the
/// sequential enumerator across 100 seeded random graphs and every
/// thread count — the proptest stub is empty, so this is the seeded
/// loop standing in for a property test.
#[test]
fn steal_output_is_byte_identical_to_sequential_on_random_graphs() {
    let config = EnumConfig::default();
    for seed in 0..100u64 {
        // Vary size and density with the seed so the sweep crosses
        // sparse, dense, and mid-range regimes.
        let n = 24 + (seed % 5) as usize * 8;
        let p = 0.08 + (seed % 7) as f64 * 0.04;
        let g = Arc::new(gnp(n, p, seed));
        let expect = sequential_ordered(&g, config);
        for threads in [1usize, 4, 8] {
            let got = parallel_ordered(&g, threads, Scheduler::Steal, config);
            assert_eq!(
                got, expect,
                "seed {seed} (n={n}, p={p:.2}), threads {threads}: emission order diverged"
            );
        }
    }
}

/// Adversarial skew: one planted module makes a single sub-list ~100x
/// heavier than the background ones, so nearly all the work sits on
/// one task. Thieves must drain around it without perturbing the
/// emitted order.
#[test]
fn steal_output_is_byte_identical_under_extreme_sublist_skew() {
    let config = EnumConfig::default();
    // 0.004 background on 220 vertices: background sub-lists hold a
    // handful of candidates, while clique(14)'s prefix sub-list
    // carries thousands of bitmap words — two orders of magnitude
    // heavier.
    let g = Arc::new(planted(220, 0.004, &[Module::clique(14)], 77));
    let expect = sequential_ordered(&g, config);
    assert!(expect.iter().any(|c| c.len() == 14), "module not planted");
    for threads in [1usize, 4, 8] {
        for scheduler in [Scheduler::Steal, Scheduler::Barrier] {
            let got = parallel_ordered(&g, threads, scheduler, config);
            assert_eq!(got, expect, "threads {threads}, {scheduler}");
        }
    }
}

/// Differential oracle: the retained barrier runtime and the steal
/// runtime agree with each other and with sequential, byte for byte.
#[test]
fn barrier_and_steal_schedulers_are_byte_identical() {
    let g = Arc::new(workload(6));
    let config = EnumConfig::default();
    let expect = sequential_ordered(&g, config);
    for threads in [2usize, 4] {
        let barrier = parallel_ordered(&g, threads, Scheduler::Barrier, config);
        let steal = parallel_ordered(&g, threads, Scheduler::Steal, config);
        assert_eq!(barrier, expect, "barrier vs sequential, threads {threads}");
        assert_eq!(steal, expect, "steal vs sequential, threads {threads}");
    }
}

#[test]
fn balancer_reports_transfers_under_skew() {
    // A workload with one dominating module forces the scheduler to
    // move work off the overloaded thread at some level.
    let g = Arc::new(gsb::graph::generators::planted(
        200,
        0.005,
        &[gsb::graph::generators::Module::clique(13)],
        9,
    ));
    let mut sink = CollectSink::default();
    let stats = ParallelEnumerator::new(ParallelConfig {
        threads: 4,
        ..Default::default()
    })
    .enumerate(&g, &mut sink);
    assert!(
        stats.run.total_transfers() > 0,
        "expected at least one load transfer"
    );
    // and the per-worker unit loads stay within a sane spread
    let loads = stats.run.per_worker_unit_totals();
    let mean = gsb::par::stats::mean(&loads);
    let sd = gsb::par::stats::stddev(&loads);
    assert!(sd <= mean, "wildly unbalanced: mean {mean}, sd {sd}");
}
