//! The multithreaded Clique Enumerator must be indistinguishable from
//! the sequential one — for every thread count, balancing strategy, and
//! seeding — and must honor the non-decreasing-size delivery contract.

use gsb::core::sink::CollectSink;
use gsb::core::{
    BalanceStrategy, CliqueEnumerator, EnumConfig, ParallelConfig, ParallelEnumerator,
};
use gsb::graph::generators::{correlation_like, CorrelationProfile};
use gsb::graph::BitGraph;
use std::sync::Arc;

fn workload(seed: u64) -> BitGraph {
    let mut profile = CorrelationProfile::myogenic_like(160);
    profile.max_module = 11;
    correlation_like(&profile, seed)
}

fn sequential(g: &BitGraph, config: EnumConfig) -> Vec<Vec<u32>> {
    let mut sink = CollectSink::default();
    CliqueEnumerator::new(config).enumerate(g, &mut sink);
    let mut v = sink.cliques;
    v.sort();
    v
}

fn parallel(
    g: &Arc<BitGraph>,
    threads: usize,
    strategy: BalanceStrategy,
    config: EnumConfig,
) -> Vec<Vec<u32>> {
    let mut sink = CollectSink::default();
    ParallelEnumerator::new(ParallelConfig {
        threads,
        strategy,
        enum_config: config,
        ..Default::default()
    })
    .enumerate(g, &mut sink);
    let mut v = sink.cliques;
    v.sort();
    v
}

#[test]
fn all_thread_counts_match_sequential() {
    let g = workload(1);
    let config = EnumConfig::default();
    let expect = sequential(&g, config);
    let garc = Arc::new(g);
    for threads in [1, 2, 3, 4, 7, 8, 16] {
        assert_eq!(
            parallel(&garc, threads, BalanceStrategy::Dynamic, config),
            expect,
            "threads {threads}"
        );
    }
}

#[test]
fn all_strategies_match_sequential() {
    let g = workload(2);
    let config = EnumConfig::default();
    let expect = sequential(&g, config);
    let garc = Arc::new(g);
    for strategy in [
        BalanceStrategy::Dynamic,
        BalanceStrategy::Static,
        BalanceStrategy::Repartition,
    ] {
        assert_eq!(parallel(&garc, 4, strategy, config), expect, "{strategy:?}");
    }
}

#[test]
fn seeded_parallel_matches_sequential() {
    let g = workload(3);
    for min_k in [5, 7] {
        let config = EnumConfig {
            min_k,
            ..Default::default()
        };
        let expect = sequential(&g, config);
        let garc = Arc::new(g.clone());
        assert_eq!(
            parallel(&garc, 4, BalanceStrategy::Dynamic, config),
            expect,
            "min_k {min_k}"
        );
    }
}

#[test]
fn parallel_delivery_is_size_ordered_and_duplicate_free() {
    let g = Arc::new(workload(4));
    let mut sink = CollectSink::default();
    ParallelEnumerator::new(ParallelConfig {
        threads: 4,
        ..Default::default()
    })
    .enumerate(&g, &mut sink);
    let sizes: Vec<usize> = sink.cliques.iter().map(Vec::len).collect();
    assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
    let mut dedup = sink.cliques.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), sink.cliques.len());
}

#[test]
fn repeated_runs_are_deterministic_in_content() {
    let g = Arc::new(workload(5));
    let config = EnumConfig::default();
    let a = parallel(&g, 4, BalanceStrategy::Dynamic, config);
    let b = parallel(&g, 4, BalanceStrategy::Dynamic, config);
    assert_eq!(a, b);
}

#[test]
fn balancer_reports_transfers_under_skew() {
    // A workload with one dominating module forces the scheduler to
    // move work off the overloaded thread at some level.
    let g = Arc::new(gsb::graph::generators::planted(
        200,
        0.005,
        &[gsb::graph::generators::Module::clique(13)],
        9,
    ));
    let mut sink = CollectSink::default();
    let stats = ParallelEnumerator::new(ParallelConfig {
        threads: 4,
        ..Default::default()
    })
    .enumerate(&g, &mut sink);
    assert!(
        stats.run.total_transfers() > 0,
        "expected at least one load transfer"
    );
    // and the per-worker unit loads stay within a sane spread
    let loads = stats.run.per_worker_unit_totals();
    let mean = gsb::par::stats::mean(&loads);
    let sd = gsb::par::stats::stddev(&loads);
    assert!(sd <= mean, "wildly unbalanced: mean {mean}, sd {sd}");
}
