//! Cross-crate validation: every algorithm that answers the same
//! question must give the same answer, on workloads shaped like the
//! paper's evaluation graphs.

use gsb::core::bk::{base_bk_sorted, improved_bk_sorted};
use gsb::core::kose::kose_ram_sorted;
use gsb::core::sink::CollectSink;
use gsb::core::{maximum_clique_size, CliqueEnumerator, EnumConfig};
use gsb::fpt::maximum_clique_via_vc;
use gsb::graph::generators::{correlation_like, CorrelationProfile};
use gsb::graph::reduce::clique_upper_bound;
use gsb::graph::BitGraph;

fn workload(seed: u64) -> BitGraph {
    let mut profile = CorrelationProfile::myogenic_like(150);
    profile.max_module = 10;
    correlation_like(&profile, seed)
}

fn ce_sorted(g: &BitGraph, min_k: usize) -> Vec<Vec<u32>> {
    let mut sink = CollectSink::default();
    CliqueEnumerator::new(EnumConfig {
        min_k,
        ..Default::default()
    })
    .enumerate(g, &mut sink);
    let mut v = sink.cliques;
    v.sort();
    v
}

#[test]
fn four_enumerators_agree_on_correlation_workloads() {
    for seed in 0..4 {
        let g = workload(seed);
        let bk = base_bk_sorted(&g);
        assert_eq!(improved_bk_sorted(&g), bk, "seed {seed}");
        assert_eq!(kose_ram_sorted(&g, 1), bk, "seed {seed}");
        assert_eq!(ce_sorted(&g, 1), bk, "seed {seed}");
    }
}

#[test]
fn maximum_clique_routes_agree() {
    for seed in 0..4 {
        let g = workload(100 + seed);
        let direct = maximum_clique_size(&g);
        let via_vc = maximum_clique_via_vc(&g).len();
        assert_eq!(direct, via_vc, "seed {seed}");
        assert!(direct <= clique_upper_bound(&g), "seed {seed}");
        // ω equals the largest maximal clique size
        let largest = ce_sorted(&g, 1).iter().map(Vec::len).max().unwrap_or(0);
        assert_eq!(direct, largest, "seed {seed}");
    }
}

#[test]
fn seeded_enumeration_equals_filtered_full_enumeration() {
    for seed in 0..3 {
        let g = workload(200 + seed);
        let omega = maximum_clique_size(&g);
        for min_k in [4, omega.saturating_sub(2).max(4)] {
            let full: Vec<_> = ce_sorted(&g, 1)
                .into_iter()
                .filter(|c| c.len() >= min_k)
                .collect();
            assert_eq!(ce_sorted(&g, min_k), full, "seed {seed} min_k {min_k}");
        }
    }
}

#[test]
fn every_reported_clique_is_genuinely_maximal() {
    let g = workload(777);
    for c in ce_sorted(&g, 3) {
        let vs: Vec<usize> = c.iter().map(|&v| v as usize).collect();
        assert!(g.is_maximal_clique(&vs), "{c:?}");
    }
}
