//! Cross-crate property tests on arbitrary graphs: the pipeline facade,
//! both maximum-clique routes, paraclique containment, and the memory
//! accounting identities.

use gsb::core::memory::LevelMemory;
use gsb::core::sink::CollectSink;
use gsb::core::sublist::Level;
use gsb::core::{maximum_clique, CliquePipeline};
use gsb::fpt::maximum_clique_via_vc;
use gsb::fpt::vc::{is_vertex_cover, minimum_vertex_cover};
use gsb::graph::BitGraph;
use proptest::prelude::*;

const N: usize = 16;

fn arb_graph() -> impl Strategy<Value = BitGraph> {
    prop::collection::vec(any::<bool>(), N * (N - 1) / 2).prop_map(|bits| {
        let mut g = BitGraph::new(N);
        let mut it = bits.into_iter();
        for u in 0..N {
            for v in u + 1..N {
                if it.next().unwrap() {
                    g.add_edge(u, v);
                }
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn maxclique_routes_and_pipeline_agree(g in arb_graph()) {
        let direct = maximum_clique(&g).len();
        let via_vc = maximum_clique_via_vc(&g).len();
        prop_assert_eq!(direct, via_vc);
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new().min_size(1).run(&g, &mut sink);
        prop_assert_eq!(report.maximum_clique, Some(direct));
        let biggest = sink.cliques.iter().map(Vec::len).max().unwrap_or(0);
        prop_assert_eq!(biggest, direct);
    }

    #[test]
    fn vc_complement_identity(g in arb_graph()) {
        // |min VC| + |max IS| = n, and the clique complement identity
        let cover = minimum_vertex_cover(&g);
        prop_assert!(is_vertex_cover(&g, &cover));
        let clique_in_complement = maximum_clique(&g.complement()).len();
        prop_assert_eq!(cover.len() + clique_in_complement, N);
    }

    #[test]
    fn paraclique_contains_seed_and_stays_dense(g in arb_graph(), pct in 0.7f64..=1.0) {
        let seed = maximum_clique(&g);
        if seed.is_empty() {
            return Ok(());
        }
        let pc = gsb::core::paraclique::paraclique(&g, &seed, pct);
        for v in &seed {
            prop_assert!(pc.contains(v));
        }
        if pct == 1.0 {
            // glom factor 1.0 keeps it a clique
            let vs: Vec<usize> = pc.iter().map(|&v| v as usize).collect();
            prop_assert!(g.is_clique(&vs));
        }
    }

    #[test]
    fn memory_formula_is_additive_over_sublists(g in arb_graph()) {
        use gsb::core::kclique::seed_level;
        let (level, _) = seed_level::<gsb::bitset::BitSet>(&g, 3);
        let mem = LevelMemory::account(&level, g.n());
        let by_hand: usize = level
            .sublists
            .iter()
            .map(|sl| sl.formula_bytes(g.n()))
            .sum();
        prop_assert_eq!(mem.formula_bytes, by_hand);
        prop_assert_eq!(mem.n_cliques, level.n_cliques());
        let empty = LevelMemory::account(&Level::<gsb::bitset::BitSet> { k: 4, sublists: vec![] }, g.n());
        prop_assert_eq!(empty.formula_bytes, 0);
    }

    #[test]
    fn graph_stack_votes_bound_each_other(g1 in arb_graph(), g2 in arb_graph(), g3 in arb_graph()) {
        use gsb::graph::ops::{intersection, union, GraphStack};
        let u = union(&g1, &union(&g2, &g3));
        let i = intersection(&g1, &intersection(&g2, &g3));
        let stack = GraphStack::from_graphs(vec![g1, g2, g3]);
        prop_assert_eq!(stack.at_least(1), u);
        prop_assert_eq!(stack.at_least(3), i);
        let mid = stack.at_least(2);
        for (a, b) in mid.edges() {
            prop_assert!(stack.support(a, b) >= 2);
        }
    }
}
