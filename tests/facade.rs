//! Smoke tests of the facade crate: every re-exported subsystem is
//! reachable through `gsb::` and the prelude compiles as documented.

use gsb::prelude::*;

#[test]
fn prelude_covers_the_main_pipeline() {
    // graph -> cliques
    let g = BitGraph::from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
    let mut sink = CollectSink::default();
    CliquePipeline::new().min_size(3).run(&g, &mut sink);
    assert_eq!(sink.cliques, vec![vec![0, 1, 2]]);

    // expression -> correlation
    let m = ExpressionMatrix::from_rows(2, 4, vec![1., 2., 3., 4., 2., 4., 6., 8.]);
    let corr = pearson_matrix(&m);
    assert!((corr.get(0, 1) - 1.0).abs() < 1e-12);

    // alignment
    let al = global_align(b"ACGT", b"ACGT", &Scoring::default());
    assert_eq!(al.identity(), 1.0);

    // motif discovery: with d = 0 a motif is an exact 7-mer occurring
    // in >= q sequences, so both sequences must contain GATTACA
    // verbatim (the old second sequence TTGATTACTT has only the
    // windows TTGATTA/TGATTAC/GATTACT/ATTACTT — none is GATTACA).
    let seqs = vec![b"AAGATTACAA".to_vec(), b"TTGATTACATT".to_vec()];
    let found = find_motifs(&seqs, &MotifParams { l: 7, d: 0, q: 2 });
    assert!(found.iter().any(|m| m.consensus == b"GATTACA".to_vec()));

    // pathway alignment
    let pw = align_pathways(
        &["a", "b"],
        &["a", "b"],
        |x, y| if x == y { 1.0 } else { -1.0 },
        -1.0,
    );
    assert_eq!(pw.matches().len(), 2);

    // bit-level substrate
    let bits = BitSet::from_ones(10, [1, 3]);
    assert_eq!(bits.count_ones(), 2);
}

#[test]
fn subsystem_modules_are_reachable() {
    assert_eq!(
        gsb::fpt::minimum_vertex_cover(&gsb::graph::BitGraph::new(3)).len(),
        0
    );
    let net = gsb::pathways::models::core_carbon();
    assert_eq!(net.n_reactions(), 12);
    let vs = gsb::par::VirtualScheduler::new(vec![vec![100; 4]], gsb::par::SimConfig::default());
    assert_eq!(vs.run(1).total_ns, 400);
    let msa = gsb::align::progressive_msa(&[b"AC".to_vec()], &gsb::align::Scoring::default());
    assert_eq!(msa.width(), 2);
}
