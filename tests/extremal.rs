//! Extremal and stress instances: the Moon–Moser bound the paper cites
//! ("a network with n nodes can have as many as 3^(n/3) maximal
//! cliques" \[25\]), exercised across every enumeration configuration.

use gsb_core::sink::{CountSink, HistogramSink};
use gsb_core::store::SpillConfig;
use gsb_core::{CliqueEnumerator, EnumConfig, ParallelConfig, ParallelEnumerator};
use gsb_graph::BitGraph;
use std::sync::Arc;

/// The Moon–Moser graph: complete n-partite with parts of size 3
/// (complement of n/3 disjoint triangles) — exactly 3^(n/3) maximal
/// cliques, every one of size n/3.
fn moon_moser(parts: usize) -> BitGraph {
    let n = 3 * parts;
    let mut g = BitGraph::complete(n);
    for p in 0..parts {
        let a = 3 * p;
        g.remove_edge(a, a + 1);
        g.remove_edge(a, a + 2);
        g.remove_edge(a + 1, a + 2);
    }
    g
}

#[test]
fn moon_moser_counts_exact() {
    for parts in 2..=7 {
        let g = moon_moser(parts);
        let mut sink = HistogramSink::default();
        CliqueEnumerator::new(EnumConfig {
            min_k: 1,
            ..Default::default()
        })
        .enumerate(&g, &mut sink);
        let expect = 3usize.pow(parts as u32);
        assert_eq!(sink.total(), expect, "parts={parts}");
        // every maximal clique has exactly one vertex per part
        assert_eq!(sink.sizes[parts], expect, "parts={parts}");
        assert_eq!(sink.max_size(), parts);
    }
}

#[test]
fn moon_moser_parallel_and_spilled_agree() {
    let parts = 6; // 729 maximal cliques
    let g = moon_moser(parts);
    let expect = 3usize.pow(parts as u32);

    let garc = Arc::new(g.clone());
    let mut par = CountSink::default();
    ParallelEnumerator::new(ParallelConfig {
        threads: 4,
        enum_config: EnumConfig {
            min_k: 1,
            ..Default::default()
        },
        ..Default::default()
    })
    .enumerate(&garc, &mut par);
    assert_eq!(par.count, expect);

    let mut spilled = CountSink::default();
    CliqueEnumerator::new(EnumConfig {
        min_k: 1,
        ..Default::default()
    })
    .enumerate_spilled(&g, &mut spilled, &SpillConfig::in_temp(1024))
    .unwrap();
    assert_eq!(spilled.count, expect);
}

#[test]
fn moon_moser_memory_grows_to_the_final_level() {
    // Unlike correlation graphs (rise-peak-fall, Fig. 9), the extremal
    // instance has *every* maximal clique at the top size, so its
    // candidate storage grows right up to the last level — the paper's
    // 3^(n/3) worst case in action.
    let g = moon_moser(6);
    let mut sink = CountSink::default();
    let stats = CliqueEnumerator::new(EnumConfig {
        min_k: 1,
        ..Default::default()
    })
    .enumerate(&g, &mut sink);
    let bytes: Vec<usize> = stats
        .levels
        .iter()
        .map(|l| l.memory.formula_bytes)
        .collect();
    assert!(
        bytes.windows(2).all(|w| w[1] > w[0]),
        "profile not monotone: {bytes:?}"
    );
    // all maximal cliques surface at the last expansion
    let per_level: Vec<usize> = stats.levels.iter().map(|l| l.maximal_found).collect();
    assert_eq!(*per_level.last().unwrap(), 3usize.pow(6));
    assert!(per_level[..per_level.len() - 1].iter().all(|&m| m == 0));
}

#[test]
fn wah_pipeline_equivalence_on_extremal_graph() {
    use gsb_core::wahclique::wah_base_bk_sorted;
    use gsb_graph::compressed::WahGraph;
    let g = moon_moser(5);
    let compressed = WahGraph::from_bitgraph(&g);
    let via_wah = wah_base_bk_sorted(&compressed);
    let via_plain = gsb_core::bk::base_bk_sorted(&g);
    assert_eq!(via_wah, via_plain);
    assert_eq!(via_wah.len(), 3usize.pow(5));
}

#[test]
fn kose_survives_the_extremal_instance() {
    // the baseline also gets the count right, just slowly
    let g = moon_moser(5); // 243 cliques
    let got = gsb_core::kose::kose_ram_sorted(&g, 1);
    assert_eq!(got.len(), 243);
}
