//! End-to-end: synthetic microarray → normalize → Spearman → threshold
//! → clique enumeration must recover the planted co-regulated modules.
//! This is the paper's whole §3 pipeline as one assertion.

use gsb::core::paraclique::paraclique;
use gsb::core::{CliquePipeline, CollectSink};
use gsb::expr::normalize::{quantile_normalize, zscore_rows};
use gsb::expr::synth::SynthModule;
use gsb::expr::threshold::graph_at_density;
use gsb::expr::{spearman_matrix, SynthConfig};
use std::collections::BTreeSet;

#[test]
fn planted_modules_come_back_as_cliques() {
    let cfg = SynthConfig {
        genes: 200,
        conditions: 50,
        modules: vec![
            SynthModule {
                size: 10,
                strength: 0.97,
            },
            SynthModule {
                size: 7,
                strength: 0.95,
            },
        ],
        noise: 1.0,
        seed: 99,
    };
    let (mut matrix, truth) = cfg.generate();
    quantile_normalize(&mut matrix);
    zscore_rows(&mut matrix);
    let corr = spearman_matrix(&matrix);
    let (graph, tau) = graph_at_density(&corr, 0.006);
    assert!(tau > 0.3, "threshold suspiciously low: {tau}");

    let mut sink = CollectSink::default();
    let report = CliquePipeline::new().min_size(6).run(&graph, &mut sink);
    assert!(report.maximum_clique.unwrap() >= 10);

    // The strongest planted module must be contained in some reported
    // clique (possibly grown by correlated noise).
    for module in &truth {
        let want: BTreeSet<u32> = module.iter().map(|&g| g as u32).collect();
        if want.len() < 6 {
            continue;
        }
        let hit = sink.cliques.iter().any(|c| {
            let have: BTreeSet<u32> = c.iter().copied().collect();
            want.intersection(&have).count() >= want.len() - 1
        });
        assert!(hit, "module {module:?} not recovered");
    }
}

#[test]
fn paraclique_recovers_eroded_module_pipeline() {
    // Weaker coherence erodes edges; the paraclique glom wins them back.
    let cfg = SynthConfig {
        genes: 150,
        conditions: 60,
        modules: vec![SynthModule {
            size: 12,
            strength: 0.9,
        }],
        noise: 1.0,
        seed: 7,
    };
    let (mut matrix, truth) = cfg.generate();
    zscore_rows(&mut matrix);
    let corr = spearman_matrix(&matrix);
    let (graph, _) = graph_at_density(&corr, 0.008);

    let mut sink = CollectSink::default();
    CliquePipeline::new().min_size(5).run(&graph, &mut sink);
    let top = sink.cliques.last().expect("some clique found").clone();
    let pc = paraclique(&graph, &top, 0.8);
    assert!(pc.len() >= top.len());

    let want: BTreeSet<u32> = truth[0].iter().map(|&g| g as u32).collect();
    let have: BTreeSet<u32> = pc.iter().copied().collect();
    let recovered = want.intersection(&have).count();
    assert!(
        recovered * 2 >= want.len(),
        "paraclique recovered only {recovered}/{} module genes",
        want.len()
    );
}

#[test]
fn pipeline_report_bounds_are_consistent() {
    let cfg = SynthConfig {
        genes: 120,
        conditions: 40,
        modules: vec![SynthModule {
            size: 8,
            strength: 0.95,
        }],
        noise: 1.0,
        seed: 3,
    };
    let (mut matrix, _) = cfg.generate();
    zscore_rows(&mut matrix);
    let corr = spearman_matrix(&matrix);
    let (graph, _) = graph_at_density(&corr, 0.01);
    let mut sink = CollectSink::default();
    let report = CliquePipeline::new().min_size(3).run(&graph, &mut sink);
    let omega = report.maximum_clique.unwrap();
    assert!(omega <= report.upper_bound);
    let biggest = sink.cliques.iter().map(Vec::len).max().unwrap_or(0);
    assert_eq!(biggest, omega);
}
