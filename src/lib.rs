//! # gsb — genome-scale memory-intensive graph analysis for systems biology
//!
//! A from-scratch Rust implementation of the framework described in
//! Zhang, Abu-Khzam, Baldwin, Chesler, Langston & Samatova,
//! *Genome-Scale Computational Approaches to Memory-Intensive
//! Applications in Systems Biology* (SC|05). This facade crate
//! re-exports the workspace's crates and hosts the runnable examples
//! and cross-crate integration tests.
//!
//! ## Quick start
//!
//! ```
//! use gsb::core::{CliquePipeline, CollectSink};
//! use gsb::graph::BitGraph;
//!
//! // A graph with one obvious module: K4 on {0,1,2,3} plus a pendant.
//! let g = BitGraph::from_edges(5, [
//!     (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4),
//! ]);
//! let mut sink = CollectSink::default();
//! let report = CliquePipeline::new().min_size(3).run(&g, &mut sink);
//! assert_eq!(report.maximum_clique, Some(4));
//! assert_eq!(sink.cliques, vec![vec![0, 1, 2, 3]]);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`bitset`] | `gsb-bitset` | bit strings, WAH compression, bit-sliced counters |
//! | [`graph`] | `gsb-graph` | bitmap-adjacency graphs, generators, Boolean graph ops |
//! | [`par`] | `gsb-par` | level-synchronous pool, load balancer, scaling simulator |
//! | [`expr`] | `gsb-expr` | microarray pipeline: synthesize → normalize → correlate → threshold |
//! | [`core`] | `gsb-core` | Clique Enumerator (seq + parallel), Kose RAM, BK, max clique, paraclique |
//! | [`fpt`] | `gsb-fpt` | vertex cover, maximum clique via VC, feedback vertex set |
//! | [`pathways`] | `gsb-pathways` | stoichiometric networks, enzyme subsets, extreme pathways |
//! | [`align`] | `gsb-align` | pairwise & progressive MSA, guide trees, pathway alignment |
//! | [`motif`] | `gsb-motif` | clique-based (l, d) cis-regulatory motif discovery |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gsb_align as align;
pub use gsb_bitset as bitset;
pub use gsb_core as core;
pub use gsb_expr as expr;
pub use gsb_fpt as fpt;
pub use gsb_graph as graph;
pub use gsb_motif as motif;
pub use gsb_par as par;
pub use gsb_pathways as pathways;

/// The most commonly used items in one import.
pub mod prelude {
    pub use gsb_align::{align_pathways, global_align, progressive_msa, Scoring};
    pub use gsb_bitset::BitSet;
    pub use gsb_core::{
        CliqueEnumerator, CliquePipeline, CliqueSink, CollectSink, CountSink, EnumConfig,
        HistogramSink, ParallelConfig, ParallelEnumerator,
    };
    pub use gsb_expr::{pearson_matrix, spearman_matrix, ExpressionMatrix, SynthConfig};
    pub use gsb_graph::BitGraph;
    pub use gsb_motif::{find_motifs, MotifParams};
}
