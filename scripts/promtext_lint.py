#!/usr/bin/env python3
"""Validate a Prometheus text-format scrape from `gsb serve /metrics`.

Checks the exposition-format contract the hand-rolled writer in
`gsb_telemetry::promtext` promises:

* every family is declared with `# HELP` then `# TYPE` (a known type)
  exactly once, before any of its samples;
* metric and label names match the Prometheus grammar;
* sample values parse as finite non-negative numbers;
* histograms are complete and cumulative: per label set, `le` bucket
  bounds strictly ascend, bucket counts never decrease, the `+Inf`
  bucket exists and equals `_count`, and `_sum`/`_count` are present;
* with a second scrape file: every counter series (and histogram
  `_bucket`/`_count`/`_sum`) is monotone non-decreasing across the two
  scrapes — a counter that went backwards means torn snapshots or a
  silent reset.

Usage: promtext_lint.py SCRAPE [SCRAPE2]
Exit 0 when clean, 1 with one line per violation.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$"
)
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


class Lint:
    def __init__(self, path):
        self.path = path
        self.errors = []
        self.families = {}  # name -> type
        self.samples = {}  # (name, frozen labels) -> float

    def error(self, lineno, message):
        self.errors.append(f"{self.path}:{lineno}: {message}")

    def family_of(self, sample_name):
        """The declared family a sample line belongs to, if any."""
        if sample_name in self.families:
            return sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name.removesuffix(suffix)
            if base != sample_name and self.families.get(base) == "histogram":
                return base
        return None


def parse_labels(raw, lint, lineno):
    labels = {}
    if not raw:
        return labels
    consumed = 0
    for match in LABEL_PAIR_RE.finditer(raw):
        name, value = match.group(1), match.group(2)
        if not LABEL_RE.match(name):
            lint.error(lineno, f"bad label name {name!r}")
        if name in labels:
            lint.error(lineno, f"duplicate label {name!r}")
        labels[name] = value
        consumed = match.end()
        if consumed < len(raw) and raw[consumed] == ",":
            consumed += 1
    if consumed != len(raw):
        lint.error(lineno, f"unparseable label section {raw!r}")
    return labels


def lint_file(path):
    lint = Lint(path)
    pending_help = None  # family that has HELP but no TYPE yet
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                parts = line[len("# HELP ") :].split(" ", 1)
                name = parts[0]
                if not NAME_RE.match(name):
                    lint.error(lineno, f"bad family name {name!r}")
                if name in lint.families:
                    lint.error(lineno, f"family {name} declared twice")
                pending_help = name
                continue
            if line.startswith("# TYPE "):
                parts = line[len("# TYPE ") :].split(" ")
                if len(parts) != 2:
                    lint.error(lineno, f"malformed TYPE line {line!r}")
                    continue
                name, kind = parts
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    lint.error(lineno, f"unknown type {kind!r} for {name}")
                if name != pending_help:
                    lint.error(lineno, f"TYPE for {name} without a preceding HELP")
                lint.families[name] = kind
                pending_help = None
                continue
            if line.startswith("#"):
                continue  # comment

            match = SAMPLE_RE.match(line)
            if not match:
                lint.error(lineno, f"unparseable sample line {line!r}")
                continue
            name = match.group("name")
            family = lint.family_of(name)
            if family is None:
                lint.error(lineno, f"sample {name} has no declared family")
                continue
            labels = parse_labels(match.group("labels"), lint, lineno)
            try:
                value = float(match.group("value"))
            except ValueError:
                lint.error(lineno, f"non-numeric value {match.group('value')!r}")
                continue
            if value != value or value in (float("inf"), float("-inf")):
                lint.error(lineno, f"non-finite value for {name}")
                continue
            if lint.families[family] in ("counter", "histogram") and value < 0:
                lint.error(lineno, f"negative {lint.families[family]} value for {name}")
            key = (name, frozenset(labels.items()))
            if key in lint.samples:
                lint.error(lineno, f"duplicate series {name}{sorted(labels.items())}")
            lint.samples[key] = value

    check_histograms(lint)
    return lint


def check_histograms(lint):
    for family, kind in lint.families.items():
        if kind != "histogram":
            continue
        # Group bucket samples by their non-le label set.
        groups = {}
        for (name, labelset), value in lint.samples.items():
            if name != f"{family}_bucket":
                continue
            labels = dict(labelset)
            le = labels.pop("le", None)
            if le is None:
                lint.error(0, f"{family}_bucket series without le label")
                continue
            groups.setdefault(frozenset(labels.items()), []).append((le, value))
        for labelset, buckets in groups.items():
            tag = f"{family}{{{', '.join(f'{k}={v}' for k, v in sorted(labelset))}}}"
            parsed = []
            has_inf = False
            for le, value in buckets:
                if le == "+Inf":
                    has_inf = True
                    inf_value = value
                else:
                    try:
                        parsed.append((float(le), value))
                    except ValueError:
                        lint.error(0, f"{tag}: unparseable le {le!r}")
            if not has_inf:
                lint.error(0, f"{tag}: no +Inf bucket")
                continue
            parsed.sort()
            bounds = [b for b, _ in parsed]
            if len(set(bounds)) != len(bounds):
                lint.error(0, f"{tag}: duplicate le bounds")
            counts = [c for _, c in parsed] + [inf_value]
            for i in range(1, len(counts)):
                if counts[i] < counts[i - 1]:
                    lint.error(0, f"{tag}: bucket counts not cumulative: {counts}")
                    break
            count = lint.samples.get((f"{family}_count", labelset))
            if count is None:
                lint.error(0, f"{tag}: missing _count")
            elif count != inf_value:
                lint.error(0, f"{tag}: +Inf bucket {inf_value} != _count {count}")
            if (f"{family}_sum", labelset) not in lint.samples:
                lint.error(0, f"{tag}: missing _sum")


def check_monotone(first, second):
    """Counters only go up between two scrapes of the same server."""
    errors = []
    for key, before in first.samples.items():
        name, labelset = key
        family = second.family_of(name) or first.family_of(name)
        if family is None:
            continue
        kind = first.families.get(family)
        if kind not in ("counter", "histogram"):
            continue
        after = second.samples.get(key)
        if after is None:
            errors.append(f"series {name}{sorted(labelset)} vanished in second scrape")
        elif after < before:
            errors.append(
                f"counter {name}{sorted(labelset)} went backwards: {before} -> {after}"
            )
    return errors


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(__doc__.strip())
    first = lint_file(sys.argv[1])
    errors = list(first.errors)
    if len(sys.argv) == 3:
        second = lint_file(sys.argv[2])
        errors += second.errors
        errors += check_monotone(first, second)
    if errors:
        for e in errors:
            print(e)
        sys.exit(1)
    families = len(first.families)
    series = len(first.samples)
    scrapes = "two scrapes" if len(sys.argv) == 3 else "one scrape"
    print(f"promtext OK: {families} families, {series} series, {scrapes} checked")


if __name__ == "__main__":
    main()
