#!/usr/bin/env python3
"""Compare the key structure of two bench JSON files.

CI regenerates the perf baselines (results/BENCH_backends.json,
results/BENCH_query.json) and runs this script against the committed
copies. Values are expected to drift run to run — the machine differs —
but the *schema* must not: a missing field, a renamed query, or a
dropped backend record means a downstream consumer of the baseline
silently broke.

Usage: bench_schema_diff.py COMMITTED REGENERATED
Exit 0 if the key structure matches, 1 with a diff listing otherwise.
"""

import json
import sys


def key_paths(value, prefix=""):
    """Every key path in the JSON tree. Arrays contribute the schema of
    their first element (records in one array share a shape) plus their
    identifying 'backend'/'query'/'bench' values so a dropped record is
    a schema change, not just a value change."""
    paths = set()
    if isinstance(value, dict):
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else key
            paths.add(path)
            paths |= key_paths(child, path)
    elif isinstance(value, list):
        if value:
            paths |= key_paths(value[0], f"{prefix}[]")
        for element in value:
            if isinstance(element, dict):
                for tag in ("backend", "query", "bench"):
                    if tag in element:
                        paths.add(f"{prefix}[].{tag}={element[tag]}")
    return paths


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as fh:
        committed = json.load(fh)
    with open(sys.argv[2]) as fh:
        regenerated = json.load(fh)
    want = key_paths(committed)
    got = key_paths(regenerated)
    missing = sorted(want - got)
    extra = sorted(got - want)
    if missing or extra:
        for path in missing:
            print(f"MISSING from regenerated: {path}")
        for path in extra:
            print(f"EXTRA in regenerated:     {path}")
        sys.exit(1)
    print(f"schema OK: {len(want)} key paths match ({sys.argv[1]})")


if __name__ == "__main__":
    main()
